//! CPU elasticity (the paper's motivating scenario, §4.2 "Runtime
//! adaptation"): a container's core allocation changes *while the program
//! runs*. A program that provisioned only 8 threads cannot use the extra
//! cores; one that oversubscribed to 32 threads — efficiently, thanks to
//! VB+BWD — expands instantly.
//!
//! Run with: `cargo run --release --example elastic_scaling`

use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::{run_labelled, ElasticEvent, MachineSpec, Mechanisms, RunConfig};

fn run(name: &str, threads: usize, mech: Mechanisms, trace: &[(u64, usize)]) -> f64 {
    let profile = BenchProfile::by_name(name).expect("benchmark");
    let mut wl = Skeleton::scaled(profile, threads, 0.8);
    let mut cfg = RunConfig::vanilla(32)
        .with_machine(MachineSpec::PaperN(32))
        .with_mech(mech);
    cfg.initial_cores = Some(8);
    cfg.elastic = trace
        .iter()
        .map(|&(ms, cores)| ElasticEvent {
            at: SimTime::from_millis(ms),
            cores,
        })
        .collect();
    let label = format!("{}/{}T", wl.name(), threads);
    let r = run_labelled(&mut wl, &cfg, &label);
    r.makespan_secs()
}

fn main() {
    // The cloud operator's trace: start on 8 cores, burst to 32 at t=40ms,
    // then shrink to 4 at t=120ms, back to 16 at t=200ms.
    let trace = [(30u64, 32usize), (90, 4), (200, 16)];
    println!("elastic trace: 8 cores -> 32 @30ms -> 4 @90ms -> 16 @200ms\n");

    for name in ["streamcluster", "cg"] {
        let t8 = run(name, 8, Mechanisms::vanilla(), &trace);
        let t32_vanilla = run(name, 32, Mechanisms::vanilla(), &trace);
        let t32_opt = run(name, 32, Mechanisms::optimized(), &trace);
        println!("{name}:");
        println!("   8 threads  (vanilla)    {t8:>7.3} s   <- cannot use the burst to 32 cores");
        println!("  32 threads  (vanilla)    {t32_vanilla:>7.3} s   <- uses the burst, but pays oversubscription tax when shrunk");
        println!("  32 threads  (VB + BWD)   {t32_opt:>7.3} s   <- uses the burst AND stays efficient when shrunk");
        println!();
    }
    println!(
        "Provisioning the optimal thread count (32) and letting the kernel make\n\
         oversubscription cheap is exactly the paper's recipe for CPU elasticity."
    );
}
