//! Quickstart: build a small barrier-synchronized workload, oversubscribe
//! it 4x, and watch virtual blocking recover the lost performance.
//!
//! Run with: `cargo run --release --example quickstart`

use oversub::task::{Action, ScriptProgram, SyncOp};
use oversub::workload::{ThreadSpec, Workload, WorldBuilder};
use oversub::{run_labelled, MachineSpec, Mechanisms, RunConfig};

/// A miniature BSP program: every thread computes ~200 µs, then all meet
/// at a barrier — 400 rounds.
struct MiniBsp {
    threads: usize,
}

impl Workload for MiniBsp {
    fn name(&self) -> &str {
        "mini-bsp"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        let barrier = w.barrier(self.threads);
        for i in 0..self.threads {
            let mut script = Vec::new();
            for round in 0..400 {
                // Strong scaling: total work per round is fixed.
                let work = 200_000 * 16 / self.threads as u64;
                let jitter = (i as u64 * 37 + round as u64 * 13) % 997;
                script.push(Action::Compute { ns: work + jitter });
                script.push(Action::Sync(SyncOp::BarrierWait(barrier)));
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
    }
}

fn main() {
    // The paper's container: 8 cores, 4 per socket.
    let machine = MachineSpec::Paper8Cores;

    println!("mini-bsp on 8 cores (the paper's core experiment):\n");
    let mut rows = Vec::new();
    for (label, threads, mech) in [
        ("8T  (one thread per core)", 8, Mechanisms::vanilla()),
        ("32T (vanilla Linux)      ", 32, Mechanisms::vanilla()),
        ("32T (VB enabled)         ", 32, Mechanisms::vb_only()),
    ] {
        let cfg = RunConfig::vanilla(8)
            .with_machine(machine.clone())
            .with_mech(mech);
        let report = run_labelled(&mut MiniBsp { threads }, &cfg, label);
        rows.push((label, report));
    }

    let base = rows[0].1.makespan_ns as f64;
    for (label, r) in &rows {
        println!(
            "  {label}  time {:>8.1} ms   normalized {:>5.2}x   migrations {:>6}   wakeups {:>6}",
            r.makespan_ns as f64 / 1e6,
            r.makespan_ns as f64 / base,
            r.tasks.migrations(),
            r.tasks.wakeups,
        );
    }
    println!();
    println!(
        "Oversubscribing 4x costs {:.0}% under vanilla Linux; virtual blocking\n\
         brings it back within {:.0}% of the dedicated-core baseline while the\n\
         program keeps enough threads to use 32 cores the moment they appear.",
        (rows[1].1.makespan_ns as f64 / base - 1.0) * 100.0,
        (rows[2].1.makespan_ns as f64 / base - 1.0) * 100.0,
    );
}
