//! Anatomy of a busy-waiting detection: watch the detector's inputs and
//! the scheduling timeline for one spin episode.
//!
//! Run with: `cargo run --release --example bwd_anatomy`

use oversub::hw::{CoreHw, NormalCodeRates};
use oversub::task::SpinSig;
use oversub::task::{Action, ScriptProgram, SyncOp};
use oversub::trace::TraceKind;
use oversub::workload::{ThreadSpec, Workload, WorldBuilder};
use oversub::{run_traced, Mechanisms, RunConfig};
use oversub_bwd::{BwdParams, Detector};

fn main() {
    println!("1. What the detector sees\n");
    let mut det = Detector::new(BwdParams {
        enabled: true,
        ..BwdParams::default()
    });

    // A 100 µs window of ordinary code.
    let mut hw = CoreHw::new();
    hw.note_normal_execution(100_000, &NormalCodeRates::default(), 7);
    println!(
        "   normal window: ring full of identical backward branches? {}   misses: L1D {}, TLB {}",
        hw.lbr.all_identical_backward(),
        hw.pmc.l1d_misses,
        hw.pmc.tlb_misses,
    );
    println!("   -> detected: {}\n", det.check_window(&hw));

    // A window that is pure spin (the lu-style bare loop of Figure 6).
    let sig = SpinSig::bare_loop(1);
    let mut hw = CoreHw::new();
    hw.note_spin(
        sig.branch_from,
        sig.branch_to,
        100_000 / sig.iter_ns,
        sig.instr_per_iter,
    );
    println!(
        "   spin window:   ring full of identical backward branches? {}   misses: L1D {}, TLB {}",
        hw.lbr.all_identical_backward(),
        hw.pmc.l1d_misses,
        hw.pmc.tlb_misses,
    );
    println!("   -> detected: {}\n", det.check_window(&hw));

    println!("2. The detection in a real run\n");
    // One holder grabs a spinlock for a long stretch; one waiter spins.
    struct Probe;
    impl Workload for Probe {
        fn name(&self) -> &str {
            "bwd-anatomy"
        }
        fn build(&mut self, w: &mut WorldBuilder) {
            let l = w.spinlock(oversub::locks::SpinPolicy::mcs());
            // The holder grabs the lock and computes for 4 ms — longer
            // than its time slice, so the waiter gets scheduled mid-hold
            // and burns CPU spinning until BWD notices.
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(vec![
                Action::Sync(SyncOp::SpinAcquire(l)),
                Action::Compute { ns: 4_000_000 },
                Action::Sync(SyncOp::SpinRelease(l)),
            ]))));
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(vec![
                Action::Compute { ns: 10_000 },
                Action::Sync(SyncOp::SpinAcquire(l)), // spins on one core
                Action::Compute { ns: 10_000 },
                Action::Sync(SyncOp::SpinRelease(l)),
            ]))));
        }
    }
    let cfg = RunConfig::vanilla(1)
        .with_mech(Mechanisms::bwd_only())
        .traced();
    let (report, trace) = run_traced(&mut Probe, &cfg);
    println!("   timeline (one core, holder + spinner):");
    print!("{}", trace.render_tail(40));
    println!();
    println!(
        "   detections: {}   deschedules: {}   spin time burnt: {:.0} us",
        report.bwd.detections,
        report.tasks.bwd_deschedules,
        report.cpus.spin_ns as f64 / 1e3,
    );
    let spinner = oversub::task::TaskId(1);
    println!(
        "   the spinner was BWD-descheduled {} time(s), then ran to completion.",
        trace.count(spinner, TraceKind::BwdDeschedule)
    );
    println!("\n   (report summary)\n{}", report.summary());
}
