//! Busy-waiting under oversubscription (paper §4.3, Figures 6 and 13):
//! ten spinlock algorithms collapse when threads outnumber cores, hardware
//! pause-loop exiting barely helps (and only sees PAUSE-based loops inside
//! VMs), and software busy-waiting detection rescues them all.
//!
//! Run with: `cargo run --release --example spinlock_showdown`

use oversub::locks::SpinPolicy;
use oversub::workload::Workload;
use oversub::workloads::micro::SpinlockStress;
use oversub::{run_labelled, ExecEnv, MachineSpec, Mechanisms, RunConfig};

fn time(policy: SpinPolicy, threads: usize, mech: Mechanisms, env: ExecEnv) -> f64 {
    let mut wl = SpinlockStress::fig13(threads, policy, 256);
    let mut cfg = RunConfig::vanilla(8)
        .with_machine(MachineSpec::Paper8Cores)
        .with_mech(mech);
    cfg.env = env;
    let label = wl.name().to_string();
    run_labelled(&mut wl, &cfg, &label).makespan_secs()
}

fn main() {
    println!("Figure 6's two spin shapes:");
    println!("  pthread spinlock   -> PAUSE/NOP loop  (PLE can see it, in a VM)");
    println!("  NPB-lu style       -> bare test loop  (invisible to PLE)\n");

    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12}",
        "lock", "8T", "32T vanilla", "32T PLE", "32T BWD"
    );
    for policy in SpinPolicy::all() {
        let base = time(policy, 8, Mechanisms::vanilla(), ExecEnv::Vm);
        let over = time(policy, 32, Mechanisms::vanilla(), ExecEnv::Vm);
        let ple = time(policy, 32, Mechanisms::ple_only(), ExecEnv::Vm);
        let bwd = time(policy, 32, Mechanisms::bwd_only(), ExecEnv::Vm);
        println!(
            "{:<12} {:>9.3}s {:>11.3}s {:>9.3}s {:>11.3}s   {}",
            policy.name,
            base,
            over,
            ple,
            bwd,
            if policy.pause {
                "(PAUSE loop)"
            } else {
                "(bare loop)"
            },
        );
    }
    println!(
        "\nBWD reads the 16-entry LBR every 100 us: a full ring of identical\n\
         backward branches with zero TLB/L1D misses is a spinner, whatever the\n\
         loop looks like — so all ten algorithms recover to near the 8T baseline."
    );
}
