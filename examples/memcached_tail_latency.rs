//! The cloud-workload study (paper §4.2, Figure 12): a memcached server
//! with epoll-driven workers under an open-loop mutilate-style client.
//! Thread oversubscription barely hurts the mean, but blows up the tail —
//! until virtual blocking replaces the futex/epoll sleep-wakeup path.
//!
//! Run with: `cargo run --release --example memcached_tail_latency`

use oversub::simcore::SimTime;
use oversub::workloads::memcached::Memcached;
use oversub::{run_labelled, Mechanisms, RunConfig};

fn main() {
    let cores = 4;
    let rate = 200_000.0;
    println!("memcached: {cores} server cores, {rate:.0} req/s offered, 10:1 GET/SET\n");
    // Histogram percentiles (p95h/p99h) are bucket lower bounds — cheap
    // but lossy; the exact columns come from the run's sorted-sample
    // digest and are true order statistics of every request.
    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "arm", "tput(op/s)", "mean(us)", "p95h(us)", "p99h(us)", "p99(us)", "p999(us)"
    );
    for (label, workers, mech) in [
        ("4T  (vanilla)", 4, Mechanisms::vanilla()),
        ("16T (vanilla)", 16, Mechanisms::vanilla()),
        ("16T (VB optimized)", 16, Mechanisms::optimized()),
    ] {
        let mut wl = Memcached::paper(workers, cores, rate);
        let cpus = wl.total_cpus();
        let cfg = RunConfig::vanilla(cpus)
            .with_mech(mech)
            .with_max_time(SimTime::from_millis(1500));
        let r = run_labelled(&mut wl, &cfg, label);
        println!(
            "{:<22} {:>12.0} {:>10.0} {:>10} {:>10} {:>10} {:>10}",
            label,
            r.throughput_ops(),
            r.latency.mean() / 1e3,
            r.latency.percentile(95.0) / 1_000,
            r.latency.percentile(99.0) / 1_000,
            r.latency_exact.p99() / 1_000,
            r.latency_exact.p999() / 1_000,
        );
    }
    println!(
        "\nWith 16 workers on 4 cores, every request wakes a sleeping worker\n\
         through the expensive futex/epoll path — and often migrates it.\n\
         Virtual blocking parks workers in place, so the tail collapses while\n\
         the server keeps 16 workers ready for a 16-core scale-up."
    );
}
