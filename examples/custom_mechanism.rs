//! An out-of-tree mechanism, written purely against the public hook API.
//!
//! `YieldOnSpin` is a deliberately simple "userspace patch": whenever a
//! task busy-waits for longer than a fixed window, deschedule it (as if
//! the spin loop called `sched_yield()` after a bounded number of tries).
//! Unlike BWD it needs no hardware monitoring window and unlike PLE it
//! sees every spin loop in every environment — but it also charges its
//! yield cost on *every* expiry, productive or not.
//!
//! The point of the example is the wiring, not the policy: a mechanism
//! defined outside the crate, registered with
//! [`RunConfig::with_mechanism`], that participates in the run and
//! reports its own counters through the standard report.
//!
//! Run with: `cargo run --release --example custom_mechanism`

use oversub::ksync::WaitMode;
use oversub::locks::SpinPolicy;
use oversub::simcore::SimTime;
use oversub::task::{SpinSig, TaskId};
use oversub::workloads::micro::SpinlockStress;
use oversub::{
    run_labelled, ExecEnv, MachineSpec, MechCounters, Mechanism, Mechanisms, RunConfig,
    SpinExitVerdict,
};
use std::any::Any;

/// Deschedule any task that busy-waits longer than `window_ns`.
struct YieldOnSpin {
    /// Spin budget before the forced yield.
    window_ns: u64,
    /// Cost of the yield itself (syscall + context switch entry).
    yield_cost_ns: u64,
    yields: u64,
    blocks_seen: u64,
}

impl YieldOnSpin {
    fn new(window_ns: u64) -> Self {
        YieldOnSpin {
            window_ns,
            yield_cost_ns: 1_200,
            yields: 0,
            blocks_seen: 0,
        }
    }
}

impl Mechanism for YieldOnSpin {
    fn name(&self) -> &'static str {
        "yield-on-spin"
    }

    // Every spin segment arms an exit: no signature or environment
    // restrictions (contrast with PLE's `uses_pause && Vm` gate).
    fn on_spin_segment(
        &mut self,
        _cpu: usize,
        _tid: TaskId,
        _sig: &SpinSig,
        _env: ExecEnv,
        now: SimTime,
    ) -> Option<SimTime> {
        Some(now + self.window_ns)
    }

    fn on_spin_exit(&mut self, _cpu: usize, _tid: TaskId) -> SpinExitVerdict {
        self.yields += 1;
        SpinExitVerdict {
            charge_ns: self.yield_cost_ns,
            set_skip: false,
        }
    }

    // Hooks are cheap to observe even when the policy ignores them.
    fn on_block(&mut self, _cpu: usize, _tid: TaskId, _mode: WaitMode) {
        self.blocks_seen += 1;
    }

    fn counters(&self) -> MechCounters {
        MechCounters {
            decisions: self.yields,
            spin_exits: self.yields,
            ..MechCounters::named("yield-on-spin")
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn main() {
    let policy = SpinPolicy::all()[0];
    let iters = 256;
    println!(
        "spinlock stress ({}), 32 threads on 8 cores:\n",
        policy.name
    );

    let run = |label: &str, cfg: RunConfig| {
        let mut wl = SpinlockStress::fig13(32, policy, iters);
        run_labelled(&mut wl, &cfg, label)
    };

    let base = RunConfig::vanilla(8).with_machine(MachineSpec::Paper8Cores);
    let vanilla = run("vanilla", base.clone());

    // The custom mechanism registers through the public API only.
    let custom = run(
        "yield-on-spin",
        base.clone()
            .with_mechanism(|| Box::new(YieldOnSpin::new(60_000))),
    );

    let bwd = run("bwd", base.with_mech(Mechanisms::bwd_only()));

    for r in [&vanilla, &custom, &bwd] {
        let mech = r
            .mechanisms
            .first()
            .map(|m| format!("{} decisions via '{}'", m.decisions, m.name))
            .unwrap_or_else(|| "no mechanism".to_string());
        println!(
            "  {:<14} {:>8.3}s   spin {:>5.1}%   {}",
            r.label,
            r.makespan_secs(),
            100.0 * r.cpus.spin_ns as f64
                / (r.cpus.useful_ns + r.cpus.spin_ns + r.cpus.kernel_ns).max(1) as f64,
            mech,
        );
    }

    let fired = custom
        .mech("yield-on-spin")
        .map(|m| m.spin_exits)
        .unwrap_or(0);
    if fired == 0 {
        eprintln!(
            "custom_mechanism: the yield-on-spin mechanism never fired \
             (expected at least one forced yield on this workload); \
             report counters: {:?}",
            custom.mechanisms
        );
        std::process::exit(1);
    }
    println!(
        "\nyield-on-spin recovered {:.1}% of vanilla's makespan",
        100.0 * (1.0 - custom.makespan_ns as f64 / vanilla.makespan_ns as f64)
    );
}
