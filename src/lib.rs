//! Umbrella crate re-exporting the public API of the thread-oversubscription
//! library. See [`oversub`] for the main entry points.
pub use oversub::*;
