//! The busy-waiting detector (paper §3.2).
//!
//! A 100 µs high-resolution timer on each core inspects the LBR ring and
//! the PMCs. A window is classified as *spinning* when:
//!
//! 1. all 16 LBR entries were filled since the last clear,
//! 2. every entry is the same backward branch, and
//! 3. the window had no TLB misses and no L1D misses.
//!
//! On detection, the engine deschedules the running thread and sets its
//! skip flag via [`Scheduler::bwd_mark_skip`], keeping it off the CPU until
//! every other thread on that core has run once.
//!
//! [`Scheduler::bwd_mark_skip`]: oversub_sched::Scheduler::bwd_mark_skip

use oversub_hw::CoreHw;
use oversub_simcore::MICROS;

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct BwdParams {
    /// Whether BWD is active.
    pub enabled: bool,
    /// Monitoring period (the paper settles on 100 µs as the smallest
    /// interval with no noticeable overhead).
    pub interval_ns: u64,
    /// Use the PMC heuristic (no TLB/L1D misses) in addition to the LBR
    /// heuristic — the ablation knob for the false-positive study.
    pub use_pmc: bool,
    /// Cost of one timer interrupt + LBR/PMC read, charged to the core.
    pub check_cost_ns: u64,
    /// Degrade gracefully under sensor noise: when a core's observed
    /// false-positive rate crosses [`BwdParams::backoff_fp_threshold`],
    /// first widen its detection window (inspect every Nth tick), then
    /// disable detection on that core entirely.
    pub adaptive_backoff: bool,
    /// False-positive fraction (FP / detections) that trips the backoff.
    pub backoff_fp_threshold: f64,
    /// Minimum detections on a core before its FP rate is trusted.
    pub backoff_min_detections: u64,
}

impl Default for BwdParams {
    fn default() -> Self {
        BwdParams {
            enabled: false,
            interval_ns: 100 * MICROS,
            use_pmc: true,
            check_cost_ns: 250,
            adaptive_backoff: false,
            backoff_fp_threshold: 0.5,
            backoff_min_detections: 8,
        }
    }
}

/// Counters kept by the detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct BwdStats {
    /// Timer windows examined.
    pub checks: u64,
    /// Windows classified as spinning.
    pub detections: u64,
    /// Detections that hit a thread genuinely busy-waiting (set by the
    /// engine, which knows ground truth).
    pub true_positives: u64,
    /// Detections that hit a thread in a non-synchronization tight loop.
    pub false_positives: u64,
}

impl BwdStats {
    /// Sensitivity = TP / (TP + missed). The engine supplies `tries`, the
    /// number of ground-truth spin episodes.
    pub fn sensitivity(&self, tries: u64) -> f64 {
        if tries == 0 {
            return 1.0;
        }
        self.true_positives as f64 / tries as f64
    }

    /// Specificity = 1 - FP / checks-of-non-spinning-windows.
    pub fn specificity(&self, non_spin_windows: u64) -> f64 {
        if non_spin_windows == 0 {
            return 1.0;
        }
        1.0 - self.false_positives as f64 / non_spin_windows as f64
    }
}

/// The per-machine spin detector.
#[derive(Clone, Debug)]
pub struct Detector {
    /// Configuration.
    pub params: BwdParams,
    /// Counters.
    pub stats: BwdStats,
}

impl Detector {
    /// Build a detector.
    pub fn new(params: BwdParams) -> Self {
        Detector {
            params,
            stats: BwdStats::default(),
        }
    }

    /// Examine one core's monitoring window. Returns `true` if the window
    /// matches the spin signature. The caller must clear the window
    /// (`CoreHw::new_window`) afterwards.
    pub fn check_window(&mut self, hw: &CoreHw) -> bool {
        let detected = self.check_window_quiet(hw);
        self.note_check(detected);
        detected
    }

    /// Classify a window without touching the counters — used by callers
    /// that perturb the raw verdict (fault-injected sensor noise) and then
    /// record the perturbed result via [`Detector::note_check`].
    pub fn check_window_quiet(&self, hw: &CoreHw) -> bool {
        let lbr_spin = hw.lbr.all_identical_backward();
        let pmc_clean = !self.params.use_pmc || hw.pmc.no_misses();
        lbr_spin && pmc_clean
    }

    /// Record one window check and its (possibly perturbed) verdict.
    pub fn note_check(&mut self, detected: bool) {
        self.stats.checks += 1;
        if detected {
            self.stats.detections += 1;
        }
    }

    /// Record ground truth for the latest detection (engine callback).
    pub fn classify_detection(&mut self, was_real_spin: bool) {
        if was_real_spin {
            self.stats.true_positives += 1;
        } else {
            self.stats.false_positives += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oversub_hw::NormalCodeRates;

    fn detector() -> Detector {
        Detector::new(BwdParams {
            enabled: true,
            ..BwdParams::default()
        })
    }

    #[test]
    fn detects_pure_spin_window() {
        let mut d = detector();
        let mut hw = CoreHw::new();
        // 100 µs of spinning at ~3 ns/iter => tens of thousands of
        // identical backward branches, no misses.
        hw.note_spin(0x5000, 0x4FF0, 33_000, 4);
        assert!(d.check_window(&hw));
        assert_eq!(d.stats.detections, 1);
    }

    #[test]
    fn normal_code_is_not_detected() {
        let mut d = detector();
        let mut hw = CoreHw::new();
        hw.note_normal_execution(100_000, &NormalCodeRates::default(), 42);
        assert!(!d.check_window(&hw));
        assert_eq!(d.stats.checks, 1);
        assert_eq!(d.stats.detections, 0);
    }

    #[test]
    fn mixed_window_is_not_detected() {
        // Spin for most of the window but then run normal code: the ring
        // no longer holds 16 identical entries.
        let mut d = detector();
        let mut hw = CoreHw::new();
        hw.note_spin(0x5000, 0x4FF0, 30_000, 4);
        hw.note_normal_execution(5_000, &NormalCodeRates::default(), 42);
        assert!(!d.check_window(&hw));
    }

    #[test]
    fn short_spin_burst_does_not_fill_ring() {
        let mut d = detector();
        let mut hw = CoreHw::new();
        hw.note_spin(0x5000, 0x4FF0, 10, 4); // only 10 branches
        assert!(!d.check_window(&hw));
    }

    #[test]
    fn lbr_only_mode_can_false_positive_on_tight_loops() {
        // A bounded delay loop looks identical in the LBR; with the PMC
        // heuristic disabled it is (mis)detected.
        let mut lbr_only = Detector::new(BwdParams {
            enabled: true,
            use_pmc: false,
            ..BwdParams::default()
        });
        let mut full = detector();
        let mut hw = CoreHw::new();
        hw.note_spin(0x6000, 0x5FF8, 20_000, 3);
        // Give the window a few cache misses, as a real delay loop that
        // reads a little data would have.
        hw.pmc.add_events(0, 3, 0);
        assert!(lbr_only.check_window(&hw), "LBR-only is fooled");
        assert!(!full.check_window(&hw), "PMC heuristic rejects");
    }

    #[test]
    fn classify_counts_tp_fp() {
        let mut d = detector();
        d.classify_detection(true);
        d.classify_detection(true);
        d.classify_detection(false);
        assert_eq!(d.stats.true_positives, 2);
        assert_eq!(d.stats.false_positives, 1);
        assert!((d.stats.sensitivity(2) - 1.0).abs() < 1e-9);
        assert!((d.stats.specificity(100) - 0.99).abs() < 1e-9);
    }

    #[test]
    fn default_interval_is_100us() {
        assert_eq!(BwdParams::default().interval_ns, 100_000);
    }
}
