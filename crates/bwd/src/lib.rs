//! Busy-waiting detection (BWD) and the pause-loop-exiting (PLE) baseline.
//!
//! - [`detector`]: the paper's software spin detector — a 100 µs hrtimer
//!   reading the 16-entry LBR ring and the TLB/L1D miss counters.
//! - [`ple`]: the hardware baseline, which only sees PAUSE loops inside
//!   VMs and responds with a weak directed yield.

pub mod detector;
pub mod ple;

pub use detector::{BwdParams, BwdStats, Detector};
pub use ple::{ExecEnv, Ple, PleParams, PleStats};
