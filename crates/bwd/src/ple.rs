//! Pause-loop exiting (PLE) — the hardware baseline BWD is compared to.
//!
//! Intel PLE / AMD Pause Filter watch for tight loops of PAUSE/NOP
//! instructions, but only while the CPU runs a *vCPU in VMX non-root mode*:
//! they trigger a VM exit, after which the hypervisor typically performs a
//! directed yield to another vCPU. Two limitations drive the paper's
//! Figure 13(b)/14 results:
//!
//! 1. **Environment**: PLE does nothing for containers or native threads —
//!    there is no VM exit to take.
//! 2. **Loop shape**: spin loops without PAUSE (bare test loops, e.g. NPB
//!    `lu`) are invisible.
//! 3. **Response**: even on detection, the directed yield donates only a
//!    tiny slice to a co-located vCPU and does not deprioritize the
//!    spinner, so the spinner is rescheduled almost immediately — which is
//!    why the paper finds PLE "performed similarly to the vanilla Linux".

use oversub_task::SpinSig;

/// Where the simulated process runs (Figure 13's container vs KVM arms).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecEnv {
    /// A container: threads are ordinary host threads.
    Container,
    /// A KVM virtual machine: threads are vCPUs, PLE can fire.
    Vm,
}

/// PLE configuration.
#[derive(Clone, Copy, Debug)]
pub struct PleParams {
    /// Whether PLE is armed (host knob).
    pub enabled: bool,
    /// Detection window: sustained PAUSE-looping for this long triggers a
    /// VM exit (models the ple_window/ple_gap machinery, ~ tens of µs).
    pub window_ns: u64,
    /// Length of the directed-yield the spinner donates on detection.
    /// Small — the spinner comes right back, which is why PLE barely helps
    /// under oversubscription.
    pub yield_ns: u64,
    /// Cost of the VM exit + hypervisor handling itself.
    pub exit_cost_ns: u64,
}

impl Default for PleParams {
    fn default() -> Self {
        PleParams {
            enabled: false,
            window_ns: 25_000,
            yield_ns: 50_000,
            exit_cost_ns: 4_000,
        }
    }
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PleStats {
    /// VM exits taken due to pause loops.
    pub exits: u64,
}

/// The PLE model.
#[derive(Clone, Debug)]
pub struct Ple {
    /// Configuration.
    pub params: PleParams,
    /// Counters.
    pub stats: PleStats,
}

impl Ple {
    /// Build the model.
    pub fn new(params: PleParams) -> Self {
        Ple {
            params,
            stats: PleStats::default(),
        }
    }

    /// Whether a spin loop with signature `sig`, running in `env`, is
    /// visible to PLE at all.
    pub fn can_see(&self, sig: &SpinSig, env: ExecEnv) -> bool {
        self.params.enabled && env == ExecEnv::Vm && sig.uses_pause
    }

    /// The spinner has been PAUSE-looping for `spun_ns`; does PLE fire now?
    /// If so the engine charges the exit cost and performs a directed
    /// yield of `yield_ns` (no skip flag — that is BWD's improvement).
    pub fn should_exit(&mut self, sig: &SpinSig, env: ExecEnv, spun_ns: u64) -> bool {
        if !self.can_see(sig, env) || spun_ns < self.params.window_ns {
            return false;
        }
        self.stats.exits += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed() -> Ple {
        Ple::new(PleParams {
            enabled: true,
            ..PleParams::default()
        })
    }

    #[test]
    fn disabled_ple_never_fires() {
        let mut p = Ple::new(PleParams::default());
        let sig = SpinSig::pause_loop(0);
        assert!(!p.should_exit(&sig, ExecEnv::Vm, 1_000_000));
    }

    #[test]
    fn ple_ignores_containers() {
        let mut p = armed();
        let sig = SpinSig::pause_loop(0);
        assert!(!p.can_see(&sig, ExecEnv::Container));
        assert!(!p.should_exit(&sig, ExecEnv::Container, 1_000_000));
    }

    #[test]
    fn ple_ignores_bare_loops() {
        let mut p = armed();
        let sig = SpinSig::bare_loop(0);
        assert!(!p.can_see(&sig, ExecEnv::Vm));
        assert!(!p.should_exit(&sig, ExecEnv::Vm, 1_000_000));
    }

    #[test]
    fn ple_fires_on_sustained_pause_loop_in_vm() {
        let mut p = armed();
        let sig = SpinSig::pause_loop(0);
        assert!(!p.should_exit(&sig, ExecEnv::Vm, 10_000), "below window");
        assert!(p.should_exit(&sig, ExecEnv::Vm, 30_000));
        assert_eq!(p.stats.exits, 1);
    }
}
