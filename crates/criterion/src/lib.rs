//! A small, dependency-free benchmarking shim exposing the subset of the
//! `criterion` crate API used by this workspace's benches.
//!
//! The workspace must build hermetically (no network access), so the real
//! `criterion` is replaced by this in-tree harness: it warms each routine
//! up, times a fixed number of samples with `std::time::Instant`, and
//! prints `name  time: [median ...]` lines in a criterion-like format.
//! Statistical analysis, plotting, and CLI filtering are intentionally
//! out of scope.

pub use std::hint::black_box;
use std::time::Instant;

/// Controls how `iter_batched` amortizes setup; only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (batched generously).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup on every iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 60 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 60,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples_wanted: samples,
        per_iter_ns: Vec::with_capacity(samples),
    };
    f(&mut b);
    b.per_iter_ns.sort_unstable_by(f64::total_cmp);
    let (lo, med, hi) = match b.per_iter_ns.len() {
        0 => (0.0, 0.0, 0.0),
        n => (
            b.per_iter_ns[n / 20],
            b.per_iter_ns[n / 2],
            b.per_iter_ns[n - 1 - n / 20],
        ),
    };
    println!("{name:<50} time: [{lo:>12.1} ns {med:>12.1} ns {hi:>12.1} ns]");
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples_wanted: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size targeting ~1 ms per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once_ns = t0.elapsed().as_nanos().max(1) as u64;
        let batch = (1_000_000 / once_ns).clamp(1, 10_000);
        for _ in 0..self.samples_wanted {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.per_iter_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples_wanted {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($g:path),+ $(,)?) => {
        fn main() {
            $( $g(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { sample_size: 3 };
        let mut runs = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion { sample_size: 4 };
        let mut setups = 0u64;
        let mut g = c.benchmark_group("shim");
        g.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4);
    }
}
