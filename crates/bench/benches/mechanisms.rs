//! Criterion micro-benchmarks of the simulator's mechanism layer: the
//! relative costs of the vanilla futex wake path vs the virtual-blocking
//! wake path, the BWD window check, runqueue operations, and the
//! event-queue engine itself. These are the ablations DESIGN.md §7 calls
//! out at the data-structure level.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oversub::hw::{CoreHw, CpuId, MemModel, NormalCodeRates, Topology};
use oversub::ksync::{FutexParams, FutexTable};
use oversub::locks::{SpinLock, SpinPolicy};
use oversub::sched::{Pick, SchedParams, Scheduler, StopReason};
use oversub::simcore::{EventQueue, SimRng, SimTime};
use oversub::task::{Action, FnProgram, FutexKey, Task, TaskId, TaskTable};
use oversub_bwd::{BwdParams, Detector};

fn mk_tasks(n: usize) -> TaskTable {
    let mut tt = TaskTable::new();
    for i in 0..n {
        tt.push(Task::new(
            TaskId(i),
            Box::new(FnProgram::new("nop", |_| Action::Exit)),
            CpuId(0),
        ));
    }
    tt
}

/// One fully-set-up "8 waiters blocked on one futex" scenario.
fn blocked_world(vb: bool) -> (Scheduler, TaskTable, FutexTable, FutexKey) {
    let mut sched = Scheduler::new(
        Topology::flat(1),
        SchedParams::default(),
        MemModel::default(),
        vb,
    );
    let mut tasks = mk_tasks(9);
    for i in 0..9 {
        sched.enqueue_new(&mut tasks, TaskId(i), CpuId(0), SimTime::ZERO);
    }
    let mut futex = FutexTable::new(FutexParams {
        vb_enabled: vb,
        vb_auto_disable: false,
        ..FutexParams::default()
    });
    let key = FutexKey(0x1000);
    for _ in 0..8 {
        let Pick::Run(t, _) = sched.pick_next(&mut tasks, CpuId(0)) else {
            unreachable!()
        };
        sched.start(&mut tasks, CpuId(0), t, SimTime::ZERO);
        futex.futex_wait(&mut sched, &mut tasks, t, key, CpuId(0), SimTime::ZERO);
    }
    (sched, tasks, futex, key)
}

fn bench_wake_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("futex_bulk_wake_8_waiters");
    g.bench_function("vanilla", |b| {
        b.iter_batched(
            || blocked_world(false),
            |(mut sched, mut tasks, mut futex, key)| {
                futex.futex_wake(&mut sched, &mut tasks, key, 8, CpuId(0), SimTime::ZERO)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("virtual_blocking", |b| {
        b.iter_batched(
            || blocked_world(true),
            |(mut sched, mut tasks, mut futex, key)| {
                futex.futex_wake(&mut sched, &mut tasks, key, 8, CpuId(0), SimTime::ZERO)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_bwd_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("bwd_window_check");
    let mut spin_hw = CoreHw::new();
    spin_hw.note_spin(0x5000, 0x4FF0, 30_000, 4);
    let mut busy_hw = CoreHw::new();
    busy_hw.note_normal_execution(100_000, &NormalCodeRates::default(), 7);
    let mut det = Detector::new(BwdParams::default());
    g.bench_function("spin_window", |b| b.iter(|| det.check_window(&spin_hw)));
    g.bench_function("busy_window", |b| b.iter(|| det.check_window(&busy_hw)));
    g.finish();
}

fn bench_runqueue(c: &mut Criterion) {
    c.bench_function("sched_pick_start_stop_32_tasks", |b| {
        b.iter_batched(
            || {
                let mut sched = Scheduler::new(
                    Topology::flat(1),
                    SchedParams::default(),
                    MemModel::default(),
                    false,
                );
                let mut tasks = mk_tasks(32);
                for i in 0..32 {
                    sched.enqueue_new(&mut tasks, TaskId(i), CpuId(0), SimTime::ZERO);
                }
                (sched, tasks)
            },
            |(mut sched, mut tasks)| {
                for k in 0..32u64 {
                    let Pick::Run(t, _) = sched.pick_next(&mut tasks, CpuId(0)) else {
                        break;
                    };
                    let now = SimTime::from_micros(k * 10);
                    sched.start(&mut tasks, CpuId(0), t, now);
                    sched.stop_current(&mut tasks, CpuId(0), now + 5_000, StopReason::Preempted);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_event_queue(c: &mut Criterion) {
    // One-shot events, random times: slab queue vs the reference
    // heap+HashSet queue.
    let mut g = c.benchmark_group("event_queue_schedule_pop_1k");
    for (name, classic, nocancel) in [
        ("fast", false, false),
        // The engine's hot path: events retired by epoch checks never get
        // a cancellation handle, skipping the slab entirely.
        ("fast_nocancel", false, true),
        ("classic", true, false),
    ] {
        g.bench_function(name, |b| {
            let mut rng = SimRng::new(7);
            b.iter(|| {
                let mut q = if classic {
                    EventQueue::classic()
                } else {
                    EventQueue::new()
                };
                for i in 0..1_000u64 {
                    let at = SimTime::from_nanos(rng.gen_range(1_000_000));
                    if nocancel {
                        q.schedule_nocancel(at, i);
                    } else {
                        q.schedule(at, i);
                    }
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            })
        });
    }
    g.finish();

    // The simulator's periodic cadence: 64 per-CPU timer streams, each
    // re-arming itself 100 µs ahead as it fires — the timer wheel's case.
    let mut g = c.benchmark_group("event_queue_periodic_ticks_64cpus");
    for (name, classic) in [("fast", false), ("classic", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut q = if classic {
                    EventQueue::classic()
                } else {
                    EventQueue::new()
                };
                for cpu in 0..64u64 {
                    q.schedule_periodic(SimTime::from_nanos(100_000 + cpu * 7_919), cpu);
                }
                let mut fired = 0u64;
                while fired < 10_000 {
                    let (t, cpu) = q.pop().expect("periodic stream never drains");
                    fired += 1;
                    q.schedule_periodic(t + 100_000, cpu);
                }
                fired
            })
        });
    }
    g.finish();
}

fn bench_pick_next(c: &mut Criterion) {
    use oversub::sched::CfsRq;

    // 32 runnable tasks, the 8 leftmost carrying BWD skip flags so the
    // ordered scan has a prefix to step over; steady-state repeated picks
    // (the cache's hit case vs the reference scan).
    let mut tasks = mk_tasks(32);
    for i in 0..tasks.len() {
        tasks.vruntime[i] = 1_000 * (i as u64 + 1);
        tasks.bwd_skip[i] = i < 8;
    }
    let mut g = c.benchmark_group("rq_pick_next_32_tasks_8_skipped");
    for (name, scan) in [("cached", false), ("scan", true)] {
        let rq = {
            let mut rq = CfsRq::new();
            for tid in tasks.ids() {
                rq.enqueue(&tasks, tid);
            }
            rq.set_scan_mode(scan);
            rq
        };
        g.bench_function(name, |b| b.iter(|| rq.pick_next(&tasks)));
    }
    g.finish();
}

fn bench_spinlock_state_machine(c: &mut Criterion) {
    c.bench_function("spinlock_acquire_release_contended", |b| {
        b.iter_batched(
            || {
                let mut l = SpinLock::new(SpinPolicy::mcs(), 1);
                l.acquire(TaskId(0), 0);
                for i in 1..8 {
                    l.acquire(TaskId(i), i % 2);
                }
                l
            },
            |mut l| {
                let mut holder = TaskId(0);
                for _ in 1..8 {
                    let (_, next) = l.release(holder, 0);
                    let w = next.expect("fifo grant");
                    l.try_claim(w).expect("claimable");
                    holder = w;
                }
                holder
            },
            BatchSize::SmallInput,
        )
    });
}

/// End-to-end: simulate one full oversubscribed barrier benchmark run.
/// This measures the simulator's own throughput (host time per run).
fn bench_whole_simulation(c: &mut Criterion) {
    use oversub::task::{ScriptProgram, SyncOp};
    use oversub::workload::{ThreadSpec, Workload, WorldBuilder};
    use oversub::{run, Mechanisms, RunConfig};

    struct B;
    impl Workload for B {
        fn name(&self) -> &str {
            "bench-bsp"
        }
        fn build(&mut self, w: &mut WorldBuilder) {
            let bar = w.barrier(16);
            for i in 0..16u64 {
                let mut script = Vec::new();
                for k in 0..40u64 {
                    script.push(Action::Compute {
                        ns: 100_000 + (i * 31 + k * 7) % 900,
                    });
                    script.push(Action::Sync(SyncOp::BarrierWait(bar)));
                }
                w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
            }
        }
    }

    let mut g = c.benchmark_group("whole_run_16T_4c");
    g.sample_size(20);
    g.bench_function("vanilla", |b| {
        b.iter(|| run(&mut B, &RunConfig::vanilla(4)))
    });
    g.bench_function("optimized", |b| {
        b.iter(|| {
            run(
                &mut B,
                &RunConfig::vanilla(4).with_mech(Mechanisms::optimized()),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wake_paths,
    bench_bwd_check,
    bench_runqueue,
    bench_event_queue,
    bench_pick_next,
    bench_spinlock_state_machine,
    bench_whole_simulation
);
criterion_main!(benches);
