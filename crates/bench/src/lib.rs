//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//! - `--scale <f64>`: phase-count scale (default 0.25; 1.0 = paper-sized),
//! - `--seed <u64>`: RNG seed (default 42),
//! - `--jobs <N>`: sweep worker count (default: `OVERSUB_JOBS` or the
//!   host's available parallelism; results are identical at any value),
//! - `--csv`: emit CSV instead of the aligned table.

use oversub::experiments::{self as exp, ExpOpts};
use oversub::metrics::TextTable;
use oversub::ExecEnv;

/// Parsed command line for a figure binary.
pub struct HarnessArgs {
    /// Experiment options.
    pub opts: ExpOpts,
    /// Emit CSV.
    pub csv: bool,
}

/// Parse `std::env::args` into [`HarnessArgs`]. A `--jobs N` flag is
/// applied process-wide via [`oversub::sweep::set_jobs`].
pub fn parse_args() -> HarnessArgs {
    let mut opts = ExpOpts {
        scale: 0.25,
        seed: 42,
    };
    let mut csv = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a float");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                let n: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --jobs needs a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --jobs needs a positive integer");
                    std::process::exit(2);
                }
                oversub::sweep::set_jobs(n);
            }
            "--csv" => csv = true,
            "--quick" => opts.scale = 0.08,
            "--full" => opts.scale = 1.0,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: [--scale F] [--seed N] [--jobs N] [--csv] [--quick] [--full]");
                std::process::exit(2);
            }
        }
    }
    HarnessArgs { opts, csv }
}

/// Print a finished experiment with a header.
pub fn emit(title: &str, paper_ref: &str, table: &TextTable, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("== {title}");
        println!("   (reproduces {paper_ref})");
        println!();
        print!("{}", table.render());
    }
}

/// One entry of the full regeneration set: (id, description, driver).
pub type Experiment = (&'static str, &'static str, Box<dyn Fn() -> TextTable>);

/// Every figure, table, ablation, and extension driver, in report order.
/// Shared by `all_experiments` (regeneration) and `sweep_wall` (the
/// parallel-harness benchmark); each driver batches its own arms onto the
/// sweep pool, so the list itself is iterated sequentially.
pub fn experiment_set(o: ExpOpts) -> Vec<Experiment> {
    vec![
        (
            "Figure 1",
            "oversubscription survey",
            Box::new(move || exp::fig01_survey(o)),
        ),
        (
            "Figure 2",
            "direct cost of context switching",
            Box::new(move || exp::fig02_direct_cost(o)),
        ),
        (
            "Figure 3",
            "synchronization intervals",
            Box::new(exp::fig03_sync_intervals),
        ),
        (
            "Figure 4",
            "indirect cost of context switching (us per CS)",
            Box::new(move || exp::fig04_indirect_cost(o)),
        ),
        (
            "Figure 9",
            "virtual blocking on blocking benchmarks",
            Box::new(move || exp::fig09_vb_blocking(o)),
        ),
        (
            "Figure 10a",
            "VB speedup vs threads (1 core)",
            Box::new(move || exp::fig10a_primitives_threads(o)),
        ),
        (
            "Figure 10b",
            "VB speedup vs cores (32 threads)",
            Box::new(move || exp::fig10b_primitives_cores(o)),
        ),
        (
            "Figure 11",
            "CPU elasticity",
            Box::new(move || exp::fig11_elasticity(o)),
        ),
        (
            "Figure 12",
            "memcached",
            Box::new(move || exp::fig12_memcached(o)),
        ),
        (
            "Figure 13a",
            "spinlocks in a container",
            Box::new(move || exp::fig13_spinlocks(ExecEnv::Container, o)),
        ),
        (
            "Figure 13b",
            "spinlocks in KVM (PLE arm)",
            Box::new(move || exp::fig13_spinlocks(ExecEnv::Vm, o)),
        ),
        (
            "Figure 14",
            "user-customized spinning",
            Box::new(move || exp::fig14_custom_spin(o)),
        ),
        (
            "Figure 15",
            "SHFLLOCK comparison",
            Box::new(move || exp::fig15_shfllock(o)),
        ),
        (
            "Table 1",
            "runtime statistics",
            Box::new(move || exp::table1_runtime_stats(o)),
        ),
        (
            "Table 2",
            "BWD true positives",
            Box::new(move || exp::table2_bwd_tp(o)),
        ),
        (
            "Table 3",
            "BWD false positives",
            Box::new(move || exp::table3_bwd_fp(o)),
        ),
        (
            "Ablation",
            "BWD interval sweep",
            Box::new(move || exp::ablation_bwd_interval(o)),
        ),
        (
            "Ablation",
            "BWD heuristics",
            Box::new(move || exp::ablation_bwd_heuristics(o)),
        ),
        (
            "Ablation",
            "VB auto-disable",
            Box::new(move || exp::ablation_vb_auto_disable(o)),
        ),
        (
            "Ablation",
            "migration-cost sensitivity",
            Box::new(move || exp::ablation_migration_cost(o)),
        ),
        (
            "Ablation",
            "wakeup-path cost sweep",
            Box::new(move || exp::ablation_wakeup_cost(o)),
        ),
        (
            "Extension",
            "pipeline cascade",
            Box::new(move || exp::ext_pipeline_cascade(o)),
        ),
        (
            "Extension",
            "web serving",
            Box::new(move || exp::ext_web_serving(o)),
        ),
        (
            "Extension",
            "dynamic threading vs oversubscription",
            Box::new(move || exp::ext_forkjoin_dynamic_threading(o)),
        ),
        (
            "Extension",
            "neighbour-aware mechanism vs VB/BWD on tail latency",
            Box::new(move || exp::ext_neighbour_tails(o)),
        ),
        (
            "Extension",
            "overload goodput frontier (deadline + retry + shedding)",
            Box::new(move || exp::ext_overload_frontier(o)),
        ),
        (
            "Ablation",
            "huge pages remove the TLB benefit",
            Box::new(move || exp::ablation_hugepages(o)),
        ),
        (
            "Methodology",
            "seed sensitivity",
            Box::new(move || exp::seed_sensitivity(o)),
        ),
    ]
}

/// Render the full experiment set into the canonical `bench_output.txt`
/// text form (`==== id: desc` headers). This is the byte-compared payload
/// of the `sweep_wall` determinism gate.
pub fn render_experiment_set(o: ExpOpts) -> String {
    let mut out = String::new();
    for (id, desc, f) in experiment_set(o) {
        out.push_str(&format!("==== {id}: {desc}\n"));
        out.push_str(&f().render());
        out.push('\n');
    }
    out
}
