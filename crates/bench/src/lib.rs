//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//! - `--scale <f64>`: phase-count scale (default 0.25; 1.0 = paper-sized),
//! - `--seed <u64>`: RNG seed (default 42),
//! - `--csv`: emit CSV instead of the aligned table.

use oversub::experiments::ExpOpts;
use oversub::metrics::TextTable;

/// Parsed command line for a figure binary.
pub struct HarnessArgs {
    /// Experiment options.
    pub opts: ExpOpts,
    /// Emit CSV.
    pub csv: bool,
}

/// Parse `std::env::args` into [`HarnessArgs`].
pub fn parse_args() -> HarnessArgs {
    let mut opts = ExpOpts {
        scale: 0.25,
        seed: 42,
    };
    let mut csv = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a float");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--csv" => csv = true,
            "--quick" => opts.scale = 0.08,
            "--full" => opts.scale = 1.0,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: [--scale F] [--seed N] [--csv] [--quick] [--full]");
                std::process::exit(2);
            }
        }
    }
    HarnessArgs { opts, csv }
}

/// Print a finished experiment with a header.
pub fn emit(title: &str, paper_ref: &str, table: &TextTable, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("== {title}");
        println!("   (reproduces {paper_ref})");
        println!();
        print!("{}", table.render());
    }
}
