//! Figure 9: virtual blocking on the 13 blocking benchmarks
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig09_vb_blocking(a.opts);
    emit(
        "Figure 9: virtual blocking on the 13 blocking benchmarks",
        "Figure 9",
        &t,
        a.csv,
    );
}
