//! Figure 12: memcached throughput and latency
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig12_memcached(a.opts);
    emit(
        "Figure 12: memcached throughput and latency",
        "Figure 12",
        &t,
        a.csv,
    );
}
