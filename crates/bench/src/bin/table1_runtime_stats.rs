//! Table 1: runtime statistics under oversubscription
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::table1_runtime_stats(a.opts);
    emit(
        "Table 1: runtime statistics under oversubscription",
        "Table 1",
        &t,
        a.csv,
    );
}
