//! Figure 13: BWD across ten spinlock algorithms.
use oversub::ExecEnv;
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let tc = oversub::experiments::fig13_spinlocks(ExecEnv::Container, a.opts);
    emit(
        "Figure 13(a): container (execution time, s)",
        "Figure 13(a)",
        &tc,
        a.csv,
    );
    if !a.csv {
        println!();
    }
    let tv = oversub::experiments::fig13_spinlocks(ExecEnv::Vm, a.opts);
    emit(
        "Figure 13(b): KVM with the PLE arm (execution time, s)",
        "Figure 13(b)",
        &tv,
        a.csv,
    );
}
