//! Dump the full `RunReport` of one benchmark arm as JSON — plumbing for
//! external analysis/plotting.
//!
//! Usage: `export_report <benchmark> <threads> [--cores N] [--mech vanilla|vb|bwd|optimized|ple|neighbour] [--scale F] [--seed N] [--vm]`

use oversub::workload::Workload;
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::{run_labelled, ExecEnv, MachineSpec, Mechanisms, RunConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| usage());
    let threads: usize = args
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let mut cores = 8usize;
    let mut mech = Mechanisms::vanilla();
    let mut scale = 0.25f64;
    let mut seed = 42u64;
    let mut env = ExecEnv::Container;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cores" => cores = args.next().and_then(|v| v.parse().ok()).unwrap_or(8),
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(0.25),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            "--vm" => env = ExecEnv::Vm,
            "--mech" => {
                mech = match args.next().as_deref() {
                    Some("vanilla") => Mechanisms::vanilla(),
                    Some("vb") => Mechanisms::vb_only(),
                    Some("bwd") => Mechanisms::bwd_only(),
                    Some("optimized") => Mechanisms::optimized(),
                    Some("ple") => Mechanisms::ple_only(),
                    Some("neighbour") => Mechanisms::neighbour_aware(),
                    other => {
                        eprintln!("unknown mechanism {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }
    let Some(profile) = BenchProfile::by_name(&name) else {
        eprintln!("unknown benchmark '{name}'; available:");
        for p in BenchProfile::all() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(2);
    };
    let mut wl = Skeleton::scaled(profile, threads, scale).with_salt(seed);
    let mut cfg = RunConfig::vanilla(cores)
        .with_machine(MachineSpec::PaperN(cores))
        .with_mech(mech)
        .with_seed(seed);
    cfg.env = env;
    let label = format!("{}/{}T/{}c", wl.name(), threads, cores);
    let report = run_labelled(&mut wl, &cfg, &label);
    println!("{}", report.to_json_pretty());
}

fn usage() -> ! {
    eprintln!(
        "usage: export_report <benchmark> <threads> [--cores N] [--mech vanilla|vb|bwd|optimized|ple|neighbour] [--scale F] [--seed N] [--vm]"
    );
    std::process::exit(2)
}
