//! Figure 10: VB speedup on pthreads primitives.
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let ta = oversub::experiments::fig10a_primitives_threads(a.opts);
    emit(
        "Figure 10(a): 1..32 threads on a single core (speedup of VB over vanilla)",
        "Figure 10(a)",
        &ta,
        a.csv,
    );
    if !a.csv {
        println!();
    }
    let tb = oversub::experiments::fig10b_primitives_cores(a.opts);
    emit(
        "Figure 10(b): 32 threads on 1..32 cores (speedup of VB over vanilla)",
        "Figure 10(b)",
        &tb,
        a.csv,
    );
}
