//! Ablation studies beyond the paper's tables (DESIGN.md section 7).
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    emit(
        "Ablation: BWD timer interval sweep (lu, 32T/8c)",
        "DESIGN.md 7",
        &oversub::experiments::ablation_bwd_interval(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Ablation: LBR-only vs LBR+PMC heuristics (cg, 32T/8c)",
        "DESIGN.md 7",
        &oversub::experiments::ablation_bwd_heuristics(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Ablation: VB auto-disable under no oversubscription (streamcluster, 8T/8c)",
        "DESIGN.md 7",
        &oversub::experiments::ablation_vb_auto_disable(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Ablation: migration-cost sensitivity (streamcluster, 32T/8c)",
        "DESIGN.md 7",
        &oversub::experiments::ablation_migration_cost(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Ablation: wakeup-path cost sweep (cg, 32T/8c)",
        "DESIGN.md 7",
        &oversub::experiments::ablation_wakeup_cost(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Extension: pipeline cascade (flag flavour, 8 cores)",
        "paper section 4.3 microbenchmark",
        &oversub::experiments::ext_pipeline_cascade(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Ablation: huge pages remove the TLB benefit (Figure 4, rnd-r)",
        "extension of paper section 2.3",
        &oversub::experiments::ablation_hugepages(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Extension: dynamic threading (OpenMP-style) vs oversubscription",
        "paper section 5 (related work)",
        &oversub::experiments::ext_forkjoin_dynamic_threading(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Extension: CloudSuite-style web serving",
        "paper section 4.2 (CloudSuite reference)",
        &oversub::experiments::ext_web_serving(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Extension: neighbour-aware mechanism vs VB/BWD on tail latency",
        "extension beyond the paper",
        &oversub::experiments::ext_neighbour_tails(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Extension: overload goodput frontier (deadline + retry + shedding)",
        "extension beyond the paper",
        &oversub::experiments::ext_overload_frontier(a.opts),
        a.csv,
    );
    if !a.csv {
        println!();
    }
    emit(
        "Seed sensitivity (5 seeds, mean +/- 95% CI)",
        "methodology check",
        &oversub::experiments::seed_sensitivity(a.opts),
        a.csv,
    );
}
