//! Figure 4: indirect cost of context switching (per-CS us; negative = benefit)
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig04_indirect_cost(a.opts);
    emit(
        "Figure 4: indirect cost of context switching (per-CS us; negative = benefit)",
        "Figure 4",
        &t,
        a.csv,
    );
}
