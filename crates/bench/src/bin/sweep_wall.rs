//! Parallel-harness wall-clock benchmark: the full experiment set at
//! quick scale, once at `--jobs 1` (the exact legacy sequential path) and
//! once at `--jobs N` (default: available parallelism), with the run
//! cache reset between passes so each pays full cost.
//!
//! Two numbers fall out:
//! - **determinism**: the two passes' rendered output is byte-compared;
//!   any difference is a bug in the pool's submission-order merge and
//!   fails the run immediately,
//! - **speedup**: sequential wall over parallel wall, written (with pool
//!   utilization and run-cache counters) to `BENCH_sweep_wall.json` at
//!   the repo root.
//!
//! Usage: `sweep_wall [--scale F] [--seed N] [--jobs N] [--check]`.
//! With `--check` the committed baseline is left untouched and the run
//! becomes the CI gate: byte-identity always, and speedup >= 1.5x when
//! the host has at least 4 CPUs (on smaller hosts there is no parallelism
//! to win, so only determinism is enforced).

use std::time::Instant;

use oversub::experiments::ExpOpts;
use oversub::metrics::json::{obj, JsonValue};
use oversub::sweep;
use oversub_bench::render_experiment_set;

const MIN_SPEEDUP_MILLI: u64 = 1500;
const MIN_GATE_CPUS: usize = 4;

/// One full rendering pass at a fixed jobs count, from a cold cache.
fn pass(o: ExpOpts, jobs: usize) -> (String, u64, sweep::SweepStats) {
    sweep::reset();
    sweep::set_jobs(jobs);
    let t0 = Instant::now();
    let out = render_experiment_set(o);
    let wall = (t0.elapsed().as_nanos() as u64).max(1);
    (out, wall, sweep::stats())
}

fn main() {
    let mut o = ExpOpts::quick();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut jobs = host_cpus;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => o.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(o.scale),
            "--seed" => o.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(o.seed),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(jobs)
                    .max(1)
            }
            "--check" => check = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: sweep_wall [--scale F] [--seed N] [--jobs N] [--check]");
                std::process::exit(2);
            }
        }
    }

    println!("sweep_wall: sequential pass (jobs=1)...");
    let (seq_out, seq_ns, seq_stats) = pass(o, 1);
    println!("sweep_wall: parallel pass (jobs={jobs})...");
    let (par_out, par_ns, par_stats) = pass(o, jobs);

    // The determinism gate: both passes must render identical bytes.
    if seq_out != par_out {
        let at = seq_out
            .bytes()
            .zip(par_out.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| seq_out.len().min(par_out.len()));
        eprintln!(
            "sweep_wall FAILED: output differs between jobs=1 and jobs={jobs} \
             (first difference at byte {at}) — the pool's submission-order \
             merge is broken"
        );
        std::process::exit(1);
    }

    let speedup_milli = ((seq_ns as u128) * 1000 / (par_ns as u128)) as u64;
    println!(
        "jobs=1: {:.2}s   jobs={}: {:.2}s   speedup {}.{:03}x   \
         (cache: {} hits / {} misses / {} uncached; pool utilization {}.{:03})",
        seq_ns as f64 / 1e9,
        jobs,
        par_ns as f64 / 1e9,
        speedup_milli / 1000,
        speedup_milli % 1000,
        par_stats.cache_hits,
        par_stats.cache_misses,
        par_stats.uncached_runs,
        par_stats.pool.utilization_milli() / 1000,
        par_stats.pool.utilization_milli() % 1000,
    );

    if check {
        println!("byte-identity gate passed ({} bytes)", seq_out.len());
        if host_cpus >= MIN_GATE_CPUS && jobs >= MIN_GATE_CPUS {
            if speedup_milli < MIN_SPEEDUP_MILLI {
                eprintln!(
                    "sweep_wall FAILED: speedup {}.{:03}x < 1.500x at jobs={jobs} \
                     on a {host_cpus}-CPU host",
                    speedup_milli / 1000,
                    speedup_milli % 1000,
                );
                std::process::exit(1);
            }
            println!("speedup gate passed (>= 1.500x)");
        } else if host_cpus < MIN_GATE_CPUS {
            println!(
                "speedup gate skipped: host_cpus < {MIN_GATE_CPUS} \
                 (host has {host_cpus} CPU(s))"
            );
        } else {
            println!("speedup gate skipped: jobs={jobs} (needs >= {MIN_GATE_CPUS})");
        }
        return;
    }

    let doc = obj(vec![
        ("bench", JsonValue::Str("sweep_wall".to_string())),
        (
            "detlint_ruleset",
            JsonValue::Str(analysis::RULESET_VERSION.to_string()),
        ),
        ("host_cpus", JsonValue::UInt(host_cpus as u128)),
        ("jobs", JsonValue::UInt(jobs as u128)),
        ("scale_milli", JsonValue::UInt((o.scale * 1000.0) as u128)),
        ("seed", JsonValue::UInt(o.seed as u128)),
        ("sequential_wall_ns", JsonValue::UInt(seq_ns as u128)),
        ("parallel_wall_ns", JsonValue::UInt(par_ns as u128)),
        ("speedup_milli", JsonValue::UInt(speedup_milli as u128)),
        ("byte_identical", JsonValue::Bool(true)),
        ("output_bytes", JsonValue::UInt(seq_out.len() as u128)),
        ("cache_hits", JsonValue::UInt(par_stats.cache_hits as u128)),
        (
            "cache_misses",
            JsonValue::UInt(par_stats.cache_misses as u128),
        ),
        (
            "uncached_runs",
            JsonValue::UInt(par_stats.uncached_runs as u128),
        ),
        (
            "pool_jobs_executed",
            JsonValue::UInt(par_stats.pool.jobs as u128),
        ),
        (
            "pool_utilization_milli",
            JsonValue::UInt(par_stats.pool.utilization_milli() as u128),
        ),
        (
            "sequential_cache_hits",
            JsonValue::UInt(seq_stats.cache_hits as u128),
        ),
        (
            "note",
            JsonValue::Str(
                "full experiment set, cold cache per pass; speedup in milli-units \
                 (1500 = 1.5x); output byte-compared between jobs=1 and jobs=N; \
                 speedup is hardware-dependent — the CI gate (--check) only \
                 enforces it on hosts with >= 4 CPUs"
                    .to_string(),
            ),
        ),
    ]);

    let Some(root) = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
    else {
        eprintln!(
            "sweep_wall: cannot locate the repo root from manifest dir {}",
            env!("CARGO_MANIFEST_DIR")
        );
        std::process::exit(1);
    };
    let path = root.join("BENCH_sweep_wall.json");
    if let Err(e) = std::fs::write(&path, doc.to_string_pretty() + "\n") {
        eprintln!("sweep_wall: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}
