//! Figure 11: exploiting CPU elasticity (execution time vs cores)
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig11_elasticity(a.opts);
    emit(
        "Figure 11: exploiting CPU elasticity (execution time vs cores)",
        "Figure 11",
        &t,
        a.csv,
    );
}
