//! Table 3: BWD false-positive rate
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::table3_bwd_fp(a.opts);
    emit("Table 3: BWD false-positive rate", "Table 3", &t, a.csv);
}
