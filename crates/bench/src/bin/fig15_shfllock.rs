//! Figure 15: SHFLLOCK / spin-then-park comparison
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig15_shfllock(a.opts);
    emit(
        "Figure 15: SHFLLOCK / spin-then-park comparison",
        "Figure 15",
        &t,
        a.csv,
    );
}
