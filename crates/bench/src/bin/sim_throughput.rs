//! Simulator throughput benchmark: events/sec and wall-clock of the
//! optimized engine (slab-cancellation queue + timer wheel, cached picks,
//! resched coalescing, idle-quiet timer dispatch) versus the reference
//! engine (classic heap+HashSet queue, uncached scans, no coalescing) on
//! representative workloads. Both engines produce bit-identical *report
//! metrics* — see `tests/determinism.rs`; this binary re-asserts the
//! per-mechanism counters match on every arm — so this measures pure
//! host-side speed. The engines' internal processed-event counts may
//! legitimately differ (resched coalescing retires duplicate wakeup
//! events before dispatch), which is why the JSON reports both an
//! events/sec ratio and a wall-clock ratio.
//!
//! Writes `BENCH_sim_throughput.json` at the repo root and prints a
//! table. Usage: `sim_throughput [--reps N] [--jobs N] [--shards N]
//! [--check | --baseline-reset]` (default 5 reps; best-of-N wall time is
//! reported to suppress scheduling noise). Reps run on the sweep worker
//! pool, but `--jobs` defaults to **1** here — co-running reps contend
//! for host cores and depress the very wall times this benchmark exists
//! to measure. Raise it only for smoke runs where absolute numbers don't
//! matter.
//!
//! On the [`GATED_ARM`] the binary also measures the **intra-run sharded
//! engine** at shards=2 and shards=`--shards` (default 4), asserts its
//! report metrics and processed-event count match the sequential
//! optimized engine exactly, and records each arm's wall-clock speedup
//! in a `sharding` object alongside `host_cpus`. The sharded profile run
//! feeds `barrier_wait_ns`/`mailbox_ns`/`window_events` entries in the
//! phase breakdown.
//!
//! A rewrite of the baseline **ratchets**: each gate quantity is written
//! twice, `*_floor` (the gate value: the minimum of the fresh and
//! committed floors) and `*_current` (the fresh measurement,
//! informational). Host noise on a shared machine swings absolute
//! events/sec by ±30% between runs, and a single lucky run committed as
//! the baseline would make the 0.9x `--check` gates flake for everyone
//! after; repeated regenerations therefore only lower the bar. After a
//! real optimization, raise it deliberately with `--baseline-reset`,
//! which writes the fresh numbers unmerged. All non-gate fields are
//! always fresh.
//!
//! With `--check` the committed baseline is left untouched: the process
//! exits non-zero if any arm's fresh optimized events/sec falls below
//! 0.9x its committed `optimized_events_per_sec_floor`, if any arm with
//! a committed speedup floor of at least 1.2x sees its fresh
//! engine-vs-engine speedup fall below 0.9x its committed
//! `events_per_sec_speedup_milli_floor` (the host-independent ratio;
//! near-1x arms are exempt — their ratio is wall-noise), if the
//! tick-dominated-at-scale arm misses the absolute 3x speedup floor, or
//! — on hosts with >= 4 CPUs — if that arm's sharded run at shards >= 4
//! misses the 1.5x wall-clock floor (smaller hosts print an explicit
//! `gate skipped: host_cpus < 4` line instead). Legacy un-suffixed
//! field names are accepted for baselines committed before the
//! floor/current split.

use std::time::Instant;

use oversub::metrics::json::{obj, JsonValue};
use oversub::simcore::pool::Job;
use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::{
    run_counted, run_phase_profiled, sweep, MachineSpec, Mechanisms, PhaseProfile, RunConfig,
};

/// The arm whose events/sec speedup carries an absolute floor in
/// `--check` mode. The tick-dominated-at-scale arm is where the
/// data-oriented core's O(active) dispatch and cadence lanes must show:
/// the reference engine's per-tick cost grows with machine size while
/// the optimized engine's stays flat.
const GATED_ARM: &str = "skeleton/streamcluster/8T/512c";

/// Absolute events/sec speedup floor for [`GATED_ARM`], in milli-units
/// (3000 = 3.0x). Measured headroom is ~3.6-4.8x on an idle host.
const SPEEDUP_FLOOR_MILLI: u64 = 3000;

/// The relative speedup-regression gate only applies to arms whose
/// *committed* ratio is at least this (1200 = 1.2x). Near-1x arms
/// (memcached, the oversubscribed batch, the pipeline) complete in
/// ~1 ms and their engine-vs-engine ratio swings ±30% with host
/// scheduling noise — a 0.9x gate there measures the host, not the
/// code. Those arms stay covered by the absolute events/sec gate; the
/// ratio gate watches the arms the optimizations demonstrably win
/// (the tick-dominated machines), where rot would actually show.
const RATIO_GATE_MIN_MILLI: u64 = 1200;

/// Wall-clock speedup floor for the intra-run sharded engine on
/// [`GATED_ARM`] at shards >= 4, in milli-units (1500 = 1.5x). Only
/// enforced on hosts with at least [`MIN_SHARD_GATE_CPUS`] CPUs — the
/// sharded engine cannot beat the sequential one without cores to run
/// the shards on, so `--check` prints an explicit skip line elsewhere.
const SHARD_SPEEDUP_FLOOR_MILLI: u64 = 1500;

/// Minimum host CPUs for the shard speedup gate to be meaningful.
const MIN_SHARD_GATE_CPUS: usize = 4;

struct Arm {
    name: &'static str,
    cfg: RunConfig,
    mk: Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>,
}

fn arms() -> Vec<Arm> {
    let mut v = Vec::new();

    // Server workload: futex/epoll heavy, 19 CPUs, periodic BWD timers on
    // every CPU make the timer wheel earn its keep.
    let cpus = Memcached::paper(16, 8, 60_000.0).total_cpus();
    v.push(Arm {
        name: "memcached/16T/8c",
        cfg: RunConfig::vanilla(cpus)
            .with_mech(Mechanisms::optimized())
            .with_seed(42)
            .with_max_time(SimTime::from_millis(300)),
        mk: Box::new(|| Box::new(Memcached::paper(16, 8, 60_000.0))),
    });

    // Batch skeleton: heavy oversubscription (64 threads, 32 cores) makes
    // `pick_next` scans long and wakeup bursts dense.
    v.push(Arm {
        name: "skeleton/streamcluster/64T/32c",
        cfg: RunConfig::vanilla(32)
            .with_machine(MachineSpec::PaperN(32))
            .with_mech(Mechanisms::optimized())
            .with_seed(7),
        mk: Box::new(|| {
            let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
            Box::new(Skeleton::scaled(p, 64, 0.10).with_salt(7))
        }),
    });

    // Tick-dominated: 8 threads on a 64-CPU machine. Most cores sit idle
    // and the event mix is dominated by periodic BWD timers and balance
    // passes — the timer wheel's cadence, plus the waiter-board O(1)
    // early-outs for idle_pull and periodic_balance.
    v.push(Arm {
        name: "skeleton/streamcluster/8T/64c",
        cfg: RunConfig::vanilla(64)
            .with_machine(MachineSpec::PaperN(64))
            .with_mech(Mechanisms::optimized())
            .with_seed(11)
            .with_max_time(SimTime::from_millis(300)),
        mk: Box::new(|| {
            let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
            Box::new(Skeleton::scaled(p, 8, 0.60).with_salt(11))
        }),
    });

    // Tick-dominated at scale: the same 8 threads on a 512-CPU machine.
    // Nearly every event is an idle-core BWD tick or balance pass, so the
    // arm isolates the engine's per-tick cost. The reference engine's
    // cost per tick *grows* with machine size (each pop is a binary-heap
    // sift over one pending timer per core) while the optimized engine's
    // cadence lanes and idle-quiet batching keep it O(1) — this arm is
    // where the data-oriented core's scaling shows, and where the
    // `--check` gate demands its 3x floor (`SPEEDUP_FLOOR_MILLI`).
    v.push(Arm {
        name: "skeleton/streamcluster/8T/512c",
        cfg: RunConfig::vanilla(512)
            .with_machine(MachineSpec::PaperN(512))
            .with_mech(Mechanisms::optimized())
            .with_seed(11)
            .with_max_time(SimTime::from_millis(300)),
        mk: Box::new(|| {
            let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
            Box::new(Skeleton::scaled(p, 8, 0.60).with_salt(11))
        }),
    });

    // Spin pipeline: flag-wait heavy, exercises BWD skip flags and the
    // cached-pick invalidation paths.
    v.push(Arm {
        name: "pipeline/16S/4c",
        cfg: RunConfig::vanilla(4)
            .with_machine(MachineSpec::PaperN(4))
            .with_mech(Mechanisms::optimized())
            .with_seed(5),
        mk: Box::new(|| Box::new(SpinPipeline::new(16, 60, WaitFlavor::Flags))),
    });

    v
}

/// One engine flavor's measurement: best-of-`reps` wall time in
/// nanoseconds, the (deterministic) processed-event count, the
/// per-mechanism counters, and the exact tail percentiles of the run's
/// request digest (informational; empty-digest arms report zero
/// requests).
type Measurement = (u64, u64, Vec<JsonValue>, JsonValue);

/// Measure one arm under one engine configuration. The reps execute as a
/// pool batch at the given jobs count (default 1: timing fidelity).
fn measure(arm: &Arm, cfg: RunConfig, reps: usize, jobs: usize) -> Measurement {
    let batch: Vec<Job<'_, Measurement>> = (0..reps)
        .map(|_| {
            let cfg = cfg.clone();
            let mk = &arm.mk;
            let name = arm.name;
            Box::new(move || {
                let mut wl = mk();
                let t0 = Instant::now();
                let (report, n) = run_counted(&mut *wl, &cfg, name);
                let dt = t0.elapsed().as_nanos() as u64;
                let mechs = report
                    .mechanisms
                    .iter()
                    .map(|m| m.to_json_value())
                    .collect();
                let d = &report.latency_exact;
                let tails = obj(vec![
                    ("requests", JsonValue::UInt(d.count() as u128)),
                    ("p50_ns", JsonValue::UInt(d.p50() as u128)),
                    ("p99_ns", JsonValue::UInt(d.p99() as u128)),
                    ("p999_ns", JsonValue::UInt(d.p999() as u128)),
                ]);
                (dt.max(1), n, mechs, tails)
            }) as Job<'_, (u64, u64, Vec<JsonValue>, JsonValue)>
        })
        .collect();
    let mut best_ns = u64::MAX;
    let mut events = 0u64;
    let mut mechs = Vec::new();
    let mut tails = JsonValue::Null;
    for (dt, n, m, t) in sweep::run_batch_with_jobs(batch, jobs) {
        best_ns = best_ns.min(dt);
        events = n;
        mechs = m;
        tails = t;
    }
    (best_ns, events, mechs, tails)
}

/// One instrumented (untimed-rep) run of the arm: where the engine's
/// wall-clock goes, bucketed by phase. Runs outside the timed reps — the
/// per-event `Instant` pairs would distort them.
fn profile(arm: &Arm, cfg: RunConfig) -> PhaseProfile {
    let mut wl = (arm.mk)();
    let (_, _, prof) = run_phase_profiled(&mut *wl, &cfg, arm.name);
    prof
}

fn phase_json(p: &PhaseProfile) -> JsonValue {
    obj(vec![
        ("queue_pop_ns", JsonValue::UInt(p.queue_pop_ns as u128)),
        ("pick_ns", JsonValue::UInt(p.pick_ns as u128)),
        ("mech_timer_ns", JsonValue::UInt(p.mech_timer_ns as u128)),
        ("balance_ns", JsonValue::UInt(p.balance_ns as u128)),
        ("other_ns", JsonValue::UInt(p.other_ns as u128)),
        (
            "barrier_wait_ns",
            JsonValue::UInt(p.barrier_wait_ns as u128),
        ),
        ("mailbox_ns", JsonValue::UInt(p.mailbox_ns as u128)),
        ("window_events", JsonValue::UInt(p.window_events as u128)),
        ("total_ns", JsonValue::UInt(p.total_ns() as u128)),
    ])
}

fn eps(events: u64, wall_ns: u64) -> u64 {
    ((events as u128) * 1_000_000_000 / (wall_ns as u128)) as u64
}

fn main() {
    let mut reps = 5usize;
    let mut jobs = 1usize;
    let mut shards = 4usize;
    let mut check = false;
    let mut baseline_reset = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--reps" {
            reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(5).max(1);
        } else if a == "--jobs" {
            jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
        } else if a == "--shards" {
            shards = args.next().and_then(|v| v.parse().ok()).unwrap_or(4).max(2);
        } else if a == "--check" {
            check = true;
        } else if a == "--baseline-reset" {
            baseline_reset = true;
        }
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The bench crate sits at <root>/crates/bench, so the repo root is two
    // levels up from the compile-time manifest dir.
    let Some(root) = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
    else {
        eprintln!(
            "sim_throughput: cannot locate the repo root from manifest dir {}",
            env!("CARGO_MANIFEST_DIR")
        );
        std::process::exit(1);
    };
    let path = root.join("BENCH_sim_throughput.json");

    // Committed baseline, for the conservative ratchet (see module docs).
    // `--check` never rewrites the file, so it needs no merge input.
    let prior = (!check && !baseline_reset)
        .then(|| std::fs::read_to_string(&path).ok())
        .flatten()
        .and_then(|t| JsonValue::parse(&t).ok());

    println!(
        "{:<32} {:>12} {:>10} {:>12} {:>10} {:>8} {:>8}",
        "workload", "ref ev/s", "ref ms", "fast ev/s", "fast ms", "ev/s x", "wall x"
    );
    let mut rows = Vec::new();
    for arm in arms() {
        // Sequential arms pin shards=1 explicitly: the benchmark measures
        // the exact current code path even when OVERSUB_SHARDS is set.
        let seq_cfg = arm.cfg.clone().with_shards(1);
        let (ref_ns, ref_events, ref_mechs, ref_tails) = measure(
            &arm,
            seq_cfg.clone().with_reference_engine(true),
            reps,
            jobs,
        );
        let (fast_ns, fast_events, mechs, tails) = measure(&arm, seq_cfg.clone(), reps, jobs);
        // The exact digest is a report metric: both engines must agree on
        // it bit-for-bit, same as the mechanism counters below.
        if ref_tails.to_string_compact() != tails.to_string_compact() {
            eprintln!(
                "{}: exact latency digest DIVERGED between engines\n  ref:  {}\n  fast: {}",
                arm.name,
                ref_tails.to_string_compact(),
                tails.to_string_compact()
            );
            std::process::exit(1);
        }
        // The two engines must agree on every report metric; the
        // per-mechanism counters are the part this binary can see, so
        // re-assert their bit-identity on every arm (the full-report
        // check lives in tests/determinism.rs). Processed-event counts
        // are the one engine-internal quantity allowed to differ, and
        // only downward: coalescing retires events, never adds them.
        let ref_json = JsonValue::Array(ref_mechs).to_string_compact();
        let fast_json = JsonValue::Array(mechs.clone()).to_string_compact();
        if ref_json != fast_json {
            eprintln!(
                "{}: mechanism counters DIVERGED between engines\n  ref:  {ref_json}\n  fast: {fast_json}",
                arm.name
            );
            std::process::exit(1);
        }
        if fast_events > ref_events {
            eprintln!(
                "{}: optimized engine processed MORE events than reference \
                 ({fast_events} > {ref_events}) — coalescing can only remove events",
                arm.name
            );
            std::process::exit(1);
        }
        let ref_eps = eps(ref_events, ref_ns);
        let fast_eps = eps(fast_events, fast_ns);
        // Coalescing removes events, so events/sec on the fast engine's
        // own (smaller) count understates the win; wall-clock speedup is
        // the honest end-to-end number. Report both, in milli-units.
        let eps_x_milli = (fast_eps as u128 * 1000 / ref_eps.max(1) as u128) as u64;
        let wall_x_milli = (ref_ns as u128 * 1000 / fast_ns.max(1) as u128) as u64;
        println!(
            "{:<32} {:>12} {:>10.2} {:>12} {:>10.2} {:>7}.{:03} {:>7}.{:03}",
            arm.name,
            ref_eps,
            ref_ns as f64 / 1e6,
            fast_eps,
            fast_ns as f64 / 1e6,
            eps_x_milli / 1000,
            eps_x_milli % 1000,
            wall_x_milli / 1000,
            wall_x_milli % 1000,
        );
        // Intra-run sharding arms (gated arm only): the same optimized
        // configuration at shards=2 and shards=N must reproduce the
        // sequential run's report metrics and event count exactly;
        // wall-clock speedup over the sequential optimized engine is the
        // gate quantity on multi-core hosts.
        let mut sharding = JsonValue::Null;
        if arm.name == GATED_ARM {
            let mut counts = vec![2usize];
            if shards > 2 {
                counts.push(shards);
            }
            let mut shard_rows = Vec::new();
            for &n in &counts {
                let (s_ns, s_events, s_mechs, s_tails) =
                    measure(&arm, arm.cfg.clone().with_shards(n), reps, jobs);
                let s_json = JsonValue::Array(s_mechs).to_string_compact();
                if s_json != fast_json {
                    eprintln!(
                        "{}: mechanism counters DIVERGED at shards={n}\n  seq:    \
                         {fast_json}\n  shards: {s_json}",
                        arm.name
                    );
                    std::process::exit(1);
                }
                if s_tails.to_string_compact() != tails.to_string_compact() {
                    eprintln!(
                        "{}: exact latency digest DIVERGED at shards={n}\n  seq:    {}\n  \
                         shards: {}",
                        arm.name,
                        tails.to_string_compact(),
                        s_tails.to_string_compact()
                    );
                    std::process::exit(1);
                }
                if s_events != fast_events {
                    eprintln!(
                        "{}: processed-event count DIVERGED at shards={n} \
                         ({s_events} != {fast_events}) — window folds must count every tick",
                        arm.name
                    );
                    std::process::exit(1);
                }
                let sx_milli = (fast_ns as u128 * 1000 / s_ns.max(1) as u128) as u64;
                println!(
                    "{:<32} {:>12} {:>10} {:>12} {:>10.2} {:>8} {:>7}.{:03}",
                    format!("  + shards={n}"),
                    "-",
                    "-",
                    eps(s_events, s_ns),
                    s_ns as f64 / 1e6,
                    "-",
                    sx_milli / 1000,
                    sx_milli % 1000,
                );
                shard_rows.push(obj(vec![
                    ("shards", JsonValue::UInt(n as u128)),
                    ("wall_ns", JsonValue::UInt(s_ns as u128)),
                    (
                        "wall_clock_speedup_milli",
                        JsonValue::UInt(sx_milli as u128),
                    ),
                ]));
            }
            sharding = obj(vec![
                ("host_cpus", JsonValue::UInt(host_cpus as u128)),
                ("reports_identical", JsonValue::Bool(true)),
                ("arms", JsonValue::Array(shard_rows)),
            ]);
        }
        // Ratchet the gate fields against the committed row (if any):
        // keep the minimum, so regenerating on a lucky run cannot
        // tighten the 0.9x gates (see module docs). Each gate quantity is
        // emitted twice: `*_floor` is the ratcheted gate value, `*_current`
        // the fresh measurement (informational). Pre-split baselines are
        // read through the legacy un-suffixed names.
        let prior_row = prior.as_ref().and_then(|p| {
            p.get("workloads")?
                .as_array()?
                .iter()
                .find(|b| b.get("workload").and_then(|v| v.as_str()) == Some(arm.name))
        });
        let ratchet = |field: &str, fresh: u64| -> u64 {
            let prev = prior_row.and_then(|r| {
                r.get(&format!("{field}_floor"))
                    .or_else(|| r.get(field))
                    .and_then(|v| v.as_u64())
            });
            match prev {
                Some(prev) => fresh.min(prev),
                None => fresh,
            }
        };
        rows.push(obj(vec![
            ("workload", JsonValue::Str(arm.name.to_string())),
            ("reference_events", JsonValue::UInt(ref_events as u128)),
            ("reference_wall_ns", JsonValue::UInt(ref_ns as u128)),
            ("reference_events_per_sec", JsonValue::UInt(ref_eps as u128)),
            ("optimized_events", JsonValue::UInt(fast_events as u128)),
            ("optimized_wall_ns", JsonValue::UInt(fast_ns as u128)),
            (
                "optimized_events_per_sec_floor",
                JsonValue::UInt(ratchet("optimized_events_per_sec", fast_eps) as u128),
            ),
            (
                "optimized_events_per_sec_current",
                JsonValue::UInt(fast_eps as u128),
            ),
            (
                "events_per_sec_speedup_milli_floor",
                JsonValue::UInt(ratchet("events_per_sec_speedup_milli", eps_x_milli) as u128),
            ),
            (
                "events_per_sec_speedup_milli_current",
                JsonValue::UInt(eps_x_milli as u128),
            ),
            (
                "wall_clock_speedup_milli_floor",
                JsonValue::UInt(ratchet("wall_clock_speedup_milli", wall_x_milli) as u128),
            ),
            (
                "wall_clock_speedup_milli_current",
                JsonValue::UInt(wall_x_milli as u128),
            ),
            ("sharding", sharding),
            ("mechanisms", JsonValue::Array(mechs)),
            ("latency_tails", tails),
            (
                "phase_breakdown",
                obj({
                    let mut pb = vec![
                        (
                            "reference",
                            phase_json(&profile(&arm, seq_cfg.clone().with_reference_engine(true))),
                        ),
                        ("optimized", phase_json(&profile(&arm, seq_cfg.clone()))),
                    ];
                    if arm.name == GATED_ARM {
                        pb.push((
                            "optimized_sharded",
                            phase_json(&profile(&arm, arm.cfg.clone().with_shards(shards))),
                        ));
                    }
                    pb
                }),
            ),
        ]));
    }

    let sweep_stats = sweep::stats();
    let doc = obj(vec![
        ("bench", JsonValue::Str("sim_throughput".to_string())),
        (
            "detlint_ruleset",
            JsonValue::Str(analysis::RULESET_VERSION.to_string()),
        ),
        ("reps", JsonValue::UInt(reps as u128)),
        ("pool_jobs", JsonValue::UInt(jobs as u128)),
        (
            "pool_jobs_executed",
            JsonValue::UInt(sweep_stats.pool.jobs as u128),
        ),
        (
            "cache_hits",
            JsonValue::UInt(sweep_stats.cache_hits as u128),
        ),
        (
            "note",
            JsonValue::Str(
                "best-of-reps wall time; speedups in milli-units (1300 = 1.3x); \
             report metrics are bit-identical across engines (tests/determinism.rs, \
             re-asserted per arm here) while processed-event counts may differ \
             (resched coalescing, optimized <= reference); phase_breakdown is one \
             instrumented untimed run per engine; gate fields (*_floor) ratchet \
             to the per-arm minimum across regenerations unless --baseline-reset, \
             *_current is the fresh measurement; sharding.arms record the \
             deterministic sharded engine's wall-clock vs the sequential \
             optimized engine on this host"
                    .to_string(),
            ),
        ),
        ("workloads", JsonValue::Array(rows)),
    ]);

    if check {
        match check_against_baseline(&doc, &path, host_cpus) {
            Ok(()) => println!("\nthroughput gate passed against {}", path.display()),
            Err(e) => {
                eprintln!("\nthroughput gate FAILED: {e}");
                eprintln!(
                    "(regenerate the baseline with `cargo run --release -p oversub-bench \
                     --bin sim_throughput` and commit the JSON)"
                );
                std::process::exit(1);
            }
        }
        return;
    }

    if let Err(e) = std::fs::write(&path, doc.to_string_pretty() + "\n") {
        eprintln!("sim_throughput: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());
}

/// Compare a fresh measurement against the committed baseline. Three
/// gates, all of which must hold:
///
/// 1. every arm's optimized events/sec stays above 0.9x the committed
///    value (absolute regression — catches "the engine got slower");
/// 2. every arm whose committed ratio is at least
///    [`RATIO_GATE_MIN_MILLI`] keeps its events/sec *speedup over the
///    reference engine* above 0.9x the committed ratio (relative
///    regression — the ratio is host-speed independent, so this catches
///    optimizations quietly rotting even on faster or slower CI
///    hardware; near-1x arms are exempt, see the constant's docs);
/// 3. [`GATED_ARM`]'s fresh speedup clears the absolute
///    [`SPEEDUP_FLOOR_MILLI`] floor;
/// 4. on hosts with at least [`MIN_SHARD_GATE_CPUS`] CPUs,
///    [`GATED_ARM`]'s sharded run at shards >= 4 clears the
///    [`SHARD_SPEEDUP_FLOOR_MILLI`] wall-clock floor over the sequential
///    optimized engine. On smaller hosts the gate is skipped with an
///    explicit `gate skipped: host_cpus < 4` line — a sharded engine
///    cannot outrun the sequential one without cores to run shards on,
///    and a silent pass would misreport coverage.
///
/// Gate fields read the `*_floor` names, falling back to the legacy
/// un-suffixed names for baselines committed before the split; fresh
/// values read `*_current` the same way. The baseline file is not
/// rewritten.
fn check_against_baseline(
    fresh: &JsonValue,
    path: &std::path::Path,
    host_cpus: usize,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let baseline = JsonValue::parse(&text)
        .map_err(|e| format!("baseline {} is malformed: {e}", path.display()))?;
    let base_rows = baseline
        .get("workloads")
        .and_then(|w| w.as_array())
        .ok_or("baseline has no 'workloads' array")?;
    let fresh_rows = fresh
        .get("workloads")
        .and_then(|w| w.as_array())
        .ok_or("fresh run has no 'workloads' array")?;
    // `*_floor` on new-format rows, legacy un-suffixed name otherwise
    // (and `*_current` for fresh values, same fallback).
    let field = |row: &JsonValue, base: &str, suffix: &str| -> Option<u64> {
        row.get(&format!("{base}_{suffix}"))
            .or_else(|| row.get(base))
            .and_then(|v| v.as_u64())
    };
    let mut failures = Vec::new();
    for row in fresh_rows {
        let name = row
            .get("workload")
            .and_then(|v| v.as_str())
            .ok_or("row without 'workload'")?;
        let fresh_eps = field(row, "optimized_events_per_sec", "current")
            .ok_or("row without 'optimized_events_per_sec_current'")?;
        let fresh_speedup = field(row, "events_per_sec_speedup_milli", "current")
            .ok_or("row without 'events_per_sec_speedup_milli_current'")?;
        if name == GATED_ARM && fresh_speedup < SPEEDUP_FLOOR_MILLI {
            failures.push(format!(
                "{name}: speedup {fresh_speedup} milli below the hard floor \
                 {SPEEDUP_FLOOR_MILLI} milli"
            ));
        }
        if name == GATED_ARM {
            // Gate 4: the sharded engine's wall-clock win. Byte-identity
            // of the sharded reports was already asserted while measuring
            // (the process exits non-zero on any divergence), so only the
            // speedup is judged here.
            let best_shard = row
                .get("sharding")
                .and_then(|s| s.get("arms"))
                .and_then(|a| a.as_array())
                .into_iter()
                .flatten()
                .filter(|a| a.get("shards").and_then(|v| v.as_u64()).unwrap_or(0) >= 4)
                .filter_map(|a| a.get("wall_clock_speedup_milli").and_then(|v| v.as_u64()))
                .max();
            if host_cpus < MIN_SHARD_GATE_CPUS {
                println!(
                    "  {name}: shard speedup gate skipped: host_cpus < {MIN_SHARD_GATE_CPUS} \
                     (host has {host_cpus})"
                );
            } else {
                match best_shard {
                    Some(sx) if sx >= SHARD_SPEEDUP_FLOOR_MILLI => println!(
                        "  {name}: shards>=4 wall speedup {sx} milli >= floor \
                         {SHARD_SPEEDUP_FLOOR_MILLI} -> ok"
                    ),
                    Some(sx) => failures.push(format!(
                        "{name}: shards>=4 wall speedup {sx} milli below the \
                         {SHARD_SPEEDUP_FLOOR_MILLI} milli floor on a {host_cpus}-CPU host"
                    )),
                    None => failures.push(format!(
                        "{name}: no shards>=4 measurement in the fresh run \
                         (pass --shards 4 or higher)"
                    )),
                }
            }
        }
        let Some(base) = base_rows
            .iter()
            .find(|b| b.get("workload").and_then(|v| v.as_str()) == Some(name))
        else {
            // A new arm has no baseline yet; skip rather than fail, so
            // adding arms does not require regenerating in the same PR.
            println!("  {name}: no committed baseline, skipped");
            continue;
        };
        let base_eps = field(base, "optimized_events_per_sec", "floor")
            .ok_or("baseline row without 'optimized_events_per_sec_floor'")?;
        let base_speedup = field(base, "events_per_sec_speedup_milli", "floor")
            .ok_or("baseline row without 'events_per_sec_speedup_milli_floor'")?;
        let eps_ok = (fresh_eps as u128) * 10 >= (base_eps as u128) * 9;
        let ratio_gated = base_speedup >= RATIO_GATE_MIN_MILLI;
        let speedup_ok = !ratio_gated || (fresh_speedup as u128) * 10 >= (base_speedup as u128) * 9;
        println!(
            "  {name}: fresh {fresh_eps} ev/s vs committed {base_eps} ev/s -> {}; \
             speedup {fresh_speedup} vs committed {base_speedup} milli -> {}",
            if eps_ok { "ok" } else { "REGRESSED" },
            if !ratio_gated {
                "ungated (near-1x arm)"
            } else if speedup_ok {
                "ok"
            } else {
                "REGRESSED"
            },
        );
        if !eps_ok {
            failures.push(format!(
                "{name}: {fresh_eps} ev/s < 0.9x committed {base_eps} ev/s"
            ));
        }
        if !speedup_ok {
            failures.push(format!(
                "{name}: speedup {fresh_speedup} milli < 0.9x committed {base_speedup} milli"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}
