//! Simulator throughput benchmark: events/sec and wall-clock of the
//! optimized engine (slab-cancellation queue + timer wheel, cached picks,
//! resched coalescing) versus the reference engine (classic heap+HashSet
//! queue, uncached scans, no coalescing) on three representative
//! workloads. Both engines produce bit-identical metrics — see
//! `tests/determinism.rs` — so this measures pure host-side speed.
//!
//! Writes `BENCH_sim_throughput.json` at the repo root and prints a
//! table. Usage: `sim_throughput [--reps N] [--jobs N] [--check]`
//! (default 5 reps; best-of-N wall time is reported to suppress
//! scheduling noise). Reps run on the sweep worker pool, but `--jobs`
//! defaults to **1** here — co-running reps contend for host cores and
//! depress the very wall times this benchmark exists to measure. Raise it
//! only for smoke runs where absolute numbers don't matter.
//!
//! With `--check` the committed baseline is left untouched: the fresh
//! optimized-engine events/sec of every arm is compared against the
//! committed `optimized_events_per_sec`, and the process exits non-zero
//! if any arm regressed below 0.9x — the CI throughput gate.

use std::time::Instant;

use oversub::metrics::json::{obj, JsonValue};
use oversub::simcore::pool::Job;
use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::{run_counted, sweep, MachineSpec, Mechanisms, RunConfig};

struct Arm {
    name: &'static str,
    cfg: RunConfig,
    mk: Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>,
}

fn arms() -> Vec<Arm> {
    let mut v = Vec::new();

    // Server workload: futex/epoll heavy, 19 CPUs, periodic BWD timers on
    // every CPU make the timer wheel earn its keep.
    let cpus = Memcached::paper(16, 8, 60_000.0).total_cpus();
    v.push(Arm {
        name: "memcached/16T/8c",
        cfg: RunConfig::vanilla(cpus)
            .with_mech(Mechanisms::optimized())
            .with_seed(42)
            .with_max_time(SimTime::from_millis(300)),
        mk: Box::new(|| Box::new(Memcached::paper(16, 8, 60_000.0))),
    });

    // Batch skeleton: heavy oversubscription (64 threads, 32 cores) makes
    // `pick_next` scans long and wakeup bursts dense.
    v.push(Arm {
        name: "skeleton/streamcluster/64T/32c",
        cfg: RunConfig::vanilla(32)
            .with_machine(MachineSpec::PaperN(32))
            .with_mech(Mechanisms::optimized())
            .with_seed(7),
        mk: Box::new(|| {
            let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
            Box::new(Skeleton::scaled(p, 64, 0.10).with_salt(7))
        }),
    });

    // Tick-dominated: 8 threads on a 64-CPU machine. Most cores sit idle
    // and the event mix is dominated by periodic BWD timers and balance
    // passes — the timer wheel's cadence, plus the waiter-board O(1)
    // early-outs for idle_pull and periodic_balance.
    v.push(Arm {
        name: "skeleton/streamcluster/8T/64c",
        cfg: RunConfig::vanilla(64)
            .with_machine(MachineSpec::PaperN(64))
            .with_mech(Mechanisms::optimized())
            .with_seed(11)
            .with_max_time(SimTime::from_millis(300)),
        mk: Box::new(|| {
            let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
            Box::new(Skeleton::scaled(p, 8, 0.60).with_salt(11))
        }),
    });

    // Spin pipeline: flag-wait heavy, exercises BWD skip flags and the
    // cached-pick invalidation paths.
    v.push(Arm {
        name: "pipeline/16S/4c",
        cfg: RunConfig::vanilla(4)
            .with_machine(MachineSpec::PaperN(4))
            .with_mech(Mechanisms::optimized())
            .with_seed(5),
        mk: Box::new(|| Box::new(SpinPipeline::new(16, 60, WaitFlavor::Flags))),
    });

    v
}

/// Best-of-`reps` wall time in nanoseconds, the (deterministic)
/// processed-event count, and the per-mechanism counters of the run, for
/// one engine flavor. The reps execute as a pool batch at the given jobs
/// count (default 1: timing fidelity).
fn measure(arm: &Arm, reference: bool, reps: usize, jobs: usize) -> (u64, u64, Vec<JsonValue>) {
    let cfg = arm.cfg.clone().with_reference_engine(reference);
    let batch: Vec<Job<'_, (u64, u64, Vec<JsonValue>)>> = (0..reps)
        .map(|_| {
            let cfg = cfg.clone();
            let mk = &arm.mk;
            let name = arm.name;
            Box::new(move || {
                let mut wl = mk();
                let t0 = Instant::now();
                let (report, n) = run_counted(&mut *wl, &cfg, name);
                let dt = t0.elapsed().as_nanos() as u64;
                let mechs = report
                    .mechanisms
                    .iter()
                    .map(|m| m.to_json_value())
                    .collect();
                (dt.max(1), n, mechs)
            }) as Job<'_, (u64, u64, Vec<JsonValue>)>
        })
        .collect();
    let mut best_ns = u64::MAX;
    let mut events = 0u64;
    let mut mechs = Vec::new();
    for (dt, n, m) in sweep::run_batch_with_jobs(batch, jobs) {
        best_ns = best_ns.min(dt);
        events = n;
        mechs = m;
    }
    (best_ns, events, mechs)
}

fn eps(events: u64, wall_ns: u64) -> u64 {
    ((events as u128) * 1_000_000_000 / (wall_ns as u128)) as u64
}

fn main() {
    let mut reps = 5usize;
    let mut jobs = 1usize;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--reps" {
            reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(5).max(1);
        } else if a == "--jobs" {
            jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
        } else if a == "--check" {
            check = true;
        }
    }

    println!(
        "{:<32} {:>12} {:>10} {:>12} {:>10} {:>8} {:>8}",
        "workload", "ref ev/s", "ref ms", "fast ev/s", "fast ms", "ev/s x", "wall x"
    );
    let mut rows = Vec::new();
    for arm in arms() {
        let (ref_ns, ref_events, _) = measure(&arm, true, reps, jobs);
        let (fast_ns, fast_events, mechs) = measure(&arm, false, reps, jobs);
        let ref_eps = eps(ref_events, ref_ns);
        let fast_eps = eps(fast_events, fast_ns);
        // Coalescing removes events, so events/sec on the fast engine's
        // own (smaller) count understates the win; wall-clock speedup is
        // the honest end-to-end number. Report both, in milli-units.
        let eps_x_milli = (fast_eps as u128 * 1000 / ref_eps.max(1) as u128) as u64;
        let wall_x_milli = (ref_ns as u128 * 1000 / fast_ns.max(1) as u128) as u64;
        println!(
            "{:<32} {:>12} {:>10.2} {:>12} {:>10.2} {:>7}.{:03} {:>7}.{:03}",
            arm.name,
            ref_eps,
            ref_ns as f64 / 1e6,
            fast_eps,
            fast_ns as f64 / 1e6,
            eps_x_milli / 1000,
            eps_x_milli % 1000,
            wall_x_milli / 1000,
            wall_x_milli % 1000,
        );
        rows.push(obj(vec![
            ("workload", JsonValue::Str(arm.name.to_string())),
            ("reference_events", JsonValue::UInt(ref_events as u128)),
            ("reference_wall_ns", JsonValue::UInt(ref_ns as u128)),
            ("reference_events_per_sec", JsonValue::UInt(ref_eps as u128)),
            ("optimized_events", JsonValue::UInt(fast_events as u128)),
            ("optimized_wall_ns", JsonValue::UInt(fast_ns as u128)),
            (
                "optimized_events_per_sec",
                JsonValue::UInt(fast_eps as u128),
            ),
            (
                "events_per_sec_speedup_milli",
                JsonValue::UInt(eps_x_milli as u128),
            ),
            (
                "wall_clock_speedup_milli",
                JsonValue::UInt(wall_x_milli as u128),
            ),
            ("mechanisms", JsonValue::Array(mechs)),
        ]));
    }

    let sweep_stats = sweep::stats();
    let doc = obj(vec![
        ("bench", JsonValue::Str("sim_throughput".to_string())),
        (
            "detlint_ruleset",
            JsonValue::Str(analysis::RULESET_VERSION.to_string()),
        ),
        ("reps", JsonValue::UInt(reps as u128)),
        ("pool_jobs", JsonValue::UInt(jobs as u128)),
        (
            "pool_jobs_executed",
            JsonValue::UInt(sweep_stats.pool.jobs as u128),
        ),
        (
            "cache_hits",
            JsonValue::UInt(sweep_stats.cache_hits as u128),
        ),
        (
            "note",
            JsonValue::Str(
                "best-of-reps wall time; speedups in milli-units (1300 = 1.3x); \
             metrics are bit-identical across engines (tests/determinism.rs)"
                    .to_string(),
            ),
        ),
        ("workloads", JsonValue::Array(rows)),
    ]);

    // The bench crate sits at <root>/crates/bench, so the repo root is two
    // levels up from the compile-time manifest dir.
    let Some(root) = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
    else {
        eprintln!(
            "sim_throughput: cannot locate the repo root from manifest dir {}",
            env!("CARGO_MANIFEST_DIR")
        );
        std::process::exit(1);
    };
    let path = root.join("BENCH_sim_throughput.json");

    if check {
        match check_against_baseline(&doc, &path) {
            Ok(()) => println!("\nthroughput gate passed against {}", path.display()),
            Err(e) => {
                eprintln!("\nthroughput gate FAILED: {e}");
                eprintln!(
                    "(regenerate the baseline with `cargo run --release -p oversub-bench \
                     --bin sim_throughput` and commit the JSON)"
                );
                std::process::exit(1);
            }
        }
        return;
    }

    if let Err(e) = std::fs::write(&path, doc.to_string_pretty() + "\n") {
        eprintln!("sim_throughput: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());
}

/// Compare a fresh measurement against the committed baseline: every arm's
/// optimized events/sec must stay above 0.9x of the committed value. The
/// baseline file is not rewritten.
fn check_against_baseline(fresh: &JsonValue, path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let baseline = JsonValue::parse(&text)
        .map_err(|e| format!("baseline {} is malformed: {e}", path.display()))?;
    let base_rows = baseline
        .get("workloads")
        .and_then(|w| w.as_array())
        .ok_or("baseline has no 'workloads' array")?;
    let fresh_rows = fresh
        .get("workloads")
        .and_then(|w| w.as_array())
        .ok_or("fresh run has no 'workloads' array")?;
    let mut failures = Vec::new();
    for row in fresh_rows {
        let name = row
            .get("workload")
            .and_then(|v| v.as_str())
            .ok_or("row without 'workload'")?;
        let fresh_eps = row
            .get("optimized_events_per_sec")
            .and_then(|v| v.as_u64())
            .ok_or("row without 'optimized_events_per_sec'")?;
        let Some(base) = base_rows
            .iter()
            .find(|b| b.get("workload").and_then(|v| v.as_str()) == Some(name))
        else {
            // A new arm has no baseline yet; skip rather than fail, so
            // adding arms does not require regenerating in the same PR.
            println!("  {name}: no committed baseline, skipped");
            continue;
        };
        let base_eps = base
            .get("optimized_events_per_sec")
            .and_then(|v| v.as_u64())
            .ok_or("baseline row without 'optimized_events_per_sec'")?;
        let ok = (fresh_eps as u128) * 10 >= (base_eps as u128) * 9;
        println!(
            "  {name}: fresh {fresh_eps} ev/s vs committed {base_eps} ev/s -> {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failures.push(format!(
                "{name}: {fresh_eps} ev/s < 0.9x committed {base_eps} ev/s"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}
