//! Simulator throughput benchmark: events/sec and wall-clock of the
//! optimized engine (slab-cancellation queue + timer wheel, cached picks,
//! resched coalescing) versus the reference engine (classic heap+HashSet
//! queue, uncached scans, no coalescing) on three representative
//! workloads. Both engines produce bit-identical metrics — see
//! `tests/determinism.rs` — so this measures pure host-side speed.
//!
//! Writes `BENCH_sim_throughput.json` at the repo root and prints a
//! table. Usage: `sim_throughput [--reps N]` (default 5; best-of-N wall
//! time is reported to suppress scheduling noise).

use std::time::Instant;

use oversub::metrics::json::{obj, JsonValue};
use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::{run_counted, MachineSpec, Mechanisms, RunConfig};

struct Arm {
    name: &'static str,
    cfg: RunConfig,
    mk: Box<dyn Fn() -> Box<dyn Workload>>,
}

fn arms() -> Vec<Arm> {
    let mut v = Vec::new();

    // Server workload: futex/epoll heavy, 19 CPUs, periodic BWD timers on
    // every CPU make the timer wheel earn its keep.
    let cpus = Memcached::paper(16, 8, 60_000.0).total_cpus();
    v.push(Arm {
        name: "memcached/16T/8c",
        cfg: RunConfig::vanilla(cpus)
            .with_mech(Mechanisms::optimized())
            .with_seed(42)
            .with_max_time(SimTime::from_millis(300)),
        mk: Box::new(|| Box::new(Memcached::paper(16, 8, 60_000.0))),
    });

    // Batch skeleton: heavy oversubscription (64 threads, 32 cores) makes
    // `pick_next` scans long and wakeup bursts dense.
    v.push(Arm {
        name: "skeleton/streamcluster/64T/32c",
        cfg: RunConfig::vanilla(32)
            .with_machine(MachineSpec::PaperN(32))
            .with_mech(Mechanisms::optimized())
            .with_seed(7),
        mk: Box::new(|| {
            let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
            Box::new(Skeleton::scaled(p, 64, 0.10).with_salt(7))
        }),
    });

    // Tick-dominated: 8 threads on a 64-CPU machine. Most cores sit idle
    // and the event mix is dominated by periodic BWD timers and balance
    // passes — the timer wheel's cadence, plus the waiter-board O(1)
    // early-outs for idle_pull and periodic_balance.
    v.push(Arm {
        name: "skeleton/streamcluster/8T/64c",
        cfg: RunConfig::vanilla(64)
            .with_machine(MachineSpec::PaperN(64))
            .with_mech(Mechanisms::optimized())
            .with_seed(11)
            .with_max_time(SimTime::from_millis(300)),
        mk: Box::new(|| {
            let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
            Box::new(Skeleton::scaled(p, 8, 0.60).with_salt(11))
        }),
    });

    // Spin pipeline: flag-wait heavy, exercises BWD skip flags and the
    // cached-pick invalidation paths.
    v.push(Arm {
        name: "pipeline/16S/4c",
        cfg: RunConfig::vanilla(4)
            .with_machine(MachineSpec::PaperN(4))
            .with_mech(Mechanisms::optimized())
            .with_seed(5),
        mk: Box::new(|| Box::new(SpinPipeline::new(16, 60, WaitFlavor::Flags))),
    });

    v
}

/// Best-of-`reps` wall time in nanoseconds, plus the (deterministic)
/// processed-event count, for one engine flavor.
fn measure(arm: &Arm, reference: bool, reps: usize) -> (u64, u64) {
    let cfg = arm.cfg.clone().with_reference_engine(reference);
    let mut best_ns = u64::MAX;
    let mut events = 0u64;
    for _ in 0..reps {
        let mut wl = (arm.mk)();
        let t0 = Instant::now();
        let (_report, n) = run_counted(&mut *wl, &cfg, arm.name);
        let dt = t0.elapsed().as_nanos() as u64;
        best_ns = best_ns.min(dt.max(1));
        events = n;
    }
    (best_ns, events)
}

fn eps(events: u64, wall_ns: u64) -> u64 {
    ((events as u128) * 1_000_000_000 / (wall_ns as u128)) as u64
}

fn main() {
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--reps" {
            reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(5).max(1);
        }
    }

    println!(
        "{:<32} {:>12} {:>10} {:>12} {:>10} {:>8} {:>8}",
        "workload", "ref ev/s", "ref ms", "fast ev/s", "fast ms", "ev/s x", "wall x"
    );
    let mut rows = Vec::new();
    for arm in arms() {
        let (ref_ns, ref_events) = measure(&arm, true, reps);
        let (fast_ns, fast_events) = measure(&arm, false, reps);
        let ref_eps = eps(ref_events, ref_ns);
        let fast_eps = eps(fast_events, fast_ns);
        // Coalescing removes events, so events/sec on the fast engine's
        // own (smaller) count understates the win; wall-clock speedup is
        // the honest end-to-end number. Report both, in milli-units.
        let eps_x_milli = (fast_eps as u128 * 1000 / ref_eps.max(1) as u128) as u64;
        let wall_x_milli = (ref_ns as u128 * 1000 / fast_ns.max(1) as u128) as u64;
        println!(
            "{:<32} {:>12} {:>10.2} {:>12} {:>10.2} {:>7}.{:03} {:>7}.{:03}",
            arm.name,
            ref_eps,
            ref_ns as f64 / 1e6,
            fast_eps,
            fast_ns as f64 / 1e6,
            eps_x_milli / 1000,
            eps_x_milli % 1000,
            wall_x_milli / 1000,
            wall_x_milli % 1000,
        );
        rows.push(obj(vec![
            ("workload", JsonValue::Str(arm.name.to_string())),
            ("reference_events", JsonValue::UInt(ref_events as u128)),
            ("reference_wall_ns", JsonValue::UInt(ref_ns as u128)),
            ("reference_events_per_sec", JsonValue::UInt(ref_eps as u128)),
            ("optimized_events", JsonValue::UInt(fast_events as u128)),
            ("optimized_wall_ns", JsonValue::UInt(fast_ns as u128)),
            (
                "optimized_events_per_sec",
                JsonValue::UInt(fast_eps as u128),
            ),
            (
                "events_per_sec_speedup_milli",
                JsonValue::UInt(eps_x_milli as u128),
            ),
            (
                "wall_clock_speedup_milli",
                JsonValue::UInt(wall_x_milli as u128),
            ),
        ]));
    }

    let doc = obj(vec![
        ("bench", JsonValue::Str("sim_throughput".to_string())),
        ("reps", JsonValue::UInt(reps as u128)),
        (
            "note",
            JsonValue::Str(
                "best-of-reps wall time; speedups in milli-units (1300 = 1.3x); \
             metrics are bit-identical across engines (tests/determinism.rs)"
                    .to_string(),
            ),
        ),
        ("workloads", JsonValue::Array(rows)),
    ]);

    // The bench crate sits at <root>/crates/bench, so the repo root is two
    // levels up from the compile-time manifest dir.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root");
    let path = root.join("BENCH_sim_throughput.json");
    std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write benchmark json");
    println!("\nwrote {}", path.display());
}
