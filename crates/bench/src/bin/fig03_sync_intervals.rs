//! Figure 3: synchronization intervals across the suites
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig03_sync_intervals();
    emit(
        "Figure 3: synchronization intervals across the suites",
        "Figure 3",
        &t,
        a.csv,
    );
}
