//! CI tail-latency smoke: the exact request-latency pipeline as a
//! pass/fail gate.
//!
//! Runs one request-shaped workload per family — memcached, web serving,
//! a spin pipeline, a fork-join region loop, and a condvar-phased
//! benchmark skeleton — and checks that every report carries a populated
//! exact latency digest with sane order statistics:
//!
//! - the digest is present and non-empty (`completed requests > 0`),
//! - `p50 <= p99 <= p999 <= max` and `min <= p50`,
//! - the digest's completion count matches `completed_ops`,
//! - the bucketed histogram mean is finite (no NaN leaking into tables).
//!
//! A family that panics, errors, or violates any of these fails the
//! process. The cells are independent simulations and run on the sweep
//! worker pool (`OVERSUB_JOBS`); rows print in submission order.
//!
//! Usage: `cargo run --release -p oversub-bench --bin tail_smoke`

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use oversub::simcore::pool::Job;
use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::forkjoin::ForkJoin;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::workloads::webserving::WebServing;
use oversub::{sweep, try_run, Mechanisms, RunConfig};

struct Scenario {
    family: &'static str,
    cpus: usize,
    mk: Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            family: "memcached/16T/4c",
            cpus: Memcached::paper(16, 4, 80_000.0).total_cpus(),
            mk: Box::new(|| Box::new(Memcached::paper(16, 4, 80_000.0))),
        },
        Scenario {
            family: "web-serving/16T/4c",
            cpus: WebServing::new(16, 4, 40_000.0).total_cpus(),
            mk: Box::new(|| Box::new(WebServing::new(16, 4, 40_000.0))),
        },
        Scenario {
            family: "pipeline/8S/4c",
            cpus: 4,
            mk: Box::new(|| Box::new(SpinPipeline::new(8, 60, WaitFlavor::Flags))),
        },
        Scenario {
            family: "forkjoin/16T/4c",
            cpus: 4,
            mk: Box::new(|| Box::new(ForkJoin::new(16, 16, 40, 32, 8_000))),
        },
        Scenario {
            family: "skeleton/ferret/16T/4c",
            cpus: 4,
            mk: Box::new(|| {
                let p = BenchProfile::by_name("ferret").expect("known benchmark");
                Box::new(Skeleton::scaled(p, 16, 0.12).with_salt(7))
            }),
        },
    ]
}

/// One family: its printable row plus any failure records.
fn run_cell(
    family: &str,
    cfg: &RunConfig,
    mk: &(dyn Fn() -> Box<dyn Workload> + Send + Sync),
) -> (String, Vec<String>) {
    let mut failures = Vec::new();
    let mut wl = mk();
    let outcome = catch_unwind(AssertUnwindSafe(|| try_run(&mut *wl, cfg)));
    let row = match outcome {
        Err(_) => {
            failures.push(format!("{family}: engine panicked"));
            format!(
                "{:<26} {:>10} {:>10} {:>10} {:>10}  PANIC",
                family, "-", "-", "-", "-"
            )
        }
        Ok(Err(e)) => {
            failures.push(format!("{family}: engine error: {e}"));
            format!(
                "{:<26} {:>10} {:>10} {:>10} {:>10}  ERROR",
                family, "-", "-", "-", "-"
            )
        }
        Ok(Ok(report)) => {
            let d = &report.latency_exact;
            if d.is_empty() {
                failures.push(format!(
                    "{family}: exact latency digest is empty — no request completions reached \
                     the sink"
                ));
            } else {
                if !(d.min() <= d.p50()
                    && d.p50() <= d.p99()
                    && d.p99() <= d.p999()
                    && d.p999() <= d.max())
                {
                    failures.push(format!(
                        "{family}: percentiles out of order: min={} p50={} p99={} p999={} max={}",
                        d.min(),
                        d.p50(),
                        d.p99(),
                        d.p999(),
                        d.max()
                    ));
                }
                if d.count() != report.completed_ops {
                    failures.push(format!(
                        "{family}: digest holds {} samples but the report counts {} completed ops",
                        d.count(),
                        report.completed_ops
                    ));
                }
                if !report.latency.mean().is_finite() {
                    failures.push(format!(
                        "{family}: bucketed-histogram mean is not finite: {}",
                        report.latency.mean()
                    ));
                }
            }
            let verdict = if failures.is_empty() {
                "ok"
            } else {
                "BAD-TAILS"
            };
            format!(
                "{:<26} {:>10} {:>9}us {:>9}us {:>9}us  {verdict}",
                family,
                d.count(),
                d.p50() / 1_000,
                d.p99() / 1_000,
                d.p999() / 1_000,
            )
        }
    };
    (row, failures)
}

fn main() {
    let t0 = Instant::now();
    println!(
        "{{\"bench\":\"tail_smoke\",\"detlint_ruleset\":\"{}\",\"pool_jobs\":{}}}",
        analysis::RULESET_VERSION,
        sweep::jobs(),
    );
    println!(
        "{:<26} {:>10} {:>11} {:>11} {:>11}  outcome",
        "family", "requests", "p50", "p99", "p999"
    );

    let scenarios = scenarios();
    let mut cells: Vec<Job<'_, (String, Vec<String>)>> = Vec::new();
    for sc in &scenarios {
        let cfg = RunConfig::vanilla(sc.cpus)
            .with_mech(Mechanisms::optimized())
            .with_seed(2026)
            .with_max_time(SimTime::from_millis(300));
        let family = sc.family;
        let mk = &sc.mk;
        cells.push(Box::new(move || run_cell(family, &cfg, mk.as_ref())));
    }

    let mut failures = Vec::new();
    for (row, cell_failures) in sweep::run_batch(cells) {
        println!("{row}");
        failures.extend(cell_failures);
    }

    println!(
        "\ntail smoke finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        println!("all {} families report exact tails", scenarios.len());
    } else {
        eprintln!("\ntail smoke FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
