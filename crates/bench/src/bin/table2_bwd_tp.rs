//! Table 2: BWD true-positive rate
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::table2_bwd_tp(a.opts);
    emit("Table 2: BWD true-positive rate", "Table 2", &t, a.csv);
}
