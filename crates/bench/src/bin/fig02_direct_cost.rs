//! Figure 2: direct cost of context switching (1..8 threads, 1 core)
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig02_direct_cost(a.opts);
    emit(
        "Figure 2: direct cost of context switching (1..8 threads, 1 core)",
        "Figure 2(a,b)",
        &t,
        a.csv,
    );
}
