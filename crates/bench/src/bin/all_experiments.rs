//! Regenerate every table and figure in one run (the `bench_output.txt`
//! driver). Each driver batches its simulation arms onto the shared sweep
//! worker pool (`--jobs N` / `OVERSUB_JOBS`, default: available
//! parallelism), and repeated arms across figures are served from the
//! memoized run cache — the output is byte-identical at any jobs count.
use oversub_bench::{parse_args, render_experiment_set};

fn main() {
    let a = parse_args();
    print!("{}", render_experiment_set(a.opts));
    let s = oversub::sweep::stats();
    eprintln!(
        "[sweep] jobs={} pool-jobs={} cache-hits={} cache-misses={} uncached={} utilization={}.{:03}",
        oversub::sweep::jobs(),
        s.pool.jobs,
        s.cache_hits,
        s.cache_misses,
        s.uncached_runs,
        s.pool.utilization_milli() / 1000,
        s.pool.utilization_milli() % 1000,
    );
}
