//! Regenerate every table and figure in one run (the `bench_output.txt`
//! driver). Experiments run in parallel across host threads — each
//! simulation is independent and deterministic.
use oversub::experiments as exp;
use oversub::metrics::TextTable;
use oversub::ExecEnv;
use oversub_bench::parse_args;

type Job = (
    &'static str,
    &'static str,
    Box<dyn Fn() -> TextTable + Send>,
);

fn main() {
    let a = parse_args();
    let o = a.opts;
    let jobs: Vec<Job> = vec![
        (
            "Figure 1",
            "oversubscription survey",
            Box::new(move || exp::fig01_survey(o)),
        ),
        (
            "Figure 2",
            "direct cost of context switching",
            Box::new(move || exp::fig02_direct_cost(o)),
        ),
        (
            "Figure 3",
            "synchronization intervals",
            Box::new(exp::fig03_sync_intervals),
        ),
        (
            "Figure 4",
            "indirect cost of context switching (us per CS)",
            Box::new(move || exp::fig04_indirect_cost(o)),
        ),
        (
            "Figure 9",
            "virtual blocking on blocking benchmarks",
            Box::new(move || exp::fig09_vb_blocking(o)),
        ),
        (
            "Figure 10a",
            "VB speedup vs threads (1 core)",
            Box::new(move || exp::fig10a_primitives_threads(o)),
        ),
        (
            "Figure 10b",
            "VB speedup vs cores (32 threads)",
            Box::new(move || exp::fig10b_primitives_cores(o)),
        ),
        (
            "Figure 11",
            "CPU elasticity",
            Box::new(move || exp::fig11_elasticity(o)),
        ),
        (
            "Figure 12",
            "memcached",
            Box::new(move || exp::fig12_memcached(o)),
        ),
        (
            "Figure 13a",
            "spinlocks in a container",
            Box::new(move || exp::fig13_spinlocks(ExecEnv::Container, o)),
        ),
        (
            "Figure 13b",
            "spinlocks in KVM (PLE arm)",
            Box::new(move || exp::fig13_spinlocks(ExecEnv::Vm, o)),
        ),
        (
            "Figure 14",
            "user-customized spinning",
            Box::new(move || exp::fig14_custom_spin(o)),
        ),
        (
            "Figure 15",
            "SHFLLOCK comparison",
            Box::new(move || exp::fig15_shfllock(o)),
        ),
        (
            "Table 1",
            "runtime statistics",
            Box::new(move || exp::table1_runtime_stats(o)),
        ),
        (
            "Table 2",
            "BWD true positives",
            Box::new(move || exp::table2_bwd_tp(o)),
        ),
        (
            "Table 3",
            "BWD false positives",
            Box::new(move || exp::table3_bwd_fp(o)),
        ),
        (
            "Ablation",
            "BWD interval sweep",
            Box::new(move || exp::ablation_bwd_interval(o)),
        ),
        (
            "Ablation",
            "BWD heuristics",
            Box::new(move || exp::ablation_bwd_heuristics(o)),
        ),
        (
            "Ablation",
            "VB auto-disable",
            Box::new(move || exp::ablation_vb_auto_disable(o)),
        ),
        (
            "Ablation",
            "migration-cost sensitivity",
            Box::new(move || exp::ablation_migration_cost(o)),
        ),
        (
            "Ablation",
            "wakeup-path cost sweep",
            Box::new(move || exp::ablation_wakeup_cost(o)),
        ),
        (
            "Extension",
            "pipeline cascade",
            Box::new(move || exp::ext_pipeline_cascade(o)),
        ),
        (
            "Extension",
            "web serving",
            Box::new(move || exp::ext_web_serving(o)),
        ),
        (
            "Extension",
            "dynamic threading vs oversubscription",
            Box::new(move || exp::ext_forkjoin_dynamic_threading(o)),
        ),
        (
            "Ablation",
            "huge pages remove the TLB benefit",
            Box::new(move || exp::ablation_hugepages(o)),
        ),
        (
            "Methodology",
            "seed sensitivity",
            Box::new(move || exp::seed_sensitivity(o)),
        ),
    ];
    let results: Vec<(String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(id, desc, f)| {
                let title = format!("{id}: {desc}");
                s.spawn(move || (title, f().render()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (title, body) in results {
        println!("==== {title}");
        println!("{body}");
    }
}
