//! CI chaos smoke: the fault-injection matrix as a pass/fail gate.
//!
//! Runs three representative workloads (futex/epoll-heavy memcached, a
//! flag-spinning pipeline, and an oversubscribed batch skeleton) under
//! each headline fault kind — lost wakeups, monitoring-timer jitter and
//! drops, and LBR/PMC sensor noise — with the liveness watchdog armed and
//! an event budget as the hang backstop.
//!
//! The cells are independent simulations, so the matrix runs on the sweep
//! worker pool (`OVERSUB_JOBS`, default: available parallelism); rows are
//! printed in matrix order regardless of the jobs count.
//!
//! A cell **passes** when the run produces a report, cleanly or with
//! watchdog diagnostics. A cell **fails** — and the process exits
//! non-zero — when the engine panics, errors, or reports an invariant
//! violation (`rq-inconsistency`, `waiter-board-mismatch`,
//! `event-order`, `lock-grant-mismatch`): chaos is allowed to degrade a
//! run, never to corrupt the engine. Every cell runs with lockdep armed;
//! on the clean (no-fault) arm a `deadlock-cycle` diagnostic is also a
//! failure — these workloads are lock-order clean, so a cycle there is a
//! lockdep false positive or an engine bug. The whole matrix stays well
//! under the ~3 minute CI slot.
//!
//! Usage: `cargo run --release -p oversub-bench --bin chaos_smoke`

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use oversub::simcore::pool::Job;
use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::{sweep, try_run, FaultPlan, MachineSpec, Mechanisms, RunConfig, WatchdogParams};

/// Diagnostic kinds that mean the engine itself broke.
const FAILURE_KINDS: &[&str] = &[
    "rq-inconsistency",
    "waiter-board-mismatch",
    "event-order",
    "lock-grant-mismatch",
];

struct Scenario {
    workload: &'static str,
    cpus: usize,
    mk: Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            workload: "memcached/16T/8c",
            cpus: Memcached::paper(16, 8, 40_000.0).total_cpus(),
            mk: Box::new(|| Box::new(Memcached::paper(16, 8, 40_000.0))),
        },
        Scenario {
            workload: "pipeline/12S/8c",
            cpus: 8,
            mk: Box::new(|| Box::new(SpinPipeline::new(12, 40, WaitFlavor::Flags))),
        },
        Scenario {
            workload: "skeleton/streamcluster/24T/8c",
            cpus: 8,
            mk: Box::new(|| {
                let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
                Box::new(Skeleton::scaled(p, 24, 0.15).with_salt(13))
            }),
        },
    ]
}

fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        // The clean arm doubles as the lockdep false-positive gate: no
        // injected faults, so any deadlock-cycle diagnostic is a failure.
        ("clean", FaultPlan::default()),
        ("lost-wakeup", FaultPlan::default().lost_wakeups(0.3)),
        (
            "timer-jitter",
            FaultPlan::default().timer_jitter(200_000).timer_drops(0.2),
        ),
        ("sensor-noise", FaultPlan::default().sensor_noise(0.3)),
    ]
}

/// One cell of the matrix: its printable row plus any failure records.
fn run_cell(
    workload: &str,
    plan_name: &str,
    cfg: &RunConfig,
    mk: &(dyn Fn() -> Box<dyn Workload> + Send + Sync),
) -> (String, Vec<String>) {
    let mut failures = Vec::new();
    let mut wl = mk();
    let outcome = catch_unwind(AssertUnwindSafe(|| try_run(&mut *wl, cfg)));
    let cell = format!("{workload} x {plan_name}");
    let row = match outcome {
        Err(_) => {
            failures.push(format!("{cell}: engine panicked"));
            format!(
                "{:<32} {:<14} {:>10} {:>8} {:>10}  PANIC",
                workload, plan_name, "-", "-", "-"
            )
        }
        Ok(Err(e)) => {
            failures.push(format!("{cell}: engine error: {e}"));
            format!(
                "{:<32} {:<14} {:>10} {:>8} {:>10}  ERROR",
                workload, plan_name, "-", "-", "-"
            )
        }
        Ok(Ok(report)) => {
            let clean_arm = plan_name == "clean";
            let violations: Vec<_> = report
                .diagnostics
                .iter()
                .filter(|d| {
                    FAILURE_KINDS.contains(&d.kind.as_str())
                        || (clean_arm && d.kind == "deadlock-cycle")
                })
                .collect();
            // Overload-plane arms must keep their accounting balanced
            // even while faults are being injected.
            if !report.goodput.is_empty() && !report.goodput.balanced() {
                let gp = &report.goodput;
                failures.push(format!(
                    "{cell}: goodput accounting violation: {} + {} + {} + {} != {}",
                    gp.completed, gp.deadline_exceeded, gp.shed, gp.abandoned, gp.offered
                ));
            }
            let recoveries: u64 = report.mechanisms.iter().map(|m| m.recoveries).sum();
            let verdict = if violations.is_empty() {
                "ok"
            } else {
                "INVARIANT"
            };
            for v in &violations {
                failures.push(format!(
                    "{cell}: {} at {} ns: {}",
                    v.kind, v.at_ns, v.detail
                ));
            }
            format!(
                "{:<32} {:<14} {:>8.1}ms {:>8} {:>10}  {verdict}",
                workload,
                plan_name,
                report.makespan_ns as f64 / 1e6,
                report.diagnostics.len(),
                recoveries,
            )
        }
    };
    (row, failures)
}

fn main() {
    let t0 = Instant::now();
    println!(
        "{{\"bench\":\"chaos_smoke\",\"detlint_ruleset\":\"{}\",\"pool_jobs\":{}}}",
        analysis::RULESET_VERSION,
        sweep::jobs(),
    );
    println!(
        "{:<32} {:<14} {:>10} {:>8} {:>10}  outcome",
        "workload", "fault", "makespan", "diags", "recoveries"
    );

    let scenarios = scenarios();
    let mut cells: Vec<Job<'_, (String, Vec<String>)>> = Vec::new();
    for sc in &scenarios {
        for (plan_name, plan) in plans() {
            let cfg = RunConfig::vanilla(sc.cpus)
                .with_machine(MachineSpec::PaperN(sc.cpus))
                .with_mech(Mechanisms::optimized())
                .with_seed(2026)
                .with_max_time(SimTime::from_millis(200))
                .with_faults(plan)
                .with_lockdep()
                .with_watchdog(WatchdogParams::default())
                .with_max_events(50_000_000);
            let workload = sc.workload;
            let mk = &sc.mk;
            cells.push(Box::new(move || {
                run_cell(workload, plan_name, &cfg, mk.as_ref())
            }));
        }
    }

    // Extension arm: the overload control plane (deadline, retry client,
    // CoDel shedding) under lost wakeups — the retry/timeout machinery and
    // the watchdog's rescues must coexist without breaking the goodput
    // accounting invariant (checked in `run_cell`).
    {
        use oversub::workloads::admission::{AdmissionPolicy, OverloadParams, RetryPolicy};
        let rate = 240_000.0;
        let ov = OverloadParams::disabled()
            .with_deadline_ns(3_000_000)
            .with_admission(AdmissionPolicy::CoDel {
                target_ns: 300_000,
                interval_ns: 500_000,
            })
            .with_retry(RetryPolicy::default());
        let cfg = RunConfig::vanilla(Memcached::paper(8, 2, rate).total_cpus())
            .with_mech(Mechanisms::optimized())
            .with_seed(2026)
            .with_max_time(SimTime::from_millis(150))
            .with_faults(FaultPlan::default().lost_wakeups(0.3))
            .with_lockdep()
            .with_watchdog(WatchdogParams::default())
            .with_max_events(50_000_000)
            .with_overload(ov);
        cells.push(Box::new(move || {
            run_cell("memcached/8T/2c/overload", "lost-wakeup", &cfg, &|| {
                Box::new(Memcached::paper(8, 2, rate))
            })
        }));
    }

    let total_cells = cells.len();
    let mut failures = Vec::new();
    for (row, cell_failures) in sweep::run_batch(cells) {
        println!("{row}");
        failures.extend(cell_failures);
    }

    println!(
        "\nchaos smoke finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        println!("all {total_cells} cells passed");
    } else {
        eprintln!("\nchaos smoke FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
