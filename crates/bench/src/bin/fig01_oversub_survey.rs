//! Figure 1: oversubscription survey (8T vs 32T on 8 cores)
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig01_survey(a.opts);
    emit(
        "Figure 1: oversubscription survey (8T vs 32T on 8 cores)",
        "Figure 1",
        &t,
        a.csv,
    );
}
