//! CI race smoke: the happens-before detector and the schedule-robustness
//! certifier as a pass/fail gate.
//!
//! One workload per family runs with the race detector armed and is then
//! certified over `--schedules N` (default 8) tie-break permutations:
//!
//! - **Golden workloads** (pipeline, memcached, mutex/barrier stress,
//!   fork-join, batch skeleton) must report **zero** `data-race`
//!   diagnostics: their shared state is ordered by futex/lock/flag
//!   release-acquire edges by construction, so a race there is a detector
//!   false positive or a real synchronization bug — both failures.
//! - The **deliberately racy** micro-workload (`racy-flag-spin`) must
//!   report **exactly one** canonical race naming both access sites.
//! - Workloads marked `robust` must certify **byte-identical** across all
//!   schedules. The rest are allowed to diverge — equal-time local-wake
//!   vs idle-pull ties are physically real alternatives — but every
//!   divergence must be **explained**: a `schedule-divergence` diagnostic
//!   carrying the salt and the first diverging report field. An
//!   unexplained divergence (certifier panic, missing provenance) fails.
//!
//! The cells are independent, so the matrix runs on the sweep worker pool
//! (`OVERSUB_JOBS`); rows print in matrix order regardless of jobs.
//!
//! Usage: `cargo run --release -p oversub-bench --bin race_smoke -- [--schedules N]`

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use oversub::simcore::pool::Job;
use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::micro::{Primitive, PrimitiveStress, RacyFlagSpin};
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::workloads::ForkJoin;
use oversub::{certify_schedules, run, sweep, MachineSpec, Mechanisms, RunConfig};

struct Scenario {
    name: &'static str,
    cpus: usize,
    /// Must certify byte-identical across every schedule.
    robust: bool,
    /// Exact number of `data-race` diagnostics the armed detector must
    /// report (0 for golden workloads, 1 for the deliberate race).
    races: usize,
    mk: Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        // Flag-release pipeline: every cross-stage hand-off is an explicit
        // release edge, which also pins the schedule — fully robust.
        Scenario {
            name: "pipeline-flags/12S/8c",
            cpus: 8,
            robust: true,
            races: 0,
            mk: Box::new(|| Box::new(SpinPipeline::new(12, 40, WaitFlavor::Flags))),
        },
        // The deliberate race: plain flag set vs spin with no ordering
        // edge. The race is a happens-before gap, not a tie-order
        // dependence, so it must certify robust too — and report the same
        // single race on every schedule.
        Scenario {
            name: "racy-flag-spin/2T/2c",
            cpus: 2,
            robust: true,
            races: 1,
            mk: Box::new(|| Box::new(RacyFlagSpin::default())),
        },
        // Futex/epoll-heavy server: wake fan-out contends with idle-pull
        // on equal-time ties, so schedules may legally diverge (explained).
        Scenario {
            name: "memcached/16T/8c",
            cpus: Memcached::paper(16, 8, 40_000.0).total_cpus(),
            robust: false,
            races: 0,
            mk: Box::new(|| Box::new(Memcached::paper(16, 8, 40_000.0))),
        },
        Scenario {
            name: "mutex-stress/12T/8c",
            cpus: 8,
            robust: false,
            races: 0,
            mk: Box::new(|| Box::new(PrimitiveStress::new(12, 200, Primitive::Mutex, 2_000))),
        },
        Scenario {
            name: "barrier-stress/8T/4c",
            cpus: 4,
            robust: false,
            races: 0,
            mk: Box::new(|| Box::new(PrimitiveStress::new(8, 20, Primitive::Barrier, 2_000))),
        },
        Scenario {
            name: "forkjoin/8T/4c",
            cpus: 4,
            robust: false,
            races: 0,
            mk: Box::new(|| Box::new(ForkJoin::region_heavy(8, 8, 3))),
        },
        Scenario {
            name: "skeleton/streamcluster/24T/8c",
            cpus: 8,
            robust: false,
            races: 0,
            mk: Box::new(|| {
                let p = BenchProfile::by_name("streamcluster").expect("known benchmark");
                Box::new(Skeleton::scaled(p, 24, 0.15).with_salt(13))
            }),
        },
    ]
}

fn cfg(cpus: usize) -> RunConfig {
    RunConfig::vanilla(cpus)
        .with_machine(MachineSpec::PaperN(cpus))
        .with_mech(Mechanisms::optimized())
        .with_seed(2026)
        .with_max_time(SimTime::from_millis(150))
        .with_max_events(50_000_000)
        .with_race_detector()
}

/// One scenario: its printable row plus any failure records.
fn run_cell(sc: &Scenario, schedules: usize) -> (String, Vec<String>) {
    let mut failures = Vec::new();
    let cfg = cfg(sc.cpus);

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let report = run(&mut *(sc.mk)(), &cfg);
        let cert = certify_schedules(&mut || (sc.mk)(), &cfg, schedules);
        (report, cert)
    }));
    let (report, cert) = match outcome {
        Err(_) => {
            failures.push(format!("{}: panicked", sc.name));
            return (
                format!("{:<30} {:>5} {:>6} {:>10}  PANIC", sc.name, "-", "-", "-"),
                failures,
            );
        }
        Ok(pair) => pair,
    };

    let races: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.kind == "data-race")
        .collect();
    if races.len() != sc.races {
        failures.push(format!(
            "{}: expected {} data-race diagnostic(s), got {}: {:?}",
            sc.name,
            sc.races,
            races.len(),
            races.iter().map(|d| d.detail.as_str()).collect::<Vec<_>>()
        ));
    }
    if sc.races == 1 {
        if let Some(d) = races.first() {
            if !(d.detail.contains("racy-writer") && d.detail.contains("racy-spinner")) {
                failures.push(format!(
                    "{}: race must name both access sites: {}",
                    sc.name, d.detail
                ));
            }
        }
    }

    if sc.robust && !cert.certified() {
        failures.push(format!(
            "{}: must be schedule-robust but {} of {} schedules diverged; first: {}",
            sc.name,
            cert.divergences.len(),
            schedules,
            cert.divergences[0].detail
        ));
    }
    for d in &cert.divergences {
        let explained = d.kind == "schedule-divergence"
            && d.detail.contains("tie-break salt")
            && d.detail.contains("near field");
        if !explained {
            failures.push(format!(
                "{}: unexplained divergence (missing salt/field provenance): {} {}",
                sc.name, d.kind, d.detail
            ));
        }
    }

    let verdict = if !failures.is_empty() {
        "FAIL"
    } else if cert.certified() {
        "certified"
    } else {
        "explained"
    };
    let row = format!(
        "{:<30} {:>5} {:>6} {:>10}  {verdict}",
        sc.name,
        races.len(),
        format!(
            "{}/{}",
            schedules - cert.divergences.len().min(schedules),
            schedules
        ),
        report.diagnostics.len(),
    );
    (row, failures)
}

fn parse_schedules() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--schedules" {
            let v = args.next().unwrap_or_default();
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--schedules needs a positive integer, got {v:?}"));
        }
    }
    8
}

fn main() {
    let t0 = Instant::now();
    let schedules = parse_schedules().max(1);
    println!(
        "{{\"bench\":\"race_smoke\",\"detlint_ruleset\":\"{}\",\"schedules\":{},\"pool_jobs\":{}}}",
        analysis::RULESET_VERSION,
        schedules,
        sweep::jobs(),
    );
    println!(
        "{:<30} {:>5} {:>6} {:>10}  outcome",
        "workload", "races", "sched", "diags"
    );

    let scenarios = scenarios();
    let cells: Vec<Job<'_, (String, Vec<String>)>> = scenarios
        .iter()
        .map(|sc| Box::new(move || run_cell(sc, schedules)) as Job<'_, _>)
        .collect();

    let total = cells.len();
    let mut failures = Vec::new();
    for (row, cell_failures) in sweep::run_batch(cells) {
        println!("{row}");
        failures.extend(cell_failures);
    }

    println!(
        "\nrace smoke finished in {:.1}s ({schedules} schedules per workload)",
        t0.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        println!("all {total} cells passed");
    } else {
        eprintln!("\nrace smoke FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
