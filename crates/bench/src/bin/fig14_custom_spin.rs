//! Figure 14: user-customized spinning (lu, volrend)
use oversub_bench::{emit, parse_args};

fn main() {
    let a = parse_args();
    let t = oversub::experiments::fig14_custom_spin(a.opts);
    emit(
        "Figure 14: user-customized spinning (lu, volrend)",
        "Figure 14",
        &t,
        a.csv,
    );
}
