//! CI overload smoke: the overload control plane as a pass/fail gate.
//!
//! Runs the memcached family at three offered-load points (0.8×, 1.2×,
//! 2.0× of nominal capacity) with the 3 ms deadline and the deterministic
//! retry client, once with shedding off and once with the CoDel-style
//! shedder, under vanilla and optimized (VB+BWD) mechanisms. Checks:
//!
//! - no cell panics, errors, or exhausts its event budget (hang guard),
//! - goodput accounting balances: `completed + deadline_exceeded + shed +
//!   abandoned == offered` in every cell,
//! - the goodput digest holds exactly `completed` samples and its max
//!   latency is within the deadline (it only admits in-deadline
//!   completions),
//! - at 2.0× load the shedder must not lose to no-shedding:
//!   `goodput(codel) >= goodput(off)` for each mechanism — the graceful
//!   degradation the control plane exists to provide.
//!
//! The cells are independent simulations and run on the sweep worker pool
//! (`OVERSUB_JOBS`); rows print in submission order.
//!
//! Usage: `cargo run --release -p oversub-bench --bin overload_smoke`

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use oversub::simcore::pool::Job;
use oversub::simcore::{SimTime, MICROS, MILLIS};
use oversub::workloads::admission::{AdmissionPolicy, OverloadParams, RetryPolicy};
use oversub::workloads::memcached::Memcached;
use oversub::{sweep, try_run, Mechanisms, RunConfig};

/// Nominal capacity of the 2-core memcached server (mean ~9.5 us/op).
const CAPACITY_OPS: f64 = 200_000.0;
const DEADLINE_NS: u64 = 3 * MILLIS;

fn overload(admission: AdmissionPolicy) -> OverloadParams {
    OverloadParams::disabled()
        .with_deadline_ns(DEADLINE_NS)
        .with_admission(admission)
        .with_retry(RetryPolicy::default())
}

/// One cell: its printable row, its goodput ops/s, and failure records.
fn run_cell(label: &str, cfg: &RunConfig, rate: f64) -> (String, f64, Vec<String>) {
    let mut failures = Vec::new();
    let mut wl = Memcached::paper(8, 2, rate);
    let outcome = catch_unwind(AssertUnwindSafe(|| try_run(&mut wl, cfg)));
    let (row, good) = match outcome {
        Err(_) => {
            failures.push(format!("{label}: engine panicked"));
            (
                format!(
                    "{:<30} {:>9} {:>9} {:>9} {:>6} {:>7} {:>7}  PANIC",
                    label, "-", "-", "-", "-", "-", "-"
                ),
                0.0,
            )
        }
        Ok(Err(e)) => {
            failures.push(format!("{label}: engine error: {e}"));
            (
                format!(
                    "{:<30} {:>9} {:>9} {:>9} {:>6} {:>7} {:>7}  ERROR",
                    label, "-", "-", "-", "-", "-", "-"
                ),
                0.0,
            )
        }
        Ok(Ok(report)) => {
            let gp = &report.goodput;
            if gp.is_empty() {
                failures.push(format!(
                    "{label}: goodput section is empty — the overload plane never engaged"
                ));
            }
            if !gp.balanced() {
                failures.push(format!(
                    "{label}: accounting violation: {} completed + {} exceeded + {} shed + \
                     {} abandoned != {} offered",
                    gp.completed, gp.deadline_exceeded, gp.shed, gp.abandoned, gp.offered
                ));
            }
            if gp.latency.count() != gp.completed {
                failures.push(format!(
                    "{label}: goodput digest holds {} samples but {} requests completed \
                     in deadline",
                    gp.latency.count(),
                    gp.completed
                ));
            }
            if !gp.latency.is_empty() && gp.latency.max() > DEADLINE_NS {
                failures.push(format!(
                    "{label}: goodput digest contains a {} ns latency beyond the {} ns \
                     deadline",
                    gp.latency.max(),
                    DEADLINE_NS
                ));
            }
            if report.diagnostics.iter().any(|d| d.kind == "no_progress") {
                failures.push(format!("{label}: run stalled (no-progress diagnostic)"));
            }
            let verdict = if failures.is_empty() { "ok" } else { "BAD" };
            (
                format!(
                    "{:<30} {:>9} {:>9} {:>9} {:>6} {:>7} {:>7}  {verdict}",
                    label,
                    gp.offered,
                    gp.completed,
                    gp.deadline_exceeded,
                    gp.shed,
                    gp.abandoned,
                    gp.retries,
                ),
                report.goodput_ops(),
            )
        }
    };
    (row, good, failures)
}

fn main() {
    let t0 = Instant::now();
    println!(
        "{{\"bench\":\"overload_smoke\",\"detlint_ruleset\":\"{}\",\"pool_jobs\":{}}}",
        analysis::RULESET_VERSION,
        sweep::jobs(),
    );
    println!(
        "{:<30} {:>9} {:>9} {:>9} {:>6} {:>7} {:>7}  outcome",
        "cell", "offered", "good", "late", "shed", "aband", "retries"
    );

    let mechs = [
        ("vanilla", Mechanisms::vanilla()),
        ("optimized", Mechanisms::optimized()),
    ];
    let loads = [0.8, 1.2, 2.0];
    let modes = [
        ("off", AdmissionPolicy::None),
        (
            "codel",
            AdmissionPolicy::CoDel {
                target_ns: 300 * MICROS,
                interval_ns: 500 * MICROS,
            },
        ),
    ];

    // (label, load, mode) per cell, in submission order.
    let mut meta: Vec<(String, f64, &'static str, &'static str)> = Vec::new();
    let mut cells: Vec<Job<'_, (String, f64, Vec<String>)>> = Vec::new();
    for &(mech_label, mech) in &mechs {
        for &load in &loads {
            for &(mode_label, admission) in &modes {
                let rate = CAPACITY_OPS * load;
                let label = format!("memcached/{mech_label}/{load}x/{mode_label}");
                let cfg = RunConfig::vanilla(Memcached::paper(8, 2, rate).total_cpus())
                    .with_mech(mech)
                    .with_seed(2026)
                    .with_max_time(SimTime::from_millis(150))
                    .with_max_events(50_000_000)
                    .with_overload(overload(admission));
                meta.push((label.clone(), load, mech_label, mode_label));
                cells.push(Box::new(move || run_cell(&label, &cfg, rate)));
            }
        }
    }

    let mut failures = Vec::new();
    let mut goodputs: Vec<f64> = Vec::new();
    for (row, good, cell_failures) in sweep::run_batch(cells) {
        println!("{row}");
        goodputs.push(good);
        failures.extend(cell_failures);
    }

    // The degradation gate: at 2.0x load, the shedder must hold goodput at
    // or above the no-shedding collapse, per mechanism.
    for &(mech_label, _) in &mechs {
        let find = |mode: &str| {
            meta.iter()
                .zip(&goodputs)
                .find(|((_, load, m, md), _)| *load == 2.0 && *m == mech_label && *md == mode)
                .map(|(_, &g)| g)
        };
        if let (Some(off), Some(codel)) = (find("off"), find("codel")) {
            if codel < off {
                failures.push(format!(
                    "{mech_label}: at 2.0x load the CoDel shedder yields {codel:.0} good \
                     op/s, below the no-shedding {off:.0} — shedding made overload worse"
                ));
            }
        }
    }

    println!(
        "\noverload smoke finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        println!("all {} cells pass the overload gates", meta.len());
    } else {
        eprintln!("\noverload smoke FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
