//! Plain-text table and CSV rendering for the figure/table harness.

use std::fmt::Write as _;

/// A simple column-aligned text table with an optional CSV dump.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", c, width = widths[i]);
            }
            // Trim trailing spaces for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render as CSV (no quoting; the harness only emits plain cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Format nanoseconds as engineering-friendly seconds/ms/µs.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Format a ratio with two decimals ("1.43x").
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer-name"));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
        assert_eq!(fmt_ratio(1.434), "1.43x");
    }
}
