//! Exact, mergeable latency digest: the full sorted sample set.
//!
//! The log-bucketed [`crate::hist::LatencyHist`] answers percentile
//! queries with ~4.6% relative error, which is fine for plotting Figure 12
//! but not for gating on p999 — at the tail, a bucket's lower bound can
//! sit an entire bucket width below the true order statistic. The digest
//! keeps every recorded value instead, so:
//!
//! - **Exactness**: `percentile(p)` is the nearest-rank order statistic of
//!   the recorded multiset — no interpolation, no bucket rounding.
//! - **Mergeability**: merging digests concatenates multisets, so merge is
//!   associative and commutative, and a digest accumulated by any
//!   partition of the samples across pool workers equals the
//!   single-threaded accumulation.
//! - **Byte stability**: serialization is a run-length encoding of the
//!   *sorted* multiset (all integers, no floats), so equal multisets
//!   produce byte-identical JSON regardless of insertion or merge order.
//!   This is what lets `oversub::sweep`'s content-addressed cache replay a
//!   report at any `--jobs` count without byte churn.
//!
//! Simulated request counts are small (thousands per run), so the O(n)
//! memory and O(n log n) canonicalization are noise next to the engine
//! run that produced the samples.

use crate::json::{field, field_u64, obj, JsonValue};

/// An exact digest of nanosecond latency samples.
///
/// Samples are held in insertion order until a read forces the canonical
/// (sorted) form; [`LatencyDigest::canonicalize`] sorts in place so
/// subsequent reads are allocation-free. Equality and serialization are
/// defined on the canonical form: two digests holding the same multiset
/// compare equal and serialize identically however they were built.
#[derive(Clone, Debug, Default)]
pub struct LatencyDigest {
    samples: Vec<u64>,
    sum: u128,
    sorted: bool,
}

impl PartialEq for LatencyDigest {
    fn eq(&self, other: &Self) -> bool {
        if self.samples.len() != other.samples.len() || self.sum != other.sum {
            return false;
        }
        self.canonical() == other.canonical()
    }
}

impl Eq for LatencyDigest {}

impl LatencyDigest {
    /// Empty digest.
    pub fn new() -> Self {
        LatencyDigest {
            samples: Vec::new(),
            sum: 0,
            sorted: true,
        }
    }

    /// Record one value (nanoseconds).
    pub fn record(&mut self, v: u64) {
        if self.sorted && self.samples.last().is_some_and(|&last| last > v) {
            self.sorted = false;
        }
        self.samples.push(v);
        self.sum += v as u128;
    }

    /// Merge another digest into this one (multiset union). Associative
    /// and commutative: any merge tree over the same sample partition
    /// yields an equal digest.
    pub fn merge(&mut self, other: &LatencyDigest) {
        if other.samples.is_empty() {
            return;
        }
        if self.samples.is_empty() {
            self.samples = other.samples.clone();
            self.sum = other.sum;
            self.sorted = other.sorted;
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = false;
    }

    /// Sort the samples in place so later reads are allocation-free.
    pub fn canonicalize(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The sorted sample vector (borrows when already canonical).
    fn canonical(&self) -> std::borrow::Cow<'_, [u64]> {
        if self.sorted {
            std::borrow::Cow::Borrowed(&self.samples)
        } else {
            let mut v = self.samples.clone();
            v.sort_unstable();
            std::borrow::Cow::Owned(v)
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// True when no value has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of recorded values, 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.samples.len() as f64
        }
    }

    /// Smallest recorded value, 0 if empty.
    pub fn min(&self) -> u64 {
        self.canonical().first().copied().unwrap_or(0)
    }

    /// Largest recorded value, 0 if empty.
    pub fn max(&self) -> u64 {
        self.canonical().last().copied().unwrap_or(0)
    }

    /// Exact nearest-rank percentile: the smallest recorded value `v` such
    /// that at least `ceil(p/100 * count)` samples are `<= v`. `p` is
    /// clamped to [0, 100] (p <= 0 returns the minimum, p >= 100 the
    /// maximum); an empty digest returns 0.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.samples.len();
        if n == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest rank = ceil(p/100 * n), with a relative epsilon so that
        // float noise in p/100 (e.g. 99.9/100 * 1000 = 999.0000000000001)
        // cannot bump the rank past the intended order statistic.
        let x = (p / 100.0) * n as f64;
        let rank = (x - x * 1e-12).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        self.canonical().get(idx).copied().unwrap_or(0)
    }

    /// Exact median (nearest-rank p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Exact p99.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Exact p999 (the 99.9th percentile).
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Serialize to a JSON tree: a run-length encoding of the sorted
    /// multiset (`values[i]` occurs `counts[i]` times, values strictly
    /// increasing) plus the exact count and sum. All fields are integers
    /// and the encoding is canonical, so equal multisets serialize
    /// byte-identically. An empty digest serializes as an empty-but-present
    /// block (`count: 0`, empty arrays).
    pub fn to_json_value(&self) -> JsonValue {
        let sorted = self.canonical();
        let mut values = Vec::new();
        let mut counts = Vec::new();
        for &v in sorted.iter() {
            if values.last() == Some(&JsonValue::UInt(v as u128)) {
                if let Some(JsonValue::UInt(c)) = counts.last_mut() {
                    *c += 1;
                    continue;
                }
            }
            values.push(JsonValue::UInt(v as u128));
            counts.push(JsonValue::UInt(1));
        }
        obj(vec![
            ("count", JsonValue::UInt(self.samples.len() as u128)),
            ("sum", JsonValue::UInt(self.sum)),
            ("values", JsonValue::Array(values)),
            ("counts", JsonValue::Array(counts)),
        ])
    }

    /// Rebuild from [`LatencyDigest::to_json_value`] output. The result is
    /// already canonical (sorted).
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let count = field_u64(v, "count")? as usize;
        let sum = field(v, "sum")?
            .as_u128()
            .ok_or("'sum' is not an integer")?;
        let values = field(v, "values")?
            .as_array()
            .ok_or("'values' is not an array")?;
        let counts = field(v, "counts")?
            .as_array()
            .ok_or("'counts' is not an array")?;
        if values.len() != counts.len() {
            return Err(format!(
                "values/counts length mismatch: {} vs {}",
                values.len(),
                counts.len()
            ));
        }
        let mut samples = Vec::with_capacity(count);
        for (val, cnt) in values.iter().zip(counts.iter()) {
            let val = val.as_u64().ok_or("bad digest value")?;
            let cnt = cnt.as_u64().ok_or("bad digest count")?;
            for _ in 0..cnt {
                samples.push(val);
            }
        }
        if samples.len() != count {
            return Err(format!(
                "digest count {} disagrees with encoded samples {}",
                count,
                samples.len()
            ));
        }
        if samples.windows(2).any(|w| w[0] > w[1]) {
            return Err("digest values are not sorted".to_string());
        }
        Ok(LatencyDigest {
            samples,
            sum,
            sorted: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_zeroes() {
        let d = LatencyDigest::new();
        assert_eq!(d.count(), 0);
        assert!(d.is_empty());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.percentile(99.9), 0);
        assert_eq!(d.min(), 0);
        assert_eq!(d.max(), 0);
        assert_eq!(
            d.to_json_value().to_string_compact(),
            r#"{"count":0,"sum":0,"values":[],"counts":[]}"#
        );
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let mut d = LatencyDigest::new();
        // Insert in reverse to exercise canonicalization.
        for i in (1..=1000u64).rev() {
            d.record(i * 10);
        }
        assert_eq!(d.p50(), 5_000); // exactly the 500th of 1000
        assert_eq!(d.p99(), 9_900);
        assert_eq!(d.p999(), 9_990);
        assert_eq!(d.percentile(100.0), 10_000);
        assert_eq!(d.percentile(0.0), 10);
        // Out-of-range p clamps instead of under/overflowing the rank.
        assert_eq!(d.percentile(-5.0), 10);
        assert_eq!(d.percentile(250.0), 10_000);
        assert_eq!(d.min(), 10);
        assert_eq!(d.max(), 10_000);
        assert_eq!(d.mean(), 5_005.0);
    }

    #[test]
    fn single_sample() {
        let mut d = LatencyDigest::new();
        d.record(777);
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(d.percentile(p), 777);
        }
    }

    #[test]
    fn merge_is_multiset_union() {
        let mut a = LatencyDigest::new();
        let mut b = LatencyDigest::new();
        for v in [5u64, 1, 9] {
            a.record(v);
        }
        for v in [3u64, 9] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 9);
        assert_eq!(a.percentile(50.0), 5);

        // Order independence: b ∪ a equals a ∪ b.
        let mut a2 = LatencyDigest::new();
        let mut b2 = LatencyDigest::new();
        for v in [3u64, 9] {
            a2.record(v);
        }
        for v in [5u64, 1, 9] {
            b2.record(v);
        }
        a2.merge(&b2);
        assert_eq!(a, a2);
        assert_eq!(
            a.to_json_value().to_string_compact(),
            a2.to_json_value().to_string_compact()
        );
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let mut a = LatencyDigest::new();
        let mut b = LatencyDigest::new();
        b.record(42);
        a.merge(&b);
        assert_eq!(a, b);
        let before = a.clone();
        a.merge(&LatencyDigest::new());
        assert_eq!(a, before);
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let mut d = LatencyDigest::new();
        for v in [100u64, 50, 100, 2_000_000_000, 50, 100] {
            d.record(v);
        }
        let json = d.to_json_value().to_string_compact();
        assert_eq!(
            json,
            r#"{"count":6,"sum":2000000400,"values":[50,100,2000000000],"counts":[2,3,1]}"#
        );
        let back = LatencyDigest::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.to_json_value().to_string_compact(), json);
    }

    #[test]
    fn from_json_rejects_malformed_encodings() {
        let bad = [
            // values/counts length mismatch
            r#"{"count":1,"sum":5,"values":[5],"counts":[]}"#,
            // count disagrees with expansion
            r#"{"count":3,"sum":10,"values":[5],"counts":[1]}"#,
            // unsorted values
            r#"{"count":2,"sum":15,"values":[10,5],"counts":[1,1]}"#,
        ];
        for text in bad {
            let v = JsonValue::parse(text).unwrap();
            assert!(LatencyDigest::from_json_value(&v).is_err(), "{text}");
        }
    }

    #[test]
    fn canonicalize_is_idempotent_and_order_blind() {
        let mut fwd = LatencyDigest::new();
        let mut rev = LatencyDigest::new();
        for v in 0..100u64 {
            fwd.record(v * 3 % 71);
        }
        for v in (0..100u64).rev() {
            rev.record(v * 3 % 71);
        }
        fwd.canonicalize();
        fwd.canonicalize();
        assert_eq!(fwd, rev);
        assert_eq!(
            fwd.to_json_value().to_string_compact(),
            rev.to_json_value().to_string_compact()
        );
    }
}
