//! Minimal JSON tree, emitter, and parser.
//!
//! The metrics this repo serializes are integers, strings, arrays, and
//! objects — no floats are stored in a [`crate::RunReport`] — so a small
//! hand-rolled JSON module keeps serialization dependency-free (hermetic
//! builds) while staying bit-exact: integer round-trips are lossless,
//! which the golden determinism test relies on.

use std::fmt::Write as _;

/// A JSON value. Numbers are unsigned integers (up to `u128`), which is
/// every numeric field the metrics layer produces.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    UInt(u128),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a small enough integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `u128`, if it is an integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a small enough integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::UInt(v) => usize::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented multi-line rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            JsonValue::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'0'..=b'9') => {
            let start = *pos;
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            let digits = std::str::from_utf8(&bytes[start..*pos]).unwrap();
            digits
                .parse::<u128>()
                .map(JsonValue::UInt)
                .map_err(|e| format!("bad integer '{digits}': {e}"))
        }
        Some(&b) => Err(format!("unexpected byte '{}' at {}", b as char, pos)),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

/// Build an object from `(key, value)` pairs.
pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Fetch `key` from `v` or produce a descriptive error.
pub fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

/// Fetch an integer field as `u64`.
pub fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not a u64"))
}

/// Fetch an integer field as `usize`.
pub fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| format!("field '{key}' is not a usize"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = obj(vec![
            ("a", JsonValue::UInt(42)),
            ("b", JsonValue::Str("x \"y\"\n".into())),
            (
                "c",
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
            ("d", JsonValue::Object(Vec::new())),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn big_integers_are_lossless() {
        let v = JsonValue::UInt(u128::MAX);
        let text = v.to_string_compact();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"abc").is_err());
    }

    #[test]
    fn object_lookup() {
        let v = obj(vec![("k", JsonValue::UInt(7))]);
        assert_eq!(field_u64(&v, "k").unwrap(), 7);
        assert!(field_u64(&v, "missing").is_err());
    }
}
