//! Log-bucketed latency histogram (HDR-style) for request latencies.
//!
//! Buckets have ~4.6% relative width (32 sub-buckets per power of two),
//! which is plenty for reporting means and the p95/p99 tails of Figure 12.

use crate::json::{field, field_u64, obj, JsonValue};

const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = 5;

/// A histogram of nanosecond values.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB_BUCKETS;
    ((shift + 1) as u64 * SUB_BUCKETS + sub) as usize
}

#[inline]
fn bucket_lower_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let shift = idx / SUB_BUCKETS - 1;
    let sub = idx % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << shift
}

impl LatencyHist {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value (nanoseconds).
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values, 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value, 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at percentile `p`, clamped to [0, 100]: `p <= 0` reports the
    /// minimum, `p >= 100` the maximum, and an empty histogram reports 0.
    ///
    /// The returned value is the **lower bound** of the bucket containing
    /// the nearest-rank order statistic, clamped up to the recorded
    /// minimum — a systematic *underestimate* of the true order statistic
    /// by up to one bucket width (~4.6% relative). That bias is harmless
    /// for plotting p95/p99 curves, but tail gates (p999) should use the
    /// exact [`crate::digest::LatencyDigest`] instead.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i).max(self.min);
            }
        }
        self.max
    }

    /// Serialize to a JSON tree (exact: all fields are integers).
    pub fn to_json_value(&self) -> JsonValue {
        obj(vec![
            (
                "counts",
                JsonValue::Array(
                    self.counts
                        .iter()
                        .map(|&c| JsonValue::UInt(c as u128))
                        .collect(),
                ),
            ),
            ("total", JsonValue::UInt(self.total as u128)),
            ("sum", JsonValue::UInt(self.sum)),
            ("min", JsonValue::UInt(self.min as u128)),
            ("max", JsonValue::UInt(self.max as u128)),
        ])
    }

    /// Rebuild from [`LatencyHist::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let counts = field(v, "counts")?
            .as_array()
            .ok_or("'counts' is not an array")?
            .iter()
            .map(|c| c.as_u64().ok_or_else(|| "bad count".to_string()))
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(LatencyHist {
            counts,
            total: field_u64(v, "total")?,
            sum: field(v, "sum")?
                .as_u128()
                .ok_or("'sum' is not an integer")?,
            min: field_u64(v, "min")?,
            max: field_u64(v, "max")?,
        })
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hist_is_zeroes() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHist::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 1000.0);
        let p = h.percentile(50.0);
        assert!((968..=1032).contains(&p), "p50={p}");
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = LatencyHist::new();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99);
        // Within bucket resolution of the true values.
        assert!(
            (p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.05,
            "p50={p50}"
        );
        assert!(
            (p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.05,
            "p99={p99}"
        );
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let mut h = LatencyHist::new();
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        // p below 0 clamps to the minimum, p above 100 to the p100 bucket
        // (the same value an in-range p = 100 reports), never to a rank
        // outside [1, total].
        assert_eq!(h.percentile(-10.0), h.percentile(0.0));
        assert_eq!(h.percentile(0.0), 100);
        assert_eq!(h.percentile(1000.0), h.percentile(100.0));
        assert!(h.percentile(100.0) <= h.max());
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHist::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn buckets_are_monotone() {
        let mut last = 0;
        for v in (0..24).map(|s| 1u64 << s) {
            let b = bucket_of(v);
            assert!(b >= last);
            last = b;
            assert!(bucket_lower_bound(b) <= v);
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }
}
