//! Small-sample summary statistics for multi-seed experiment runs.

/// Mean / spread summary of a set of measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice of samples.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of the ~95% confidence interval for the mean, using the
    /// normal approximation (1.96 σ/√n; adequate for reporting spreads of
    /// deterministic simulations across seeds).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev / (self.n as f64).sqrt()
    }

    /// Relative spread (stddev / mean), 0 if the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// Render as "mean ± ci" with the given precision.
    pub fn display(&self, decimals: usize) -> String {
        if self.n < 2 {
            format!("{:.*}", decimals, self.mean)
        } else {
            format!(
                "{:.*} ±{:.*}",
                decimals,
                self.mean,
                decimals,
                self.ci95_half_width()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.display(2), "4.00");
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev - 2.13809).abs() < 1e-4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.ci95_half_width() > 0.0);
        assert!(s.cv() > 0.0);
        assert!(s.display(1).contains('±'));
    }
}
