//! Run reports: everything a simulation run produces, in plain data form
//! suitable for serialization and for regenerating the paper's tables.

use crate::digest::LatencyDigest;
use crate::hist::LatencyHist;
use crate::json::{field, field_u64, field_usize, obj, JsonValue};

/// Aggregated task-side statistics for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskAggregate {
    /// Number of tasks.
    pub tasks: usize,
    /// Total useful execution time across tasks.
    pub exec_ns: u64,
    /// Total busy-wait time.
    pub spin_ns: u64,
    /// Total sleep time.
    pub sleep_ns: u64,
    /// Total runnable-but-waiting time.
    pub wait_ns: u64,
    /// Voluntary context switches.
    pub nvcsw: u64,
    /// Involuntary context switches.
    pub nivcsw: u64,
    /// In-node migrations (Table 1's "#In-node Migr").
    pub migrations_local: u64,
    /// Cross-node migrations (Table 1's "#Cross-nodes Migr").
    pub migrations_remote: u64,
    /// Kernel wakeups.
    pub wakeups: u64,
    /// Total wake-request-to-run latency.
    pub wakeup_latency_ns: u64,
    /// BWD deschedules.
    pub bwd_deschedules: u64,
}

impl TaskAggregate {
    /// Total migrations.
    pub fn migrations(&self) -> u64 {
        self.migrations_local + self.migrations_remote
    }

    /// Mean wakeup latency in nanoseconds.
    pub fn mean_wakeup_latency_ns(&self) -> f64 {
        if self.wakeups == 0 {
            0.0
        } else {
            self.wakeup_latency_ns as f64 / self.wakeups as f64
        }
    }
}

/// Per-CPU time breakdown for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuAggregate {
    /// Number of CPUs.
    pub cpus: usize,
    /// Useful work time summed over CPUs.
    pub useful_ns: u64,
    /// Spin time summed over CPUs.
    pub spin_ns: u64,
    /// Kernel overhead summed over CPUs.
    pub kernel_ns: u64,
    /// Idle time summed over CPUs.
    pub idle_ns: u64,
    /// Context switches summed over CPUs.
    pub context_switches: u64,
}

/// Kernel blocking-layer statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockingAggregate {
    /// futex/epoll waits that slept.
    pub sleep_waits: u64,
    /// Waits that used virtual blocking.
    pub virtual_waits: u64,
    /// Wakeups issued.
    pub wakes: u64,
}

/// BWD statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BwdAggregate {
    /// Timer windows examined.
    pub checks: u64,
    /// Spin detections.
    pub detections: u64,
    /// Detections on genuine busy-waiting.
    pub true_positives: u64,
    /// Detections on innocent tight loops.
    pub false_positives: u64,
    /// PLE VM exits (when the PLE arm is on).
    pub ple_exits: u64,
    /// Ground-truth busy-wait episodes the workload entered (denominator
    /// of the sensitivity metric in Table 2).
    pub spin_episodes: u64,
}

/// Structured decision counters for one mechanism in the engine's
/// mechanism pipeline (VB, BWD, PLE, or a user-registered mechanism).
/// Every field is an exact integer, so serialization is byte-stable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MechCounters {
    /// Mechanism name ("vb", "bwd", "ple", ...).
    pub name: String,
    /// Total decisions the mechanism took (mechanism-defined: VB counts
    /// parks + unparks, BWD counts deschedules, PLE counts exits).
    pub decisions: u64,
    /// Blocking calls diverted to an in-place park (VB).
    pub parks: u64,
    /// Parked tasks woken by a flag clear + vruntime restore (VB).
    pub unparks: u64,
    /// Skip flags set on descheduled spinners (BWD).
    pub skips_set: u64,
    /// Skip flags released after every other task ran (BWD).
    pub skips_cleared: u64,
    /// Spin-window exits taken (PLE VM exits, or a custom mechanism's
    /// spin-throttle trips).
    pub spin_exits: u64,
    /// Monitoring windows examined by the mechanism's periodic timer.
    pub timer_checks: u64,
    /// Graceful-degradation actions: watchdog rescues of lost VB parks,
    /// BWD window widenings / per-core disables under sensor noise.
    pub recoveries: u64,
}

impl MechCounters {
    /// A zeroed counter block for mechanism `name`.
    pub fn named(name: &str) -> Self {
        MechCounters {
            name: name.to_string(),
            ..MechCounters::default()
        }
    }

    /// Serialize to a JSON tree.
    pub fn to_json_value(&self) -> JsonValue {
        obj(vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("decisions", JsonValue::UInt(self.decisions as u128)),
            ("parks", JsonValue::UInt(self.parks as u128)),
            ("unparks", JsonValue::UInt(self.unparks as u128)),
            ("skips_set", JsonValue::UInt(self.skips_set as u128)),
            ("skips_cleared", JsonValue::UInt(self.skips_cleared as u128)),
            ("spin_exits", JsonValue::UInt(self.spin_exits as u128)),
            ("timer_checks", JsonValue::UInt(self.timer_checks as u128)),
            ("recoveries", JsonValue::UInt(self.recoveries as u128)),
        ])
    }

    /// Rebuild from [`Self::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        Ok(MechCounters {
            name: field(v, "name")?
                .as_str()
                .ok_or("'name' is not a string")?
                .to_string(),
            decisions: field_u64(v, "decisions")?,
            parks: field_u64(v, "parks")?,
            unparks: field_u64(v, "unparks")?,
            skips_set: field_u64(v, "skips_set")?,
            skips_cleared: field_u64(v, "skips_cleared")?,
            spin_exits: field_u64(v, "spin_exits")?,
            timer_checks: field_u64(v, "timer_checks")?,
            // Absent in reports serialized before the fault layer.
            recoveries: match v.get("recoveries") {
                Some(r) => r.as_u64().ok_or("'recoveries' is not a u64")?,
                None => 0,
            },
        })
    }
}

/// One structured engine diagnostic: an invariant violation or a liveness
/// watchdog finding. Diagnostics are facts about the run ("task 3 was
/// parked with no waker for 12 ms"), not errors — a run that degrades
/// gracefully completes with a non-empty diagnostics list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable kind tag ("lost_wakeup_rescue", "starvation",
    /// "rq_inconsistency", "time_regression", "no_progress", ...).
    pub kind: String,
    /// Virtual time the condition was observed (ns).
    pub at_ns: u64,
    /// The task involved, if the condition is task-scoped.
    pub task: Option<usize>,
    /// The CPU involved, if the condition is CPU-scoped.
    pub cpu: Option<usize>,
    /// Human-readable detail.
    pub detail: String,
}

impl Diagnostic {
    /// Serialize to a JSON tree.
    pub fn to_json_value(&self) -> JsonValue {
        let opt = |v: Option<usize>| match v {
            Some(n) => JsonValue::UInt(n as u128),
            None => JsonValue::Null,
        };
        obj(vec![
            ("kind", JsonValue::Str(self.kind.clone())),
            ("at_ns", JsonValue::UInt(self.at_ns as u128)),
            ("task", opt(self.task)),
            ("cpu", opt(self.cpu)),
            ("detail", JsonValue::Str(self.detail.clone())),
        ])
    }

    /// Rebuild from [`Self::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let opt = |key: &str| -> Result<Option<usize>, String> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(n) => n
                    .as_usize()
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' is not a usize")),
            }
        };
        Ok(Diagnostic {
            kind: field(v, "kind")?
                .as_str()
                .ok_or("'kind' is not a string")?
                .to_string(),
            at_ns: field_u64(v, "at_ns")?,
            task: opt("task")?,
            cpu: opt("cpu")?,
            detail: field(v, "detail")?
                .as_str()
                .ok_or("'detail' is not a string")?
                .to_string(),
        })
    }
}

/// Outcome-partitioned request accounting for runs with the overload
/// control plane on (deadlines / shedding / retries). Every offered
/// attempt lands in exactly one bucket:
/// `offered == completed + deadline_exceeded + shed + abandoned`.
/// Default (all-zero, empty digest) when the control plane is off, so
/// reports from pre-overload configs keep their byte-stable JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GoodputStats {
    /// Request attempts offered to admission (fresh sends and retries).
    pub offered: u64,
    /// Completed within deadline — the goodput numerator.
    pub completed: u64,
    /// Completed, but past the deadline (wasted work).
    pub deadline_exceeded: u64,
    /// Rejected by the admission policy.
    pub shed: u64,
    /// Admitted but still in flight when the run ended.
    pub abandoned: u64,
    /// Client retry re-injections (a subset of `offered`).
    pub retries: u64,
    /// Exact latency digest restricted to within-deadline completions.
    pub latency: LatencyDigest,
}

impl GoodputStats {
    /// True when no overload accounting happened (control plane off).
    pub fn is_empty(&self) -> bool {
        self.offered == 0 && self.completed == 0 && self.latency.is_empty()
    }

    /// The conservation invariant: every offered attempt has one outcome.
    pub fn balanced(&self) -> bool {
        self.offered == self.completed + self.deadline_exceeded + self.shed + self.abandoned
    }

    /// Serialize to a JSON tree (canonical field order).
    pub fn to_json_value(&self) -> JsonValue {
        obj(vec![
            ("offered", JsonValue::UInt(self.offered as u128)),
            ("completed", JsonValue::UInt(self.completed as u128)),
            (
                "deadline_exceeded",
                JsonValue::UInt(self.deadline_exceeded as u128),
            ),
            ("shed", JsonValue::UInt(self.shed as u128)),
            ("abandoned", JsonValue::UInt(self.abandoned as u128)),
            ("retries", JsonValue::UInt(self.retries as u128)),
            ("latency", self.latency.to_json_value()),
        ])
    }

    /// Rebuild from [`Self::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        Ok(GoodputStats {
            offered: field_u64(v, "offered")?,
            completed: field_u64(v, "completed")?,
            deadline_exceeded: field_u64(v, "deadline_exceeded")?,
            shed: field_u64(v, "shed")?,
            abandoned: field_u64(v, "abandoned")?,
            retries: field_u64(v, "retries")?,
            latency: LatencyDigest::from_json_value(field(v, "latency")?)?,
        })
    }
}

/// The full result of one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Human-readable label of the configuration ("32T(optimized)").
    pub label: String,
    /// Virtual makespan of the run (ns) — the benchmark's execution time.
    pub makespan_ns: u64,
    /// Task-side aggregates.
    pub tasks: TaskAggregate,
    /// CPU-side aggregates.
    pub cpus: CpuAggregate,
    /// Blocking-layer stats.
    pub blocking: BlockingAggregate,
    /// BWD stats.
    pub bwd: BwdAggregate,
    /// Request latency histogram (server workloads only).
    pub latency: LatencyHist,
    /// Exact per-request latency digest (request-shaped workloads only;
    /// empty-but-present otherwise). Unlike [`RunReport::latency`], its
    /// percentiles are exact order statistics and its serialization is
    /// canonical, so it merges across pool workers and replays from the
    /// sweep run cache byte-identically.
    pub latency_exact: LatencyDigest,
    /// Completed operations (server workloads: requests served).
    pub completed_ops: u64,
    /// Outcome-partitioned goodput accounting (all-zero when the overload
    /// control plane is off).
    pub goodput: GoodputStats,
    /// Per-mechanism decision counters, in pipeline order.
    pub mechanisms: Vec<MechCounters>,
    /// Invariant-checker and liveness-watchdog findings, in detection
    /// order. Empty on a clean run.
    pub diagnostics: Vec<Diagnostic>,
}

/// Emit `to_json_value` / `from_json_value` for a plain aggregate struct
/// whose fields are all unsigned integers.
macro_rules! aggregate_json {
    ($ty:ident { $($f:ident: $kind:ident),+ $(,)? }) => {
        impl $ty {
            /// Serialize to a JSON tree.
            pub fn to_json_value(&self) -> JsonValue {
                obj(vec![$((stringify!($f), JsonValue::UInt(self.$f as u128)),)+])
            }

            /// Rebuild from [`Self::to_json_value`] output.
            pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
                Ok($ty { $($f: aggregate_json!(@get $kind, v, $f)?,)+ })
            }
        }
    };
    (@get u64, $v:ident, $f:ident) => { field_u64($v, stringify!($f)) };
    (@get usize, $v:ident, $f:ident) => { field_usize($v, stringify!($f)) };
}

aggregate_json!(TaskAggregate {
    tasks: usize,
    exec_ns: u64,
    spin_ns: u64,
    sleep_ns: u64,
    wait_ns: u64,
    nvcsw: u64,
    nivcsw: u64,
    migrations_local: u64,
    migrations_remote: u64,
    wakeups: u64,
    wakeup_latency_ns: u64,
    bwd_deschedules: u64,
});

aggregate_json!(CpuAggregate {
    cpus: usize,
    useful_ns: u64,
    spin_ns: u64,
    kernel_ns: u64,
    idle_ns: u64,
    context_switches: u64,
});

aggregate_json!(BlockingAggregate {
    sleep_waits: u64,
    virtual_waits: u64,
    wakes: u64,
});

aggregate_json!(BwdAggregate {
    checks: u64,
    detections: u64,
    true_positives: u64,
    false_positives: u64,
    ple_exits: u64,
    spin_episodes: u64,
});

impl RunReport {
    /// Serialize to a JSON tree. Every stored field is an integer or a
    /// string, so this is exact (no float formatting involved) — equal
    /// reports produce byte-identical JSON.
    pub fn to_json_value(&self) -> JsonValue {
        obj(vec![
            ("label", JsonValue::Str(self.label.clone())),
            ("makespan_ns", JsonValue::UInt(self.makespan_ns as u128)),
            ("tasks", self.tasks.to_json_value()),
            ("cpus", self.cpus.to_json_value()),
            ("blocking", self.blocking.to_json_value()),
            ("bwd", self.bwd.to_json_value()),
            ("latency", self.latency.to_json_value()),
            ("latency_exact", self.latency_exact.to_json_value()),
            ("completed_ops", JsonValue::UInt(self.completed_ops as u128)),
            ("goodput", self.goodput.to_json_value()),
            (
                "mechanisms",
                JsonValue::Array(
                    self.mechanisms
                        .iter()
                        .map(MechCounters::to_json_value)
                        .collect(),
                ),
            ),
            (
                "diagnostics",
                JsonValue::Array(
                    self.diagnostics
                        .iter()
                        .map(Diagnostic::to_json_value)
                        .collect(),
                ),
            ),
        ])
    }

    /// Compact JSON rendering (one line).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_compact()
    }

    /// Indented JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// Parse a report serialized with [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text)?;
        Ok(RunReport {
            label: field(&v, "label")?
                .as_str()
                .ok_or("'label' is not a string")?
                .to_string(),
            makespan_ns: field_u64(&v, "makespan_ns")?,
            tasks: TaskAggregate::from_json_value(field(&v, "tasks")?)?,
            cpus: CpuAggregate::from_json_value(field(&v, "cpus")?)?,
            blocking: BlockingAggregate::from_json_value(field(&v, "blocking")?)?,
            bwd: BwdAggregate::from_json_value(field(&v, "bwd")?)?,
            latency: LatencyHist::from_json_value(field(&v, "latency")?)?,
            // Absent in reports serialized before the request-lifecycle
            // refactor.
            latency_exact: match v.get("latency_exact") {
                Some(d) => LatencyDigest::from_json_value(d)?,
                None => LatencyDigest::new(),
            },
            completed_ops: field_u64(&v, "completed_ops")?,
            // Absent in reports serialized before the overload control
            // plane; defaults to the empty (control-plane-off) section.
            goodput: match v.get("goodput") {
                Some(g) => GoodputStats::from_json_value(g)?,
                None => GoodputStats::default(),
            },
            // Absent in reports serialized before the mechanism layer.
            mechanisms: match v.get("mechanisms") {
                Some(m) => m
                    .as_array()
                    .ok_or("'mechanisms' is not an array")?
                    .iter()
                    .map(MechCounters::from_json_value)
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
            },
            // Absent in reports serialized before the fault layer.
            diagnostics: match v.get("diagnostics") {
                Some(d) => d
                    .as_array()
                    .ok_or("'diagnostics' is not an array")?
                    .iter()
                    .map(Diagnostic::from_json_value)
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
            },
        })
    }

    /// Execution time in (virtual) seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }

    /// CPU utilization in the paper's Table-1 units: percent of one CPU,
    /// summed over CPUs (8 fully busy cores = 800).
    pub fn cpu_utilization_pct(&self) -> f64 {
        let denom = self.makespan_ns as f64 * self.cpus.cpus as f64;
        if denom == 0.0 {
            return 0.0;
        }
        let busy = (self.cpus.useful_ns + self.cpus.spin_ns + self.cpus.kernel_ns) as f64;
        busy / denom * 100.0 * self.cpus.cpus as f64
    }

    /// Fraction of busy time that was useful work (not spin, not kernel).
    pub fn efficiency(&self) -> f64 {
        let busy = self.cpus.useful_ns + self.cpus.spin_ns + self.cpus.kernel_ns;
        if busy == 0 {
            return 1.0;
        }
        self.cpus.useful_ns as f64 / busy as f64
    }

    /// Throughput in operations per (virtual) second.
    pub fn throughput_ops(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed_ops as f64 / self.makespan_secs()
    }

    /// Goodput in within-deadline completions per (virtual) second. Zero
    /// when the overload control plane is off.
    pub fn goodput_ops(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.goodput.completed as f64 / self.makespan_secs()
    }

    /// Look up a mechanism's counters by name ("vb", "bwd", "ple", ...).
    pub fn mech(&self, name: &str) -> Option<&MechCounters> {
        self.mechanisms.iter().find(|m| m.name == name)
    }

    /// Ratio of this run's makespan to a baseline's (>1 = slower).
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        if baseline.makespan_ns == 0 {
            return f64::NAN;
        }
        self.makespan_ns as f64 / baseline.makespan_ns as f64
    }

    /// A multi-line human-readable summary of the run.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "run '{}'", self.label);
        let _ = writeln!(
            out,
            "  makespan        {:.3} s ({} tasks, {} cpus)",
            self.makespan_secs(),
            self.tasks.tasks,
            self.cpus.cpus
        );
        let busy = (self.cpus.useful_ns + self.cpus.spin_ns + self.cpus.kernel_ns).max(1);
        let _ = writeln!(
            out,
            "  cpu time        useful {:.1}%  spin {:.1}%  kernel {:.1}%  (utilization {:.0})",
            100.0 * self.cpus.useful_ns as f64 / busy as f64,
            100.0 * self.cpus.spin_ns as f64 / busy as f64,
            100.0 * self.cpus.kernel_ns as f64 / busy as f64,
            self.cpu_utilization_pct()
        );
        let _ = writeln!(
            out,
            "  switches        {} ({} voluntary, {} preemptions)",
            self.cpus.context_switches, self.tasks.nvcsw, self.tasks.nivcsw
        );
        let _ = writeln!(
            out,
            "  migrations      {} in-node, {} cross-node",
            self.tasks.migrations_local, self.tasks.migrations_remote
        );
        let _ = writeln!(
            out,
            "  blocking        {} sleeps, {} virtual waits, {} wakes (mean wake latency {:.1} us)",
            self.blocking.sleep_waits,
            self.blocking.virtual_waits,
            self.blocking.wakes,
            self.tasks.mean_wakeup_latency_ns() / 1e3
        );
        if self.bwd.checks > 0 {
            let _ = writeln!(
                out,
                "  bwd             {} windows, {} detections ({} TP / {} FP)",
                self.bwd.checks,
                self.bwd.detections,
                self.bwd.true_positives,
                self.bwd.false_positives
            );
        }
        for m in &self.mechanisms {
            let _ = writeln!(
                out,
                "  mech {:<10} {} decisions (parks {} / unparks {} / skips {}+{}- / exits {} / checks {} / recoveries {})",
                m.name,
                m.decisions,
                m.parks,
                m.unparks,
                m.skips_set,
                m.skips_cleared,
                m.spin_exits,
                m.timer_checks,
                m.recoveries
            );
        }
        if !self.diagnostics.is_empty() {
            let _ = writeln!(out, "  diagnostics     {}", self.diagnostics.len());
            for d in &self.diagnostics {
                let _ = writeln!(out, "    [{} @ {} ns] {}", d.kind, d.at_ns, d.detail);
            }
        }
        if self.completed_ops > 0 {
            let _ = writeln!(
                out,
                "  server          {:.0} ops/s, p50 {} us, p95 {} us, p99 {} us",
                self.throughput_ops(),
                self.latency.percentile(50.0) / 1_000,
                self.latency.percentile(95.0) / 1_000,
                self.latency.percentile(99.0) / 1_000
            );
        }
        if !self.latency_exact.is_empty() {
            let _ = writeln!(
                out,
                "  tail (exact)    {} requests, p50 {} us, p99 {} us, p999 {} us",
                self.latency_exact.count(),
                self.latency_exact.p50() / 1_000,
                self.latency_exact.p99() / 1_000,
                self.latency_exact.p999() / 1_000
            );
        }
        if !self.goodput.is_empty() {
            let _ = writeln!(
                out,
                "  goodput         {:.0} ops/s ({} of {} offered; {} late, {} shed, {} abandoned, {} retries)",
                self.goodput_ops(),
                self.goodput.completed,
                self.goodput.offered,
                self.goodput.deadline_exceeded,
                self.goodput.shed,
                self.goodput.abandoned,
                self.goodput.retries
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            label: "test".into(),
            makespan_ns: 1_000_000_000,
            tasks: TaskAggregate {
                tasks: 4,
                wakeups: 10,
                wakeup_latency_ns: 1000,
                migrations_local: 3,
                migrations_remote: 2,
                ..Default::default()
            },
            cpus: CpuAggregate {
                cpus: 8,
                useful_ns: 6_000_000_000,
                spin_ns: 1_000_000_000,
                kernel_ns: 500_000_000,
                idle_ns: 500_000_000,
                context_switches: 100,
            },
            ..Default::default()
        }
    }

    #[test]
    fn utilization_matches_table1_units() {
        let r = sample();
        // busy = 7.5e9 over 8 cpus * 1e9 ns => 93.75% * 8 = 750.
        assert!((r.cpu_utilization_pct() - 750.0).abs() < 0.01);
    }

    #[test]
    fn efficiency_excludes_spin_and_kernel() {
        let r = sample();
        assert!((r.efficiency() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn normalization() {
        let base = sample();
        let mut slow = sample();
        slow.makespan_ns = 2_000_000_000;
        assert!((slow.normalized_to(&base) - 2.0).abs() < 1e-9);
        assert!((base.normalized_to(&base) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aggregates_report_means() {
        let r = sample();
        assert_eq!(r.tasks.migrations(), 5);
        assert!((r.tasks.mean_wakeup_latency_ns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_from_ops() {
        let mut r = sample();
        r.completed_ops = 5_000;
        assert!((r.throughput_ops() - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn summary_renders_key_lines() {
        let mut r = sample();
        r.completed_ops = 100;
        r.bwd.checks = 10;
        r.bwd.detections = 2;
        let s = r.summary();
        assert!(s.contains("makespan"));
        assert!(s.contains("utilization 750"));
        assert!(s.contains("migrations"));
        assert!(s.contains("bwd"));
        assert!(s.contains("server"));
    }

    #[test]
    fn json_round_trip() {
        let mut r = sample();
        r.latency.record(12_345);
        r.latency.record(999);
        r.mechanisms.push(MechCounters {
            decisions: 7,
            parks: 4,
            unparks: 3,
            ..MechCounters::named("vb")
        });
        r.mechanisms.push(MechCounters {
            decisions: 2,
            skips_set: 2,
            skips_cleared: 1,
            timer_checks: 90,
            ..MechCounters::named("bwd")
        });
        let json = r.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.cpus.context_switches, 100);
        // Pretty output parses to the same report.
        assert_eq!(RunReport::from_json(&r.to_json_pretty()).unwrap(), r);
        // Equal reports serialize byte-identically (golden-test invariant).
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn diagnostics_round_trip() {
        let mut r = sample();
        r.diagnostics.push(Diagnostic {
            kind: "lost_wakeup_rescue".into(),
            at_ns: 42_000_000,
            task: Some(3),
            cpu: Some(1),
            detail: "task 3 parked 12 ms with no waker".into(),
        });
        r.diagnostics.push(Diagnostic {
            kind: "no_progress".into(),
            at_ns: 99_000_000,
            task: None,
            cpu: None,
            detail: "no task made progress for 50 ms".into(),
        });
        // The analysis-layer kinds ride the same schema: a report carrying
        // them must survive the round trip so older readers (which treat
        // `kind` as an opaque string) keep parsing new reports.
        r.diagnostics.push(Diagnostic {
            kind: "data-race".into(),
            at_ns: 12_000,
            task: Some(1),
            cpu: Some(0),
            detail: "plain flag 0: write by \"w\" and read by \"r\" are unordered".into(),
        });
        r.diagnostics.push(Diagnostic {
            kind: "schedule-divergence".into(),
            at_ns: 0,
            task: None,
            cpu: None,
            detail: "schedule 1 (tie-break salt 0x1) diverged near field \"makespan_ns\"".into(),
        });
        let json = r.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(json, back.to_json());
        assert!(r.summary().contains("lost_wakeup_rescue"));
    }

    #[test]
    fn from_json_tolerates_missing_fault_layer_fields() {
        // Reports serialized before the fault layer have no "diagnostics"
        // key and no per-mechanism "recoveries"; they must still parse.
        let mut r = sample();
        r.mechanisms.push(MechCounters::named("vb"));
        let json = r.to_json();
        let legacy = json
            .replace(",\"diagnostics\":[]", "")
            .replace(",\"recoveries\":0", "");
        assert_ne!(legacy, json, "replacement must have removed the fields");
        let back = RunReport::from_json(&legacy).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn latency_exact_round_trips_and_tolerates_legacy_json() {
        let mut r = sample();
        r.completed_ops = 3;
        for v in [5_000u64, 1_000, 1_000] {
            r.latency.record(v);
            r.latency_exact.record(v);
        }
        let json = r.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(json, back.to_json());
        assert!(r.summary().contains("tail (exact)"));

        // Reports serialized before the request-lifecycle refactor have no
        // "latency_exact" key; they must parse with an empty digest.
        let mut legacy_r = sample();
        legacy_r.completed_ops = 3;
        let legacy = legacy_r.to_json().replace(
            ",\"latency_exact\":{\"count\":0,\"sum\":0,\"values\":[],\"counts\":[]}",
            "",
        );
        assert_ne!(
            legacy,
            legacy_r.to_json(),
            "replacement must have removed the field"
        );
        let back = RunReport::from_json(&legacy).unwrap();
        assert_eq!(back, legacy_r);
    }

    #[test]
    fn goodput_round_trips_and_tolerates_legacy_json() {
        let mut r = sample();
        r.goodput = GoodputStats {
            offered: 10,
            completed: 6,
            deadline_exceeded: 2,
            shed: 1,
            abandoned: 1,
            retries: 3,
            latency: LatencyDigest::new(),
        };
        r.goodput.latency.record(1_000);
        r.goodput.latency.canonicalize();
        assert!(r.goodput.balanced());
        let json = r.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(json, back.to_json());
        assert!((r.goodput_ops() - 6.0).abs() < 1e-9);
        assert!(r.summary().contains("goodput"));

        // Reports serialized before the overload control plane have no
        // "goodput" key; they must parse with the empty section.
        let legacy_r = sample();
        let legacy = legacy_r.to_json().replace(
            ",\"goodput\":{\"offered\":0,\"completed\":0,\"deadline_exceeded\":0,\
             \"shed\":0,\"abandoned\":0,\"retries\":0,\
             \"latency\":{\"count\":0,\"sum\":0,\"values\":[],\"counts\":[]}}",
            "",
        );
        assert_ne!(
            legacy,
            legacy_r.to_json(),
            "replacement must have removed the field"
        );
        let back = RunReport::from_json(&legacy).unwrap();
        assert_eq!(back, legacy_r);
        assert!(back.goodput.is_empty());
        assert!(!legacy_r.summary().contains("goodput"));
    }

    #[test]
    fn from_json_tolerates_missing_mechanisms_field() {
        // Reports serialized before the mechanism layer have no
        // "mechanisms" key; they must still parse (as an empty pipeline).
        let mut r = sample();
        r.mechanisms.clear();
        let json = r.to_json();
        let legacy = json.replace(",\"mechanisms\":[]", "");
        assert_ne!(legacy, json, "replacement must have removed the field");
        let back = RunReport::from_json(&legacy).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn summary_renders_mechanism_lines() {
        let mut r = sample();
        r.mechanisms.push(MechCounters {
            decisions: 11,
            parks: 6,
            unparks: 5,
            ..MechCounters::named("vb")
        });
        let s = r.summary();
        assert!(s.contains("mech vb"));
        assert!(s.contains("11 decisions"));
    }
}
