//! Run reports, statistics, and table/figure formatting.
//!
//! - [`hist`]: log-bucketed latency histograms (p95/p99 tails).
//! - [`digest`]: exact, mergeable latency digests (p99/p999 gates).
//! - [`report`]: the [`RunReport`] produced by every simulation run, with
//!   the derived quantities the paper reports (normalized execution time,
//!   CPU utilization in Table-1 units, migration counts, throughput).
//! - [`table`]: plain-text / CSV rendering used by the per-figure binaries.

pub mod digest;
pub mod hist;
pub mod json;
pub mod report;
pub mod stats;
pub mod table;

pub use digest::LatencyDigest;
pub use hist::LatencyHist;
pub use report::{
    BlockingAggregate, BwdAggregate, CpuAggregate, Diagnostic, GoodputStats, MechCounters,
    RunReport, TaskAggregate,
};
pub use stats::Summary;
pub use table::{fmt_ns, fmt_ratio, TextTable};
