//! Property tests of the latency histogram against a naive exact oracle.

use oversub_metrics::LatencyHist;
use proptest::prelude::*;

fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Percentiles are within the bucket resolution (~5 %) of the exact
    /// answer, for arbitrary data.
    #[test]
    fn percentiles_close_to_exact(
        mut values in proptest::collection::vec(1u64..10_000_000_000, 1..500),
        p in 1.0f64..100.0,
    ) {
        let mut h = LatencyHist::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_percentile(&values, p);
        let got = h.percentile(p);
        // Bucket lower bound: within one bucket (≤ ~6.25% low), never high
        // by more than a bucket.
        let lo = (exact as f64 * 0.90) as u64;
        let hi = (exact as f64 * 1.07) as u64 + 1;
        prop_assert!(
            (lo..=hi).contains(&got),
            "p{p:.1}: got {got}, exact {exact}"
        );
    }

    /// Mean, min, max, and count are exact.
    #[test]
    fn moments_are_exact(values in proptest::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = LatencyHist::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    /// Percentile is monotone in p.
    #[test]
    fn percentile_monotone(values in proptest::collection::vec(1u64..1_000_000, 2..300)) {
        let mut h = LatencyHist::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// Merging equals recording everything into one histogram.
    #[test]
    fn merge_equivalence(
        a in proptest::collection::vec(1u64..1_000_000, 1..200),
        b in proptest::collection::vec(1u64..1_000_000, 1..200),
    ) {
        let mut ha = LatencyHist::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = LatencyHist::new();
        for &v in &b {
            hb.record(v);
        }
        let mut all = LatencyHist::new();
        for &v in a.iter().chain(b.iter()) {
            all.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), all.count());
        prop_assert_eq!(ha.min(), all.min());
        prop_assert_eq!(ha.max(), all.max());
        for p in [50.0, 95.0, 99.0] {
            prop_assert_eq!(ha.percentile(p), all.percentile(p));
        }
    }
}
