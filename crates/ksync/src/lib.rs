//! Kernel blocking substrate: futex and epoll, in vanilla and
//! virtual-blocking variants.
//!
//! - [`futex`]: `futex_wait` / `futex_wake` / `futex_requeue` over hash
//!   buckets, charging the paper's Figure-5 wakeup-path costs to the waker;
//!   virtual blocking (Figure 7) replaces sleep/wakeup with runqueue
//!   parking.
//! - [`epoll`]: event-based blocking used by memcached-style workloads,
//!   with the same two paths.

pub mod epoll;
pub mod futex;

pub use epoll::{EpollTable, EpollWaitResult};
pub use futex::{FutexParams, FutexTable, WaitMode, WaitOutcome, WakeReport, Woken};
