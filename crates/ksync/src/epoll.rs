//! The epoll model: event-based blocking for cloud workloads.
//!
//! Memcached workers sleep in `epoll_wait` until client requests arrive.
//! The vanilla kernel puts waiters on the epoll wait queue and wakes them
//! through the same expensive `try_to_wake_up` path as futexes. The paper
//! (§4.2, "Cloud workloads") implements VB in epoll exactly as in futex:
//! the wait queue is kept for ordering, but waiters are parked in place via
//! schedule skipping instead of sleeping.

use crate::futex::{FutexParams, WaitMode, WaitOutcome, WakeReport, Woken};
use oversub_hw::CpuId;
use oversub_sched::{Scheduler, StopReason};
use oversub_simcore::{KernelLock, SimTime};
use oversub_task::{EpollFd, TaskId, TaskTable};
use std::collections::VecDeque;

struct Instance {
    /// Events posted but not yet consumed.
    pending: u32,
    /// Blocked waiters in arrival order.
    waiters: VecDeque<(TaskId, WaitMode)>,
    /// Wait-queue lock.
    lock: KernelLock,
}

/// What `epoll_wait` did.
#[derive(Clone, Copy, Debug)]
pub enum EpollWaitResult {
    /// Events were pending: returned immediately with this many.
    Ready {
        /// Events handed to the caller.
        events: u32,
        /// Syscall cost.
        cost_ns: u64,
    },
    /// No events: the caller blocked (slept or VB-parked).
    Blocked(WaitOutcome),
}

/// The epoll subsystem. Reuses [`FutexParams`] for its VB configuration and
/// queue-operation costs.
pub struct EpollTable {
    params: FutexParams,
    instances: Vec<Instance>,
    /// Statistics: waits that slept.
    pub sleep_waits: u64,
    /// Statistics: waits that used virtual blocking.
    pub virtual_waits: u64,
    /// Statistics: wakeups issued.
    pub wakes: u64,
}

impl EpollTable {
    /// Build an epoll table with the same blocking configuration as the
    /// futex layer.
    pub fn new(params: FutexParams) -> Self {
        EpollTable {
            params,
            instances: Vec::new(),
            sleep_waits: 0,
            virtual_waits: 0,
            wakes: 0,
        }
    }

    /// Create an epoll instance.
    pub fn create(&mut self) -> EpollFd {
        let fd = EpollFd(self.instances.len());
        self.instances.push(Instance {
            pending: 0,
            waiters: VecDeque::new(),
            lock: KernelLock::new(self.params.bucket_lock),
        });
        fd
    }

    /// Number of waiters currently blocked on `ep` (0 for an unknown fd).
    pub fn waiter_count(&self, ep: EpollFd) -> usize {
        self.instances.get(ep.0).map_or(0, |i| i.waiters.len())
    }

    /// Events currently pending on `ep` (0 for an unknown fd).
    pub fn pending(&self, ep: EpollFd) -> u32 {
        self.instances.get(ep.0).map_or(0, |i| i.pending)
    }

    /// True when `tid` is blocked (sleeping or VB-parked) on any epoll
    /// instance. Used by the liveness watchdog to distinguish an orphaned
    /// VB-park from one that still has a registered waker.
    pub fn is_waiter(&self, tid: TaskId) -> bool {
        self.instances
            .iter()
            .any(|i| i.waiters.iter().any(|&(t, _)| t == tid))
    }

    /// `epoll_wait` by the task currently running on `cpu`: returns pending
    /// events if any, otherwise blocks the caller (sleep or VB).
    pub fn epoll_wait(
        &mut self,
        sched: &mut Scheduler,
        tasks: &mut TaskTable,
        tid: TaskId,
        ep: EpollFd,
        cpu: CpuId,
        now: SimTime,
    ) -> EpollWaitResult {
        let syscall = sched.params.syscall_entry_ns;
        if ep.0 >= self.instances.len() {
            // A wait on an fd that was never created: the real syscall
            // returns EBADF. Model it as an immediate empty return.
            debug_assert!(false, "epoll_wait on unknown fd {}", ep.0);
            return EpollWaitResult::Ready {
                events: 0,
                cost_ns: syscall,
            };
        }
        if self.instances[ep.0].pending > 0 {
            let events = std::mem::take(&mut self.instances[ep.0].pending);
            return EpollWaitResult::Ready {
                events,
                cost_ns: syscall,
            };
        }
        let grant = self.instances[ep.0]
            .lock
            .acquire(now + syscall, self.params.bucket_hold_ns);
        let cost_ns = grant.end - now;

        // Unlike futex, epoll instances are usually per-worker, so the
        // waiters-per-queue heuristic would always disable VB; the paper's
        // epoll integration keeps VB on whenever the mechanism is enabled.
        let mode = if self.params.vb_enabled && sched.vb_enabled {
            WaitMode::Virtual
        } else {
            WaitMode::Sleep
        };
        self.instances[ep.0].waiters.push_back((tid, mode));
        let stop_time = now + cost_ns;
        match mode {
            WaitMode::Sleep => {
                self.sleep_waits += 1;
                sched.stop_current(tasks, cpu, stop_time, StopReason::Sleep);
            }
            WaitMode::Virtual => {
                self.virtual_waits += 1;
                sched.stop_current(tasks, cpu, stop_time, StopReason::VirtualBlock);
            }
        }
        EpollWaitResult::Blocked(WaitOutcome { mode, cost_ns })
    }

    /// Post `count` events to `ep` (packets arriving), waking at most one
    /// blocked waiter (level-triggered: one worker drains the queue). The
    /// poster runs on `poster_cpu` and pays the wake cost.
    pub fn epoll_post(
        &mut self,
        sched: &mut Scheduler,
        tasks: &mut TaskTable,
        ep: EpollFd,
        count: u32,
        poster_cpu: CpuId,
        now: SimTime,
    ) -> WakeReport {
        let mut report = WakeReport::default();
        if ep.0 >= self.instances.len() {
            debug_assert!(false, "epoll_post on unknown fd {}", ep.0);
            return report;
        }
        self.instances[ep.0].pending += count;
        if self.instances[ep.0].waiters.is_empty() {
            return report;
        }
        let grant = self.instances[ep.0]
            .lock
            .acquire(now, self.params.bucket_hold_ns);
        let mut t = grant.end;
        if let Some((tid, mode)) = self.instances[ep.0].waiters.pop_front() {
            self.wakes += 1;
            match mode {
                WaitMode::Sleep => {
                    let out = sched.vanilla_wake(tasks, tid, poster_cpu, t);
                    t += out.cost_ns;
                    report.woken.push(Woken {
                        task: tid,
                        cpu: out.cpu,
                        preempt: out.preempt,
                        mode: WaitMode::Sleep,
                    });
                }
                WaitMode::Virtual => {
                    let (cpu, cost, preempt) = sched.vb_wake(tasks, tid, t);
                    t += cost;
                    report.woken.push(Woken {
                        task: tid,
                        cpu,
                        preempt,
                        mode: WaitMode::Virtual,
                    });
                }
            }
        }
        report.waker_cost_ns = t - now;
        report
    }

    /// Consume all pending events of `ep` (a woken worker draining its
    /// ready list). Returns the number taken.
    pub fn take_pending(&mut self, ep: EpollFd) -> u32 {
        self.instances
            .get_mut(ep.0)
            .map_or(0, |i| std::mem::take(&mut i.pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oversub_hw::{MemModel, Topology};
    use oversub_sched::{Pick, SchedParams};
    use oversub_task::{Action, FnProgram, Task, TaskState};

    fn setup(vb: bool) -> (Scheduler, TaskTable, EpollTable) {
        let mut sched = Scheduler::new(
            Topology::flat(1),
            SchedParams::default(),
            MemModel::default(),
            vb,
        );
        let mut tasks = TaskTable::new();
        for i in 0..3 {
            tasks.push(Task::new(
                TaskId(i),
                Box::new(FnProgram::new("nop", |_| Action::Exit)),
                CpuId(0),
            ));
        }
        for i in 0..3 {
            sched.enqueue_new(&mut tasks, TaskId(i), CpuId(0), SimTime::ZERO);
        }
        let ep = EpollTable::new(FutexParams {
            vb_enabled: vb,
            vb_auto_disable: false,
            ..FutexParams::default()
        });
        (sched, tasks, ep)
    }

    fn run_task(sched: &mut Scheduler, tasks: &mut TaskTable, cpu: CpuId) -> TaskId {
        let Pick::Run(t, _) = sched.pick_next(tasks, cpu) else {
            panic!()
        };
        sched.start(tasks, cpu, t, SimTime::ZERO);
        t
    }

    #[test]
    fn wait_with_pending_events_returns_immediately() {
        let (mut sched, mut tasks, mut ept) = setup(false);
        let ep = ept.create();
        ept.epoll_post(&mut sched, &mut tasks, ep, 5, CpuId(0), SimTime::ZERO);
        let t = run_task(&mut sched, &mut tasks, CpuId(0));
        match ept.epoll_wait(&mut sched, &mut tasks, t, ep, CpuId(0), SimTime::ZERO) {
            EpollWaitResult::Ready { events, cost_ns } => {
                assert_eq!(events, 5);
                assert!(cost_ns > 0);
            }
            other => panic!("expected ready, got {other:?}"),
        }
        assert_eq!(ept.pending(ep), 0);
    }

    #[test]
    fn wait_without_events_blocks_vanilla() {
        let (mut sched, mut tasks, mut ept) = setup(false);
        let ep = ept.create();
        let t = run_task(&mut sched, &mut tasks, CpuId(0));
        match ept.epoll_wait(&mut sched, &mut tasks, t, ep, CpuId(0), SimTime::ZERO) {
            EpollWaitResult::Blocked(out) => assert_eq!(out.mode, WaitMode::Sleep),
            other => panic!("expected blocked, got {other:?}"),
        }
        assert_eq!(tasks.state[t.0], TaskState::Sleeping);
        assert_eq!(ept.waiter_count(ep), 1);
    }

    #[test]
    fn wait_without_events_blocks_virtually_under_vb() {
        let (mut sched, mut tasks, mut ept) = setup(true);
        let ep = ept.create();
        let t = run_task(&mut sched, &mut tasks, CpuId(0));
        match ept.epoll_wait(&mut sched, &mut tasks, t, ep, CpuId(0), SimTime::ZERO) {
            EpollWaitResult::Blocked(out) => assert_eq!(out.mode, WaitMode::Virtual),
            other => panic!("expected blocked, got {other:?}"),
        }
        assert!(tasks.vb_blocked[t.0]);
    }

    #[test]
    fn post_wakes_one_waiter_fifo() {
        let (mut sched, mut tasks, mut ept) = setup(false);
        let ep = ept.create();
        let t0 = run_task(&mut sched, &mut tasks, CpuId(0));
        ept.epoll_wait(&mut sched, &mut tasks, t0, ep, CpuId(0), SimTime::ZERO);
        let t1 = run_task(&mut sched, &mut tasks, CpuId(0));
        ept.epoll_wait(&mut sched, &mut tasks, t1, ep, CpuId(0), SimTime::ZERO);

        let report = ept.epoll_post(&mut sched, &mut tasks, ep, 1, CpuId(0), SimTime::ZERO);
        assert_eq!(report.woken.len(), 1);
        assert_eq!(report.woken[0].task, t0, "FIFO wake");
        assert_eq!(ept.waiter_count(ep), 1);
        assert_eq!(ept.take_pending(ep), 1);
    }

    #[test]
    fn post_without_waiters_just_accumulates() {
        let (mut sched, mut tasks, mut ept) = setup(false);
        let ep = ept.create();
        let r = ept.epoll_post(&mut sched, &mut tasks, ep, 3, CpuId(0), SimTime::ZERO);
        assert!(r.woken.is_empty());
        assert_eq!(r.waker_cost_ns, 0);
        assert_eq!(ept.pending(ep), 3);
        let r = ept.epoll_post(&mut sched, &mut tasks, ep, 2, CpuId(0), SimTime::ZERO);
        assert!(r.woken.is_empty());
        assert_eq!(ept.pending(ep), 5);
    }

    #[test]
    fn is_waiter_tracks_blocked_tasks() {
        let (mut sched, mut tasks, mut ept) = setup(true);
        let ep = ept.create();
        let t = run_task(&mut sched, &mut tasks, CpuId(0));
        assert!(!ept.is_waiter(t));
        ept.epoll_wait(&mut sched, &mut tasks, t, ep, CpuId(0), SimTime::ZERO);
        assert!(ept.is_waiter(t));
        ept.epoll_post(&mut sched, &mut tasks, ep, 1, CpuId(0), SimTime::ZERO);
        assert!(!ept.is_waiter(t));
    }

    #[test]
    fn unknown_fd_accessors_are_graceful() {
        let (_sched, _tasks, mut ept) = setup(false);
        let bogus = EpollFd(99);
        assert_eq!(ept.waiter_count(bogus), 0);
        assert_eq!(ept.pending(bogus), 0);
        assert_eq!(ept.take_pending(bogus), 0);
    }

    #[test]
    fn multiple_instances_are_independent() {
        let (mut sched, mut tasks, mut ept) = setup(false);
        let ep0 = ept.create();
        let ep1 = ept.create();
        ept.epoll_post(&mut sched, &mut tasks, ep0, 7, CpuId(0), SimTime::ZERO);
        assert_eq!(ept.pending(ep0), 7);
        assert_eq!(ept.pending(ep1), 0);
    }
}
