//! The futex model: hash buckets, `futex_wait` / `futex_wake` / requeue,
//! with both the vanilla sleep path and the paper's virtual-blocking path.
//!
//! Vanilla path (paper Figure 5): a failed acquisition traps into the
//! kernel, takes the `futex_hash_bucket` lock, enqueues the waiter, and
//! puts it to sleep. On wake, the lock holder moves waiters to a temporary
//! `wake_q` and performs `try_to_wake_up` for each — core selection,
//! destination runqueue lock, enqueue, preemption check — all charged to
//! the waker, serialized, often migrating the waiters.
//!
//! Virtual-blocking path (paper Figure 7): the bucket queue is preserved
//! (so wake order is unchanged), but the waiter is *parked in place* on its
//! runqueue with the `thread_state` flag set. Waking is a flag clear plus
//! vruntime restore — no sleep queues, no core selection, no migrations.
//!
//! VB auto-disable (paper §3.1): when the number of waiters on a bucket
//! queue is below the number of cores, all of them could wake onto idle
//! cores simultaneously, so the vanilla path is used.

use oversub_hw::CpuId;
use oversub_sched::{Scheduler, StopReason};
use oversub_simcore::{KernelLock, KernelLockParams, SimTime};
use oversub_task::{FutexKey, TaskId, TaskTable};
use std::collections::{BTreeMap, VecDeque};

/// Number of hash buckets (power of two).
const NUM_BUCKETS: usize = 64;

/// How a waiter was blocked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaitMode {
    /// Real sleep: off the runqueue, state `Sleeping`.
    Sleep,
    /// Virtual blocking: parked on the runqueue with `thread_state` set.
    Virtual,
}

/// A queued waiter.
#[derive(Clone, Copy, Debug)]
struct Waiter {
    task: TaskId,
    mode: WaitMode,
}

/// One futex hash bucket: a lock plus per-key FIFO queues.
struct Bucket {
    lock: KernelLock,
    queues: BTreeMap<FutexKey, VecDeque<Waiter>>,
}

/// Configuration of the futex layer.
#[derive(Clone, Copy, Debug)]
pub struct FutexParams {
    /// Whether virtual blocking is available at all.
    pub vb_enabled: bool,
    /// Whether VB auto-disables when a queue has fewer waiters than cores.
    pub vb_auto_disable: bool,
    /// Hold time of the bucket lock for an enqueue/dequeue.
    pub bucket_hold_ns: u64,
    /// Per-waiter cost of moving an entry to the wake_q (vanilla only).
    pub wake_q_move_ns: u64,
    /// Cost model of bucket locks.
    pub bucket_lock: KernelLockParams,
}

impl Default for FutexParams {
    fn default() -> Self {
        FutexParams {
            vb_enabled: false,
            vb_auto_disable: true,
            bucket_hold_ns: 150,
            wake_q_move_ns: 80,
            bucket_lock: KernelLockParams {
                base_cost_ns: 25,
                per_waiter_ns: 45,
                max_contention_waiters: 16,
            },
        }
    }
}

/// Result of a `futex_wait`: what the engine must do with the caller.
#[derive(Clone, Copy, Debug)]
pub struct WaitOutcome {
    /// Sleep or virtual block.
    pub mode: WaitMode,
    /// Kernel time consumed before the context switch (syscall + bucket
    /// operations).
    pub cost_ns: u64,
}

/// One task woken by a `futex_wake` / `epoll_post`.
#[derive(Clone, Copy, Debug)]
pub struct Woken {
    /// The woken task.
    pub task: TaskId,
    /// The CPU it landed on.
    pub cpu: CpuId,
    /// Whether that CPU should re-check wakeup preemption.
    pub preempt: bool,
    /// How the task had been blocked (drives the `on_wake` mechanism
    /// hook: a `Virtual` wake is a VB unpark, not a kernel wakeup).
    pub mode: WaitMode,
}

/// Result of a `futex_wake`.
#[derive(Debug, Default)]
pub struct WakeReport {
    /// Tasks woken, in queue order.
    pub woken: Vec<Woken>,
    /// Total kernel time the *waker* spent performing the wakeups.
    pub waker_cost_ns: u64,
}

/// The futex subsystem.
pub struct FutexTable {
    params: FutexParams,
    buckets: Vec<Bucket>,
    /// Waiters currently blocked, for sanity checks and introspection.
    blocked: BTreeMap<TaskId, FutexKey>,
    /// Statistics: waits taken via each mode.
    pub sleep_waits: u64,
    /// Statistics: waits taken via virtual blocking.
    pub virtual_waits: u64,
    /// Statistics: total wakeups issued.
    pub wakes: u64,
}

impl FutexTable {
    /// Build a futex table.
    pub fn new(params: FutexParams) -> Self {
        let buckets = (0..NUM_BUCKETS)
            .map(|_| Bucket {
                lock: KernelLock::new(params.bucket_lock),
                queues: BTreeMap::new(),
            })
            .collect();
        FutexTable {
            params,
            buckets,
            blocked: BTreeMap::new(),
            sleep_waits: 0,
            virtual_waits: 0,
            wakes: 0,
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &FutexParams {
        &self.params
    }

    #[inline]
    fn bucket_of(&self, key: FutexKey) -> usize {
        // Fibonacci hash of the address.
        (key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize % NUM_BUCKETS
    }

    /// Number of waiters currently queued on `key`.
    pub fn queue_len(&self, key: FutexKey) -> usize {
        let b = self.bucket_of(key);
        self.buckets[b].queues.get(&key).map_or(0, |q| q.len())
    }

    /// True if `task` is currently blocked on a futex.
    pub fn is_blocked(&self, task: TaskId) -> bool {
        self.blocked.contains_key(&task)
    }

    /// Block the *currently running* task `tid` (on `cpu`) on `key`.
    ///
    /// Chooses the wait mode (VB vs sleep), enqueues the waiter, charges
    /// the bucket costs, and transitions the task off-CPU via the
    /// scheduler. The engine must afterwards schedule the next task on
    /// `cpu` (after `cost_ns` plus the context-switch cost).
    pub fn futex_wait(
        &mut self,
        sched: &mut Scheduler,
        tasks: &mut TaskTable,
        tid: TaskId,
        key: FutexKey,
        cpu: CpuId,
        now: SimTime,
    ) -> WaitOutcome {
        debug_assert!(!self.is_blocked(tid), "{tid:?} double futex_wait");
        let b = self.bucket_of(key);
        let grant = self.buckets[b].lock.acquire(
            now + sched.params.syscall_entry_ns,
            self.params.bucket_hold_ns,
        );
        let cost_ns = grant.end - now;

        // VB decision: enabled, and (unless auto-disable fires) used
        // unconditionally. Auto-disable: with fewer queued waiters than
        // cores, simultaneous wakes all find a core — vanilla is fine.
        let queue_len = self.queue_len(key);
        let mode = if self.params.vb_enabled
            && sched.vb_enabled
            && !(self.params.vb_auto_disable && queue_len + 1 < sched.num_online())
        {
            WaitMode::Virtual
        } else {
            WaitMode::Sleep
        };

        self.buckets[b]
            .queues
            .entry(key)
            .or_default()
            .push_back(Waiter { task: tid, mode });
        self.blocked.insert(tid, key);

        let stop_time = now + cost_ns;
        match mode {
            WaitMode::Sleep => {
                self.sleep_waits += 1;
                sched.stop_current(tasks, cpu, stop_time, StopReason::Sleep);
            }
            WaitMode::Virtual => {
                self.virtual_waits += 1;
                sched.stop_current(tasks, cpu, stop_time, StopReason::VirtualBlock);
            }
        }
        WaitOutcome { mode, cost_ns }
    }

    /// Wake up to `n` waiters of `key`. The waker is the task running on
    /// `waker_cpu`; the reported cost is charged to it by the engine.
    pub fn futex_wake(
        &mut self,
        sched: &mut Scheduler,
        tasks: &mut TaskTable,
        key: FutexKey,
        n: usize,
        waker_cpu: CpuId,
        now: SimTime,
    ) -> WakeReport {
        let b = self.bucket_of(key);
        let mut report = WakeReport::default();
        if self.queue_len(key) == 0 {
            // Uncontended fast path: peek the bucket without finding
            // waiters (still takes the lock briefly).
            let grant = self.buckets[b]
                .lock
                .acquire(now, self.params.bucket_hold_ns);
            report.waker_cost_ns = grant.end - now;
            return report;
        }

        // Take the bucket lock and move up to n waiters to the wake_q.
        let grant = self.buckets[b]
            .lock
            .acquire(now, self.params.bucket_hold_ns);
        let mut t = grant.end;
        let mut wake_q = Vec::new();
        if let Some(q) = self.buckets[b].queues.get_mut(&key) {
            for _ in 0..n {
                match q.pop_front() {
                    Some(w) => {
                        t += self.params.wake_q_move_ns;
                        wake_q.push(w);
                    }
                    None => break,
                }
            }
            if q.is_empty() {
                self.buckets[b].queues.remove(&key);
            }
        }

        // Wake each waiter, one at a time, on the waker's time.
        for w in wake_q {
            self.blocked.remove(&w.task);
            self.wakes += 1;
            match w.mode {
                WaitMode::Sleep => {
                    let out = sched.vanilla_wake(tasks, w.task, waker_cpu, t);
                    t += out.cost_ns;
                    report.woken.push(Woken {
                        task: w.task,
                        cpu: out.cpu,
                        preempt: out.preempt,
                        mode: WaitMode::Sleep,
                    });
                }
                WaitMode::Virtual => {
                    let (cpu, cost, preempt) = sched.vb_wake(tasks, w.task, t);
                    t += cost;
                    report.woken.push(Woken {
                        task: w.task,
                        cpu,
                        preempt,
                        mode: WaitMode::Virtual,
                    });
                }
            }
        }
        report.waker_cost_ns = t - now;
        report
    }

    /// Wake `wake_n` waiters of `from` and requeue up to `requeue_n` of the
    /// remaining waiters onto `to` (the futex `FUTEX_CMP_REQUEUE`
    /// operation, used by condition variables). Requeued waiters keep their
    /// wait mode; they cost only a queue move, not a wakeup.
    #[allow(clippy::too_many_arguments)] // mirrors the kernel API shape
    pub fn futex_requeue(
        &mut self,
        sched: &mut Scheduler,
        tasks: &mut TaskTable,
        from: FutexKey,
        to: FutexKey,
        wake_n: usize,
        requeue_n: usize,
        waker_cpu: CpuId,
        now: SimTime,
    ) -> WakeReport {
        let mut report = self.futex_wake(sched, tasks, from, wake_n, waker_cpu, now);
        let t_after_wake = now + report.waker_cost_ns;

        let bf = self.bucket_of(from);
        let moved: Vec<Waiter> = {
            let mut out = Vec::new();
            if let Some(q) = self.buckets[bf].queues.get_mut(&from) {
                for _ in 0..requeue_n {
                    match q.pop_front() {
                        Some(w) => out.push(w),
                        None => break,
                    }
                }
                if q.is_empty() {
                    self.buckets[bf].queues.remove(&from);
                }
            }
            out
        };
        if !moved.is_empty() {
            let bt = self.bucket_of(to);
            let grant = self.buckets[bt]
                .lock
                .acquire(t_after_wake, self.params.bucket_hold_ns);
            let mut t = grant.end;
            let dst = self.buckets[bt].queues.entry(to).or_default();
            for w in moved {
                t += self.params.wake_q_move_ns;
                match self.blocked.get_mut(&w.task) {
                    Some(k) => *k = to,
                    None => {
                        // A waiter sitting in a queue is always in the
                        // blocked map; re-inserting keeps the tables
                        // consistent if that ever breaks.
                        debug_assert!(false, "requeued waiter {:?} not in blocked map", w.task);
                        self.blocked.insert(w.task, to);
                    }
                }
                dst.push_back(w);
            }
            report.waker_cost_ns = t - now;
        }
        report
    }

    /// Wake one *specific* blocked waiter, regardless of queue position —
    /// the fault-injection path for spurious wakeups (a signal landing on
    /// a futex-parked thread) and the watchdog's rescue of orphaned VB
    /// parks. Returns `None` when `tid` is not blocked in the table.
    pub fn futex_wake_task(
        &mut self,
        sched: &mut Scheduler,
        tasks: &mut TaskTable,
        tid: TaskId,
        waker_cpu: CpuId,
        now: SimTime,
    ) -> Option<WakeReport> {
        let key = *self.blocked.get(&tid)?;
        let b = self.bucket_of(key);
        let grant = self.buckets[b]
            .lock
            .acquire(now, self.params.bucket_hold_ns);
        let mut t = grant.end;
        let (mode, emptied) = {
            let q = self.buckets[b].queues.get_mut(&key)?;
            let pos = q.iter().position(|w| w.task == tid)?;
            t += self.params.wake_q_move_ns;
            let w = q.remove(pos)?;
            (w.mode, q.is_empty())
        };
        if emptied {
            self.buckets[b].queues.remove(&key);
        }
        self.blocked.remove(&tid);
        self.wakes += 1;
        let mut report = WakeReport::default();
        match mode {
            WaitMode::Sleep => {
                let out = sched.vanilla_wake(tasks, tid, waker_cpu, t);
                t += out.cost_ns;
                report.woken.push(Woken {
                    task: tid,
                    cpu: out.cpu,
                    preempt: out.preempt,
                    mode: WaitMode::Sleep,
                });
            }
            WaitMode::Virtual => {
                let (cpu, cost, preempt) = sched.vb_wake(tasks, tid, t);
                t += cost;
                report.woken.push(Woken {
                    task: tid,
                    cpu,
                    preempt,
                    mode: WaitMode::Virtual,
                });
            }
        }
        report.waker_cost_ns = t - now;
        Some(report)
    }

    /// Tasks currently blocked in the table whose wait mode matches
    /// `mode`, in deterministic (TaskId) order — the candidate set for a
    /// spurious-wakeup draw.
    pub fn blocked_tasks(&self, mode: WaitMode) -> Vec<TaskId> {
        let mut out: Vec<TaskId> = self
            .buckets
            .iter()
            .flat_map(|b| b.queues.values())
            .flatten()
            .filter(|w| w.mode == mode)
            .map(|w| w.task)
            .collect();
        out.sort_unstable_by_key(|t| t.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oversub_hw::{MemModel, Topology};
    use oversub_sched::{Pick, SchedParams};
    use oversub_task::{Action, FnProgram, Task, TaskState};

    fn setup(cpus: usize, n_tasks: usize, vb: bool) -> (Scheduler, TaskTable, FutexTable) {
        let mut sched = Scheduler::new(
            Topology::flat(cpus),
            SchedParams::default(),
            MemModel::default(),
            vb,
        );
        let mut tasks = TaskTable::new();
        for i in 0..n_tasks {
            tasks.push(Task::new(
                TaskId(i),
                Box::new(FnProgram::new("nop", |_| Action::Exit)),
                CpuId(0),
            ));
        }
        for i in 0..n_tasks {
            sched.enqueue_new(&mut tasks, TaskId(i), CpuId(i % cpus), SimTime::ZERO);
        }
        let ft = FutexTable::new(FutexParams {
            vb_enabled: vb,
            vb_auto_disable: false,
            ..FutexParams::default()
        });
        (sched, tasks, ft)
    }

    fn run_task(sched: &mut Scheduler, tasks: &mut TaskTable, cpu: CpuId) -> TaskId {
        let Pick::Run(t, _) = sched.pick_next(tasks, cpu) else {
            panic!("nothing to run on {cpu:?}")
        };
        sched.start(tasks, cpu, t, SimTime::ZERO);
        t
    }

    #[test]
    fn vanilla_wait_puts_task_to_sleep() {
        let (mut sched, mut tasks, mut ft) = setup(1, 2, false);
        let t = run_task(&mut sched, &mut tasks, CpuId(0));
        let key = FutexKey(0x1000);
        let out = ft.futex_wait(&mut sched, &mut tasks, t, key, CpuId(0), SimTime::ZERO);
        assert_eq!(out.mode, WaitMode::Sleep);
        assert!(out.cost_ns > 0);
        assert_eq!(tasks.state[t.0], TaskState::Sleeping);
        assert_eq!(ft.queue_len(key), 1);
        assert!(ft.is_blocked(t));
        assert_eq!(ft.sleep_waits, 1);
    }

    #[test]
    fn vb_wait_parks_in_place() {
        let (mut sched, mut tasks, mut ft) = setup(1, 2, true);
        let t = run_task(&mut sched, &mut tasks, CpuId(0));
        let key = FutexKey(0x1000);
        let out = ft.futex_wait(&mut sched, &mut tasks, t, key, CpuId(0), SimTime::ZERO);
        assert_eq!(out.mode, WaitMode::Virtual);
        assert_eq!(tasks.state[t.0], TaskState::Runnable);
        assert!(tasks.vb_blocked[t.0]);
        assert_eq!(sched.cpus[0].rq.nr_vb_parked(), 1);
        assert_eq!(ft.virtual_waits, 1);
    }

    #[test]
    fn wake_restores_fifo_order() {
        let (mut sched, mut tasks, mut ft) = setup(1, 3, false);
        let key = FutexKey(0xA0);
        let order: Vec<TaskId> = (0..3)
            .map(|_| {
                let t = run_task(&mut sched, &mut tasks, CpuId(0));
                ft.futex_wait(&mut sched, &mut tasks, t, key, CpuId(0), SimTime::ZERO);
                t
            })
            .collect();
        // Waker is external (no running task needed for the call itself).
        let report = ft.futex_wake(&mut sched, &mut tasks, key, 3, CpuId(0), SimTime::ZERO);
        let woken: Vec<TaskId> = report.woken.iter().map(|w| w.task).collect();
        assert_eq!(woken, order, "FIFO wake order");
        assert_eq!(ft.queue_len(key), 0);
        for t in woken {
            assert_eq!(tasks.state[t.0], TaskState::Runnable);
            assert!(!ft.is_blocked(t));
        }
    }

    #[test]
    fn vb_wake_is_much_cheaper_than_vanilla() {
        // 8 waiters on one core, woken in bulk: the vanilla path pays core
        // selection + rq locks per waiter; VB just clears flags.
        let mk = |vb: bool| {
            let (mut sched, mut tasks, mut ft) = setup(1, 9, vb);
            let key = FutexKey(0xB0);
            for _ in 0..8 {
                let t = run_task(&mut sched, &mut tasks, CpuId(0));
                ft.futex_wait(&mut sched, &mut tasks, t, key, CpuId(0), SimTime::ZERO);
            }
            let report = ft.futex_wake(&mut sched, &mut tasks, key, 8, CpuId(0), SimTime::ZERO);
            assert_eq!(report.woken.len(), 8);
            report.waker_cost_ns
        };
        let vanilla = mk(false);
        let vb = mk(true);
        assert!(
            vb * 2 < vanilla,
            "VB bulk wake ({vb} ns) should be far cheaper than vanilla ({vanilla} ns)"
        );
    }

    #[test]
    fn wake_with_no_waiters_is_cheap_noop() {
        let (mut sched, mut tasks, mut ft) = setup(1, 1, false);
        let report = ft.futex_wake(
            &mut sched,
            &mut tasks,
            FutexKey(0xC0),
            1,
            CpuId(0),
            SimTime::ZERO,
        );
        assert!(report.woken.is_empty());
        assert!(report.waker_cost_ns < 1_000);
    }

    #[test]
    fn wake_n_limits_wakeups() {
        let (mut sched, mut tasks, mut ft) = setup(1, 4, false);
        let key = FutexKey(0xD0);
        for _ in 0..3 {
            let t = run_task(&mut sched, &mut tasks, CpuId(0));
            ft.futex_wait(&mut sched, &mut tasks, t, key, CpuId(0), SimTime::ZERO);
        }
        let report = ft.futex_wake(&mut sched, &mut tasks, key, 1, CpuId(0), SimTime::ZERO);
        assert_eq!(report.woken.len(), 1);
        assert_eq!(ft.queue_len(key), 2);
    }

    #[test]
    fn auto_disable_uses_sleep_when_undersubscribed() {
        let mut sched = Scheduler::new(
            Topology::flat(8),
            SchedParams::default(),
            MemModel::default(),
            true,
        );
        let mut tasks = TaskTable::new();
        for i in 0..2 {
            tasks.push(Task::new(
                TaskId(i),
                Box::new(FnProgram::new("nop", |_| Action::Exit)),
                CpuId(0),
            ));
        }
        sched.enqueue_new(&mut tasks, TaskId(0), CpuId(0), SimTime::ZERO);
        let mut ft = FutexTable::new(FutexParams {
            vb_enabled: true,
            vb_auto_disable: true,
            ..FutexParams::default()
        });
        let Pick::Run(t, _) = sched.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        sched.start(&mut tasks, CpuId(0), t, SimTime::ZERO);
        // Queue is empty, 8 cores: fewer waiters than cores => sleep.
        let out = ft.futex_wait(
            &mut sched,
            &mut tasks,
            t,
            FutexKey(0xE0),
            CpuId(0),
            SimTime::ZERO,
        );
        assert_eq!(out.mode, WaitMode::Sleep);
    }

    #[test]
    fn requeue_moves_waiters_without_waking() {
        let (mut sched, mut tasks, mut ft) = setup(1, 4, false);
        let cond_key = FutexKey(0xF0);
        let mutex_key = FutexKey(0xF8);
        for _ in 0..3 {
            let t = run_task(&mut sched, &mut tasks, CpuId(0));
            ft.futex_wait(&mut sched, &mut tasks, t, cond_key, CpuId(0), SimTime::ZERO);
        }
        let report = ft.futex_requeue(
            &mut sched,
            &mut tasks,
            cond_key,
            mutex_key,
            1,
            usize::MAX,
            CpuId(0),
            SimTime::ZERO,
        );
        assert_eq!(report.woken.len(), 1);
        assert_eq!(ft.queue_len(cond_key), 0);
        assert_eq!(ft.queue_len(mutex_key), 2);
        // Requeued tasks are still asleep.
        let still_blocked = tasks
            .state
            .iter()
            .filter(|&&s| s == TaskState::Sleeping)
            .count();
        assert_eq!(still_blocked, 2);
    }

    #[test]
    fn wake_task_extracts_a_specific_waiter() {
        let (mut sched, mut tasks, mut ft) = setup(1, 4, false);
        let key = FutexKey(0x12);
        let order: Vec<TaskId> = (0..3)
            .map(|_| {
                let t = run_task(&mut sched, &mut tasks, CpuId(0));
                ft.futex_wait(&mut sched, &mut tasks, t, key, CpuId(0), SimTime::ZERO);
                t
            })
            .collect();
        // Wake the middle waiter out of FIFO order.
        let victim = order[1];
        let report = ft
            .futex_wake_task(&mut sched, &mut tasks, victim, CpuId(0), SimTime::ZERO)
            .expect("victim is blocked");
        assert_eq!(report.woken.len(), 1);
        assert_eq!(report.woken[0].task, victim);
        assert!(!ft.is_blocked(victim));
        assert_eq!(ft.queue_len(key), 2);
        // The others stay queued and a later bulk wake still works.
        let report = ft.futex_wake(&mut sched, &mut tasks, key, 2, CpuId(0), SimTime::ZERO);
        let woken: Vec<TaskId> = report.woken.iter().map(|w| w.task).collect();
        assert_eq!(woken, vec![order[0], order[2]]);
        // Waking a non-blocked task is a no-op.
        assert!(ft
            .futex_wake_task(&mut sched, &mut tasks, victim, CpuId(0), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn blocked_tasks_lists_by_mode() {
        let (mut sched, mut tasks, mut ft) = setup(1, 3, true);
        let key = FutexKey(0x13);
        for _ in 0..2 {
            let t = run_task(&mut sched, &mut tasks, CpuId(0));
            ft.futex_wait(&mut sched, &mut tasks, t, key, CpuId(0), SimTime::ZERO);
        }
        let vb = ft.blocked_tasks(WaitMode::Virtual);
        assert_eq!(vb.len(), 2);
        assert!(vb.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
        assert!(ft.blocked_tasks(WaitMode::Sleep).is_empty());
    }

    #[test]
    fn mixed_mode_queue_wakes_each_correctly() {
        // First waiter sleeps (vanilla futex), then VB turns on for later
        // waiters — the wake path must handle both.
        let (mut sched, mut tasks, mut ft) = setup(1, 4, true);
        let key = FutexKey(0x11);
        // Force first wait to sleep by toggling params.
        ft.params.vb_enabled = false;
        let t0 = run_task(&mut sched, &mut tasks, CpuId(0));
        ft.futex_wait(&mut sched, &mut tasks, t0, key, CpuId(0), SimTime::ZERO);
        ft.params.vb_enabled = true;
        let t1 = run_task(&mut sched, &mut tasks, CpuId(0));
        ft.futex_wait(&mut sched, &mut tasks, t1, key, CpuId(0), SimTime::ZERO);

        let report = ft.futex_wake(&mut sched, &mut tasks, key, 2, CpuId(0), SimTime::ZERO);
        assert_eq!(report.woken.len(), 2);
        assert_eq!(tasks.state[t0.0], TaskState::Runnable);
        assert!(!tasks.vb_blocked[t1.0]);
    }
}
