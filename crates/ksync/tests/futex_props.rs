//! Property tests of the futex substrate: wake conservation, FIFO order,
//! and mode bookkeeping under random wait/wake interleavings.

use oversub_hw::{CpuId, MemModel, Topology};
use oversub_ksync::{FutexParams, FutexTable};
use oversub_sched::{Pick, SchedParams, Scheduler};
use oversub_simcore::SimTime;
use oversub_task::{Action, FnProgram, FutexKey, Task, TaskId, TaskState, TaskTable};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Block the next free task on key `k % 3`.
    Wait(u8),
    /// Wake up to `n` waiters of key `k % 3`.
    Wake(u8, u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Wait),
            (any::<u8>(), 1u8..5).prop_map(|(k, n)| Op::Wake(k, n)),
        ],
        1..120,
    )
}

struct World {
    sched: Scheduler,
    tasks: TaskTable,
    futex: FutexTable,
    /// Model: FIFO queue per key.
    model: [VecDeque<TaskId>; 3],
    free: Vec<TaskId>,
    now: SimTime,
}

impl World {
    fn new(vb: bool, cpus: usize) -> Self {
        let mut sched = Scheduler::new(
            Topology::flat(cpus),
            SchedParams::default(),
            MemModel::default(),
            vb,
        );
        let n = 16;
        let mut tasks = TaskTable::new();
        for i in 0..n {
            tasks.push(Task::new(
                TaskId(i),
                Box::new(FnProgram::new("nop", |_| Action::Exit)),
                CpuId(i % cpus),
            ));
        }
        for i in 0..n {
            sched.enqueue_new(&mut tasks, TaskId(i), CpuId(i % cpus), SimTime::ZERO);
        }
        World {
            sched,
            tasks,
            futex: FutexTable::new(FutexParams {
                vb_enabled: vb,
                vb_auto_disable: false,
                ..FutexParams::default()
            }),
            model: Default::default(),
            free: (0..n).map(TaskId).collect(),
            now: SimTime::ZERO,
        }
    }

    fn key(k: u8) -> FutexKey {
        FutexKey(0x1000 + (k as u64 % 3) * 64)
    }

    fn wait(&mut self, k: u8) -> bool {
        let Some(tid) = self.free.pop() else {
            return false;
        };
        // The task must be running to block: pick it on its cpu.
        let cpu = self.tasks.last_cpu[tid.0];
        // Clear whatever is current there first.
        if let Some(curr) = self.sched.cpus[cpu.0].current {
            self.sched.stop_current(
                &mut self.tasks,
                cpu,
                self.now,
                oversub_sched::StopReason::Preempted,
            );
            let _ = curr;
        }
        // Pick until we get the task we want (bounded).
        for _ in 0..32 {
            match self.sched.pick_next(&mut self.tasks, cpu) {
                Pick::Run(t, _) if t == tid => {
                    self.sched.start(&mut self.tasks, cpu, t, self.now);
                    self.futex.futex_wait(
                        &mut self.sched,
                        &mut self.tasks,
                        tid,
                        Self::key(k),
                        cpu,
                        self.now,
                    );
                    self.model[(k % 3) as usize].push_back(tid);
                    self.now += 10_000;
                    return true;
                }
                Pick::Run(t, _) => {
                    // Run and immediately preempt to rotate the queue.
                    self.sched.start(&mut self.tasks, cpu, t, self.now);
                    self.now += 1_000;
                    self.sched.stop_current(
                        &mut self.tasks,
                        cpu,
                        self.now,
                        oversub_sched::StopReason::Preempted,
                    );
                }
                _ => {
                    self.free.push(tid);
                    return false;
                }
            }
        }
        self.free.push(tid);
        false
    }

    fn wake(&mut self, k: u8, n: u8) -> Vec<TaskId> {
        let report = self.futex.futex_wake(
            &mut self.sched,
            &mut self.tasks,
            Self::key(k),
            n as usize,
            CpuId(0),
            self.now,
        );
        self.now += 10_000;
        report.woken.iter().map(|w| w.task).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wakes return exactly the model's FIFO prefix, never lose waiters,
    /// and leave woken tasks runnable — in both sleep and VB modes.
    #[test]
    fn fifo_wake_conservation(ops in arb_ops(), vb in any::<bool>()) {
        let mut w = World::new(vb, 4);
        for op in ops {
            match op {
                Op::Wait(k) => {
                    w.wait(k);
                }
                Op::Wake(k, n) => {
                    let woken = w.wake(k, n);
                    let idx = (k % 3) as usize;
                    let expected: Vec<TaskId> = (0..woken.len())
                        .map(|_| w.model[idx].pop_front().expect("model underflow"))
                        .collect();
                    prop_assert_eq!(&woken, &expected, "wake order mismatch");
                    // Can't have left waiters behind if fewer than n woke.
                    if woken.len() < n as usize {
                        prop_assert!(w.model[idx].is_empty());
                    }
                    for t in woken {
                        prop_assert!(w.tasks.schedulable(t));
                        prop_assert!(!w.futex.is_blocked(t));
                        w.free.push(t);
                    }
                }
            }
            // Blocked bookkeeping matches the model.
            let model_blocked: usize = w.model.iter().map(|q| q.len()).sum();
            let table_blocked = (0..w.tasks.len())
                .filter(|&i| w.futex.is_blocked(TaskId(i)))
                .count();
            prop_assert_eq!(model_blocked, table_blocked);
        }
    }

    /// The wait mode matches the configuration: every wait sleeps under
    /// vanilla and parks under VB (auto-disable off).
    #[test]
    fn wait_mode_follows_config(ks in proptest::collection::vec(any::<u8>(), 1..12), vb in any::<bool>()) {
        let mut w = World::new(vb, 2);
        let mut waits = 0;
        for k in ks {
            if w.wait(k) {
                waits += 1;
            }
        }
        if vb {
            prop_assert_eq!(w.futex.virtual_waits, waits);
            prop_assert_eq!(w.futex.sleep_waits, 0);
            for i in 0..w.tasks.len() {
                if w.futex.is_blocked(TaskId(i)) {
                    prop_assert!(w.tasks.vb_blocked[i]);
                    prop_assert_eq!(w.tasks.state[i], TaskState::Runnable);
                }
            }
        } else {
            prop_assert_eq!(w.futex.sleep_waits, waits);
            prop_assert_eq!(w.futex.virtual_waits, 0);
            for i in 0..w.tasks.len() {
                if w.futex.is_blocked(TaskId(i)) {
                    prop_assert_eq!(w.tasks.state[i], TaskState::Sleeping);
                }
            }
        }
    }
}
