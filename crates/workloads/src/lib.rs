//! Benchmark workloads: the microbenchmarks of the paper's measurement
//! study, synchronization skeletons of the PARSEC / SPLASH-2 / NPB suites,
//! and the memcached server used in the cloud-workload evaluation.
//!
//! This crate also defines the [`workload::Workload`] interface that the
//! `oversub` engine executes.

pub mod admission;
pub mod forkjoin;
pub mod memcached;
pub mod micro;
pub mod pipeline;
pub mod skeletons;
pub mod webserving;
pub mod workload;

pub use admission::{AdmissionPolicy, OverloadParams, RequestOutcome, RetryPolicy};
pub use forkjoin::ForkJoin;
pub use memcached::Memcached;
pub use pipeline::{SpinPipeline, WaitFlavor};
pub use skeletons::{BenchProfile, OversubGroup, Skeleton, Suite, SyncKind};
pub use webserving::WebServing;
pub use workload::{RequestClock, RequestRecord, RequestSink, ThreadSpec, Workload, WorldBuilder};
