//! Synchronization skeletons of the PARSEC 3.0, SPLASH-2, and NPB
//! benchmarks.
//!
//! We cannot run the real suites inside a simulator, but the paper's
//! results depend on each benchmark's *synchronization structure* — what
//! primitive it uses, how often it synchronizes (Figure 3), how its lock
//! count scales, whether it busy-waits — and on its memory behaviour.
//! Each [`BenchProfile`] captures exactly those properties, taken from the
//! paper's descriptions and the well-known structure of the suites, and
//! [`Skeleton`] expands a profile into a strong-scaling workload:
//! the total work is fixed and divided among however many threads the run
//! provisions.

use oversub_hw::{AccessPattern, MemModel};
use oversub_metrics::RunReport;
use oversub_simcore::MICROS;
use oversub_task::{
    Action, CondId, FlagId, LockId, ProgCtx, Program, ScriptProgram, SpinSig, SyncOp,
};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::workload::{RequestClock, RequestSink, ThreadSpec, Workload, WorldBuilder};

/// Benchmark suite of origin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// PARSEC 3.0.
    Parsec,
    /// SPLASH-2.
    Splash2,
    /// NAS Parallel Benchmarks.
    Npb,
}

/// The paper's Figure 1 classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OversubGroup {
    /// Not affected by oversubscription.
    Neutral,
    /// Benefits from oversubscription (TLB effects).
    Benefits,
    /// Suffers under oversubscription.
    Suffers,
}

/// Synchronization structure of a benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncKind {
    /// Embarrassingly parallel: no inter-thread synchronization.
    None,
    /// Iterations guarded by locks from a pool.
    MutexPool {
        /// Locks in the pool (at the reference thread count).
        locks: usize,
        /// Lock operations per iteration grow with the thread count
        /// (fluidanimate's boundary-cell locks).
        scales_with_threads: bool,
    },
    /// Phases separated by pthread barriers.
    Barrier,
    /// Master/worker rounds coordinated by a condition variable.
    CondPhases,
    /// Phases separated by a *custom spin barrier* (flag polling — the
    /// `lu` / `volrend` pattern of Figure 6/14).
    SpinBarrier,
}

/// Static description of one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct BenchProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Figure 1 group.
    pub group: OversubGroup,
    /// Synchronization structure.
    pub sync: SyncKind,
    /// Mean work between synchronizations at the reference thread count
    /// (16), i.e. the Figure 3 interval.
    pub sync_interval_ns: u64,
    /// Synchronization episodes (barrier rounds / iteration count).
    pub phases: usize,
    /// Working set in bytes, divided among threads (strong scaling).
    pub ws_bytes: u64,
    /// Memory pattern of the compute phases, if memory-bound.
    pub mem_pattern: Option<AccessPattern>,
    /// Serial (master-only) work per phase — Amdahl limit for Figure 11.
    pub serial_ns: u64,
    /// Emit a short non-sync tight loop every N phases (BWD FP bait:
    /// convergence tests, delay loops).
    pub tight_loop_every: usize,
    /// The paper's Figure 1 normalized execution time at 32T/8c (vanilla),
    /// used for EXPERIMENTS.md comparisons.
    pub paper_fig1_slowdown: f64,
}

impl BenchProfile {
    /// All 32 benchmarks in the paper's Figure 1 order.
    pub fn all() -> Vec<BenchProfile> {
        use AccessPattern::*;
        use OversubGroup::*;
        use Suite::*;
        let us = MICROS;
        vec![
            // ---- Group 1: unaffected --------------------------------
            BenchProfile {
                name: "blackscholes",
                suite: Parsec,
                group: Neutral,
                sync: SyncKind::Barrier,
                sync_interval_ns: 4000 * us,
                phases: 60,
                ws_bytes: 8 << 20,
                mem_pattern: None,
                serial_ns: 20_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.00,
            },
            BenchProfile {
                name: "canneal",
                suite: Parsec,
                group: Neutral,
                sync: SyncKind::MutexPool {
                    locks: 64,
                    scales_with_threads: false,
                },
                sync_interval_ns: 1500 * us,
                phases: 180,
                ws_bytes: 64 << 20,
                mem_pattern: Some(RndRead),
                serial_ns: 0,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.97,
            },
            BenchProfile {
                name: "ferret",
                suite: Parsec,
                group: Neutral,
                sync: SyncKind::CondPhases,
                sync_interval_ns: 2000 * us,
                phases: 120,
                ws_bytes: 16 << 20,
                mem_pattern: None,
                serial_ns: 40_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.02,
            },
            BenchProfile {
                name: "swaptions",
                suite: Parsec,
                group: Neutral,
                sync: SyncKind::None,
                sync_interval_ns: 5000 * us,
                phases: 64,
                ws_bytes: 2 << 20,
                mem_pattern: None,
                serial_ns: 0,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.00,
            },
            BenchProfile {
                name: "vips",
                suite: Parsec,
                group: Neutral,
                sync: SyncKind::CondPhases,
                sync_interval_ns: 1800 * us,
                phases: 140,
                ws_bytes: 32 << 20,
                mem_pattern: None,
                serial_ns: 30_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.01,
            },
            BenchProfile {
                name: "barnes",
                suite: Splash2,
                group: Neutral,
                sync: SyncKind::Barrier,
                sync_interval_ns: 2500 * us,
                phases: 90,
                ws_bytes: 16 << 20,
                mem_pattern: None,
                serial_ns: 50_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.98,
            },
            BenchProfile {
                name: "fft",
                suite: Splash2,
                group: Neutral,
                sync: SyncKind::Barrier,
                sync_interval_ns: 3000 * us,
                phases: 48,
                ws_bytes: 48 << 20,
                mem_pattern: Some(RndRead),
                serial_ns: 20_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.93,
            },
            BenchProfile {
                name: "fmm",
                suite: Splash2,
                group: Neutral,
                sync: SyncKind::Barrier,
                sync_interval_ns: 2200 * us,
                phases: 80,
                ws_bytes: 24 << 20,
                mem_pattern: None,
                serial_ns: 40_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.97,
            },
            BenchProfile {
                name: "radiosity",
                suite: Splash2,
                group: Neutral,
                sync: SyncKind::MutexPool {
                    locks: 32,
                    scales_with_threads: false,
                },
                sync_interval_ns: 1600 * us,
                phases: 200,
                ws_bytes: 12 << 20,
                mem_pattern: None,
                serial_ns: 0,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.95,
            },
            BenchProfile {
                name: "raytrace",
                suite: Splash2,
                group: Neutral,
                sync: SyncKind::MutexPool {
                    locks: 16,
                    scales_with_threads: false,
                },
                sync_interval_ns: 2800 * us,
                phases: 110,
                ws_bytes: 20 << 20,
                mem_pattern: None,
                serial_ns: 0,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.98,
            },
            BenchProfile {
                name: "ep",
                suite: Npb,
                group: Neutral,
                sync: SyncKind::None,
                sync_interval_ns: 8000 * us,
                phases: 48,
                ws_bytes: 1 << 20,
                mem_pattern: None,
                serial_ns: 0,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.85,
            },
            // ---- Group 2: benefits ----------------------------------
            BenchProfile {
                name: "bodytrack",
                suite: Parsec,
                group: Benefits,
                sync: SyncKind::CondPhases,
                sync_interval_ns: 900 * us,
                phases: 240,
                ws_bytes: 96 << 20,
                mem_pattern: Some(RndRead),
                serial_ns: 60_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.92,
            },
            BenchProfile {
                name: "facesim",
                suite: Parsec,
                group: Benefits,
                sync: SyncKind::CondPhases,
                sync_interval_ns: 160 * us,
                phases: 900,
                ws_bytes: 128 << 20,
                mem_pattern: Some(RndRmw),
                serial_ns: 18_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.88,
            },
            BenchProfile {
                name: "x264",
                suite: Parsec,
                group: Benefits,
                sync: SyncKind::CondPhases,
                sync_interval_ns: 700 * us,
                phases: 300,
                ws_bytes: 64 << 20,
                mem_pattern: Some(RndRead),
                serial_ns: 25_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.93,
            },
            BenchProfile {
                name: "water",
                suite: Splash2,
                group: Benefits,
                sync: SyncKind::Barrier,
                sync_interval_ns: 1100 * us,
                phases: 160,
                ws_bytes: 80 << 20,
                mem_pattern: Some(RndRmw),
                serial_ns: 15_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.94,
            },
            BenchProfile {
                name: "dedup",
                suite: Parsec,
                group: Benefits,
                sync: SyncKind::CondPhases,
                sync_interval_ns: 800 * us,
                phases: 220,
                ws_bytes: 72 << 20,
                mem_pattern: Some(RndRead),
                serial_ns: 40_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 0.91,
            },
            // ---- Group 3: suffers -----------------------------------
            BenchProfile {
                name: "fluidanimate",
                suite: Parsec,
                group: Suffers,
                sync: SyncKind::MutexPool {
                    locks: 40,
                    scales_with_threads: true,
                },
                sync_interval_ns: 250 * us,
                phases: 1200,
                ws_bytes: 48 << 20,
                mem_pattern: None,
                serial_ns: 0,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.35,
            },
            BenchProfile {
                name: "freqmine",
                suite: Parsec,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 350 * us,
                phases: 700,
                ws_bytes: 40 << 20,
                mem_pattern: Some(RndRead),
                serial_ns: 25_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.21,
            },
            BenchProfile {
                name: "streamcluster",
                suite: Parsec,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 170 * us,
                phases: 1600,
                ws_bytes: 24 << 20,
                mem_pattern: None,
                serial_ns: 12_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.62,
            },
            BenchProfile {
                name: "cholesky",
                suite: Splash2,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 300 * us,
                phases: 650,
                ws_bytes: 32 << 20,
                mem_pattern: None,
                serial_ns: 18_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.40,
            },
            BenchProfile {
                name: "lu_cb",
                suite: Splash2,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 280 * us,
                phases: 800,
                ws_bytes: 32 << 20,
                mem_pattern: None,
                serial_ns: 15_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.48,
            },
            BenchProfile {
                name: "ocean",
                suite: Splash2,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 220 * us,
                phases: 1100,
                ws_bytes: 56 << 20,
                mem_pattern: None,
                serial_ns: 14_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.52,
            },
            BenchProfile {
                name: "radix",
                suite: Splash2,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 380 * us,
                phases: 520,
                ws_bytes: 64 << 20,
                mem_pattern: None,
                serial_ns: 10_000,
                tight_loop_every: 0,
                paper_fig1_slowdown: 1.28,
            },
            BenchProfile {
                name: "volrend",
                suite: Splash2,
                group: Suffers,
                sync: SyncKind::SpinBarrier,
                sync_interval_ns: 240 * us,
                phases: 850,
                ws_bytes: 16 << 20,
                mem_pattern: None,
                serial_ns: 10_000,
                tight_loop_every: 19,
                paper_fig1_slowdown: 25.66,
            },
            BenchProfile {
                name: "is",
                suite: Npb,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 420 * us,
                phases: 420,
                ws_bytes: 64 << 20,
                mem_pattern: None,
                serial_ns: 8_000,
                tight_loop_every: 23,
                paper_fig1_slowdown: 1.30,
            },
            BenchProfile {
                name: "cg",
                suite: Npb,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 180 * us,
                phases: 1500,
                ws_bytes: 96 << 20,
                mem_pattern: None,
                serial_ns: 9_000,
                tight_loop_every: 31,
                paper_fig1_slowdown: 1.72,
            },
            BenchProfile {
                name: "mg",
                suite: Npb,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 260 * us,
                phases: 950,
                ws_bytes: 112 << 20,
                mem_pattern: None,
                serial_ns: 11_000,
                tight_loop_every: 29,
                paper_fig1_slowdown: 1.50,
            },
            BenchProfile {
                name: "ft",
                suite: Npb,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 340 * us,
                phases: 600,
                ws_bytes: 128 << 20,
                mem_pattern: None,
                serial_ns: 12_000,
                tight_loop_every: 37,
                paper_fig1_slowdown: 1.42,
            },
            BenchProfile {
                name: "sp",
                suite: Npb,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 200 * us,
                phases: 1300,
                ws_bytes: 72 << 20,
                mem_pattern: None,
                serial_ns: 10_000,
                tight_loop_every: 41,
                paper_fig1_slowdown: 1.60,
            },
            BenchProfile {
                name: "bt",
                suite: Npb,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 240 * us,
                phases: 1000,
                ws_bytes: 80 << 20,
                mem_pattern: None,
                serial_ns: 10_000,
                tight_loop_every: 43,
                paper_fig1_slowdown: 1.52,
            },
            BenchProfile {
                name: "ua",
                suite: Npb,
                group: Suffers,
                sync: SyncKind::Barrier,
                sync_interval_ns: 130 * us,
                phases: 2100,
                ws_bytes: 64 << 20,
                mem_pattern: None,
                serial_ns: 9_000,
                tight_loop_every: 47,
                paper_fig1_slowdown: 2.78,
            },
            BenchProfile {
                name: "lu",
                suite: Npb,
                group: Suffers,
                sync: SyncKind::SpinBarrier,
                sync_interval_ns: 210 * us,
                phases: 1100,
                ws_bytes: 48 << 20,
                mem_pattern: None,
                serial_ns: 8_000,
                tight_loop_every: 17,
                paper_fig1_slowdown: 9.95,
            },
        ]
    }

    /// Look up a benchmark by name.
    pub fn by_name(name: &str) -> Option<BenchProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// The 13 blocking-synchronization benchmarks of Figure 9 / Table 1.
    pub fn fig9_set() -> Vec<BenchProfile> {
        [
            "fluidanimate",
            "freqmine",
            "streamcluster",
            "lu_cb",
            "ocean",
            "radix",
            "is",
            "cg",
            "mg",
            "ft",
            "sp",
            "bt",
            "ua",
        ]
        .iter()
        .map(|n| Self::by_name(n).expect("known benchmark"))
        .collect()
    }

    /// Reference thread count the sync interval is quoted at.
    pub const REF_THREADS: usize = 16;

    /// Per-thread work between synchronizations when run with `threads`
    /// (strong scaling: the same total work is divided further).
    pub fn work_per_phase_ns(&self, threads: usize) -> u64 {
        (self.sync_interval_ns * Self::REF_THREADS as u64) / threads.max(1) as u64
    }
}

/// A runnable skeleton: a profile plus a thread count.
#[derive(Clone)]
pub struct Skeleton {
    /// Profile to expand.
    pub profile: BenchProfile,
    /// Threads to provision.
    pub threads: usize,
    /// Scale factor on `phases` (harnesses shrink runs for quick tests).
    pub phase_scale: f64,
    /// Replace the native futex barrier with a barrier built over a mutex
    /// of this kind (the §4.4 SHFLLOCK comparison substitutes the lock
    /// library under the pthreads primitives).
    pub barrier_mutex: Option<oversub_locks::MutexKind>,
    /// Perturbation salt: folded into the per-thread work jitter so
    /// different seeds exercise different interleavings.
    pub salt: u64,
    /// Tail sink for the request-shaped variants (CondPhases rounds).
    sink: RequestSink,
}

// Manual Debug over the configuration fields only (the sink is per-run
// state, reset on every build) — this keeps the workload cache-keyable.
impl std::fmt::Debug for Skeleton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Skeleton")
            .field("profile", &self.profile)
            .field("threads", &self.threads)
            .field("phase_scale", &self.phase_scale)
            .field("barrier_mutex", &self.barrier_mutex)
            .field("salt", &self.salt)
            .finish()
    }
}

impl Skeleton {
    /// Full-size skeleton.
    pub fn new(profile: BenchProfile, threads: usize) -> Self {
        Skeleton::scaled(profile, threads, 1.0)
    }

    /// Reduced-phase skeleton (for fast harness runs; relative results are
    /// unchanged because every arm shrinks identically).
    pub fn scaled(profile: BenchProfile, threads: usize, phase_scale: f64) -> Self {
        Skeleton {
            profile,
            threads,
            phase_scale,
            barrier_mutex: None,
            salt: 0,
            sink: RequestSink::new(),
        }
    }

    /// Fold a seed into the jitter (different interleavings per seed).
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Substitute the synchronization library: barriers are rebuilt over a
    /// mutex of `kind` plus a condition variable (Figure 15's arms).
    pub fn with_barrier_mutex(mut self, kind: oversub_locks::MutexKind) -> Self {
        self.barrier_mutex = Some(kind);
        self
    }

    fn phases(&self) -> usize {
        ((self.profile.phases as f64 * self.phase_scale) as usize).max(4)
    }

    /// Work for one phase of one thread: a compute part and, for
    /// memory-bound benchmarks, a memory-traversal part.
    ///
    /// Real programs are a blend: [`MEM_SHARE`] of each phase is memory
    /// traversal sized in *elements* (strong scaling — the total element
    /// count per phase is fixed, so splitting the working set across more
    /// threads can genuinely speed phases up via the paper's TLB effect),
    /// the rest is plain compute sized in time.
    fn work_actions(&self, ns: u64) -> (Action, Option<Action>) {
        /// Fraction of a memory-bound phase spent in the traversal.
        const MEM_SHARE: f64 = 0.45;
        match self.profile.mem_pattern {
            Some(pattern) => {
                let sub_ws = (self.profile.ws_bytes / self.threads as u64).max(4096);
                // Calibrate the per-phase element total at the reference
                // thread count, then divide among this run's threads.
                let mem = MemModel::default();
                let ref_ws = (self.profile.ws_bytes / BenchProfile::REF_THREADS as u64).max(4096);
                let per_ref = mem.per_elem(pattern, ref_ws).0.max(0.25);
                let total_elems = (self.profile.sync_interval_ns as f64
                    * MEM_SHARE
                    * BenchProfile::REF_THREADS as f64
                    / per_ref) as u64;
                let elems = (total_elems / self.threads as u64).max(64);
                let compute = Action::Compute {
                    ns: ((ns as f64) * (1.0 - MEM_SHARE)) as u64,
                };
                (
                    compute,
                    Some(Action::MemTraversal {
                        pattern,
                        ws_bytes: sub_ws,
                        elems,
                    }),
                )
            }
            None => (Action::Compute { ns }, None),
        }
    }
}

impl Workload for Skeleton {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }

    fn collect(&self, report: &mut RunReport) {
        // Only the condvar-phased skeletons are request-shaped (each
        // worker wake-up is a request); the others leave the report's
        // latency block empty-but-present.
        if self.profile.sync == SyncKind::CondPhases {
            self.sink.collect(report);
        }
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        // Per-run sink (see `RequestSink::reset`).
        self.sink.reset();
        self.sink.configure(w.overload);
        let threads = self.threads;
        let phases = self.phases();
        let work = self.profile.work_per_phase_ns(threads);
        match self.profile.sync {
            SyncKind::None => {
                for i in 0..threads {
                    let mut script = Vec::with_capacity(phases * 2);
                    for k in 0..phases {
                        let jitter =
                            (i as u64 * 61 + k as u64 * 7 + self.salt * 131) % (work / 8 + 1);
                        let (compute, mem) = self.work_actions(work + jitter);
                        script.push(compute);
                        if let Some(m) = mem {
                            script.push(m);
                        }
                    }
                    w.spawn(
                        ThreadSpec::new(Box::new(ScriptProgram::once(script)))
                            .with_footprint(self.profile.ws_bytes / threads as u64),
                    );
                }
            }
            SyncKind::Barrier if self.barrier_mutex.is_some() => {
                // Library-substituted barrier: a counter + condvar over a
                // mutex of the requested kind (how pthread_barrier is
                // built, with the low-level lock swapped out).
                let kind = self.barrier_mutex.expect("guarded");
                let m = w.mutex_of(kind);
                let cv = w.condvar();
                let state: Rc<Cell<(usize, u64)>> = Rc::new(Cell::new((0, 0)));
                for i in 0..threads {
                    let jitter = |k: usize| (i as u64 * 61 + k as u64 * 7) % (work / 6 + 1);
                    let _ = jitter;
                    let work_i = work + (i as u64 * 61 + self.salt * 131) % (work / 6 + 1);
                    w.spawn(
                        ThreadSpec::new(Box::new(LockBarrierThread {
                            m,
                            cv,
                            state: state.clone(),
                            parties: threads,
                            phases,
                            round: 0,
                            target_gen: 0,
                            work_ns: work_i,
                            serial_ns: if i == 0 { self.profile.serial_ns } else { 0 },
                            st: 0,
                        }))
                        .with_footprint(self.profile.ws_bytes / threads as u64),
                    );
                }
            }
            SyncKind::Barrier => {
                let b = w.barrier(threads);
                for i in 0..threads {
                    let mut script = Vec::with_capacity(phases * 2);
                    for k in 0..phases {
                        let jitter =
                            (i as u64 * 61 + k as u64 * 7 + self.salt * 131) % (work / 6 + 1);
                        let (compute, mem) = self.work_actions(work + jitter);
                        script.push(compute);
                        if let Some(m) = mem {
                            script.push(m);
                        }
                        if i == 0 && self.profile.serial_ns > 0 {
                            script.push(Action::Compute {
                                ns: self.profile.serial_ns,
                            });
                        }
                        if self.profile.tight_loop_every > 0
                            && i == 0
                            && k % self.profile.tight_loop_every == 0
                        {
                            script.push(Action::TightLoop {
                                ns: 3_000,
                                sig: SpinSig::bare_loop(900 + i as u64),
                            });
                        }
                        script.push(Action::Sync(SyncOp::BarrierWait(b)));
                    }
                    w.spawn(
                        ThreadSpec::new(Box::new(ScriptProgram::once(script)))
                            .with_footprint(self.profile.ws_bytes / threads as u64),
                    );
                }
            }
            SyncKind::MutexPool {
                locks,
                scales_with_threads,
            } => {
                let nlocks = if scales_with_threads {
                    locks * threads / BenchProfile::REF_THREADS.min(threads)
                } else {
                    locks
                };
                let lock_ids: Vec<_> = (0..nlocks.max(1)).map(|_| w.mutex()).collect();
                let ops_per_iter = if scales_with_threads {
                    1 + threads / 8
                } else {
                    1
                };
                for i in 0..threads {
                    let mut script = Vec::with_capacity(phases * 4);
                    for k in 0..phases {
                        let jitter =
                            (i as u64 * 61 + k as u64 * 7 + self.salt * 131) % (work / 6 + 1);
                        let (compute, mem) = self.work_actions(work + jitter);
                        script.push(compute);
                        if let Some(m) = mem {
                            script.push(m);
                        }
                        for op in 0..ops_per_iter {
                            let l = lock_ids[(i * 31 + k * 7 + op * 13) % lock_ids.len()];
                            script.push(Action::Sync(SyncOp::MutexLock(l)));
                            script.push(Action::Compute { ns: 3_000 });
                            script.push(Action::Sync(SyncOp::MutexUnlock(l)));
                        }
                    }
                    w.spawn(
                        ThreadSpec::new(Box::new(ScriptProgram::once(script)))
                            .with_footprint(self.profile.ws_bytes / threads as u64),
                    );
                }
            }
            SyncKind::CondPhases => {
                // Master/worker rounds: workers wait on a condition
                // variable guarded by a generation predicate (standard
                // lost-signal-safe usage); the master computes its serial
                // part, bumps the generation, and broadcasts.
                let m = w.mutex();
                let cv = w.condvar();
                let gen: Rc<Cell<usize>> = Rc::new(Cell::new(0));
                // Broadcast timestamps: each worker wake-up is a request
                // whose arrival is the broadcast that released its round.
                let bcasts: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
                // Per-round shed flags: the master offers each round's
                // worker wake-ups to admission at broadcast time; a shed
                // round still broadcasts (the protocol stays intact) but
                // workers skip its payload.
                let shed_rounds: Rc<RefCell<Vec<bool>>> = Rc::new(RefCell::new(Vec::new()));
                for i in 0..threads {
                    let work_i = work + (i as u64 * 61 + self.salt * 131) % (work / 6 + 1);
                    let (action, mem_action) = self.work_actions(work_i);
                    if i == 0 {
                        w.spawn(
                            ThreadSpec::new(Box::new(CondMaster {
                                m,
                                cv,
                                gen: gen.clone(),
                                rounds: phases,
                                round: 0,
                                work: action,
                                mem: mem_action,
                                serial_ns: self.profile.serial_ns.max(1),
                                state: 0,
                                bcasts: bcasts.clone(),
                                shed_rounds: shed_rounds.clone(),
                                sink: self.sink.clone(),
                                workers: (threads - 1) as u64,
                            }))
                            .with_footprint(self.profile.ws_bytes / threads as u64),
                        );
                    } else {
                        w.spawn(
                            ThreadSpec::new(Box::new(CondWorker {
                                m,
                                cv,
                                gen: gen.clone(),
                                rounds: phases,
                                round: 0,
                                work: action,
                                mem: mem_action,
                                state: 0,
                                bcasts: bcasts.clone(),
                                sink: self.sink.clone(),
                                woken: None,
                                shed_rounds: shed_rounds.clone(),
                                skip_work: false,
                            }))
                            .with_footprint(self.profile.ws_bytes / threads as u64),
                        );
                    }
                }
            }
            SyncKind::SpinBarrier => {
                // Custom sense-reversing spin barrier over flag words:
                // workers publish arrival on their own flag and poll the
                // master's "go" flag; the master polls every worker flag,
                // then releases the round. All waiting is busy-waiting in
                // user code — invisible to futex, visible to BWD.
                let go = w.flag(0);
                let done: Vec<FlagId> = (0..threads - 1).map(|_| w.flag(0)).collect();
                let work_ns = work;
                let phases_n = phases;
                for i in 0..threads {
                    if i == 0 {
                        w.spawn(ThreadSpec::new(Box::new(SpinMaster {
                            round: 0,
                            phases: phases_n,
                            work_ns,
                            serial_ns: self.profile.serial_ns,
                            done: done.clone(),
                            next_wait: 0,
                            go,
                            state: 0,
                            tight_loop_every: self.profile.tight_loop_every,
                        })));
                    } else {
                        w.spawn(ThreadSpec::new(Box::new(SpinWorker {
                            round: 0,
                            phases: phases_n,
                            work_ns: work_ns
                                + (i as u64 * 61 + self.salt * 131) % (work_ns / 6 + 1),
                            mine: done[i - 1],
                            go,
                            state: 0,
                            salt: i as u64,
                        })));
                    }
                }
            }
        }
    }
}

/// One participant of a barrier rebuilt over an arbitrary mutex kind:
/// `lock; arrived += 1; last ? (gen += 1, broadcast) : wait-until-gen;
/// unlock` — the classic centralized barrier, with the mutex kind deciding
/// how contended waiters behave (park, spin-then-park, shuffle).
struct LockBarrierThread {
    m: LockId,
    cv: CondId,
    /// (arrived, generation).
    state: Rc<Cell<(usize, u64)>>,
    parties: usize,
    phases: usize,
    round: usize,
    target_gen: u64,
    work_ns: u64,
    serial_ns: u64,
    st: u8,
}

impl Program for LockBarrierThread {
    fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
        if self.round >= self.phases {
            return Action::Exit;
        }
        match self.st {
            0 => {
                self.st = 1;
                Action::Compute {
                    ns: self.work_ns + self.serial_ns,
                }
            }
            1 => {
                self.st = 2;
                Action::Sync(SyncOp::MutexLock(self.m))
            }
            2 => {
                // Holding the mutex: register arrival.
                let (arrived, gen) = self.state.get();
                if arrived + 1 == self.parties {
                    self.state.set((0, gen + 1));
                    self.st = 3;
                    Action::Sync(SyncOp::CondBroadcast(self.cv))
                } else {
                    self.state.set((arrived + 1, gen));
                    self.target_gen = gen + 1;
                    self.st = 4;
                    Action::Sync(SyncOp::CondWait {
                        cond: self.cv,
                        mutex: self.m,
                    })
                }
            }
            3 => {
                // Broadcast done: release and start the next round.
                self.st = 0;
                self.round += 1;
                Action::Sync(SyncOp::MutexUnlock(self.m))
            }
            _ => {
                // Woken with the mutex held: re-check the generation.
                let (_, gen) = self.state.get();
                if gen >= self.target_gen {
                    self.st = 0;
                    self.round += 1;
                    Action::Sync(SyncOp::MutexUnlock(self.m))
                } else {
                    Action::Sync(SyncOp::CondWait {
                        cond: self.cv,
                        mutex: self.m,
                    })
                }
            }
        }
    }

    fn name(&self) -> &str {
        "lock-barrier"
    }
}

/// Master of the condvar master/worker rounds: computes, bumps the shared
/// generation under the mutex, broadcasts.
struct CondMaster {
    m: LockId,
    cv: CondId,
    gen: Rc<Cell<usize>>,
    rounds: usize,
    round: usize,
    work: Action,
    mem: Option<Action>,
    serial_ns: u64,
    state: u8,
    /// Broadcast timestamps, one per round (shared with the workers).
    bcasts: Rc<RefCell<Vec<u64>>>,
    /// Per-round shed flags (shared with the workers).
    shed_rounds: Rc<RefCell<Vec<bool>>>,
    sink: RequestSink,
    /// Wake-up requests offered to admission per round (= worker count).
    workers: u64,
}

impl Program for CondMaster {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.round >= self.rounds {
            return Action::Exit;
        }
        match self.state {
            0 => {
                self.state = 1;
                self.work
            }
            1 => {
                self.state = 2;
                self.mem.unwrap_or(Action::Compute { ns: 1 })
            }
            2 => {
                self.state = 3;
                Action::Compute { ns: self.serial_ns }
            }
            3 => {
                self.state = 4;
                Action::Sync(SyncOp::MutexLock(self.m))
            }
            4 => {
                // Holding the mutex: advance the generation, broadcast.
                // The broadcast instant is the arrival stamp of every
                // worker wake-up request this round releases. The round's
                // wake-ups are offered to admission as a batch; a shed
                // round still broadcasts so the protocol stays intact.
                let now = ctx.now.as_nanos();
                let admitted = self.sink.try_admit(now, self.workers);
                self.shed_rounds.borrow_mut().push(!admitted);
                self.bcasts.borrow_mut().push(now);
                self.gen.set(self.round + 1);
                self.state = 5;
                Action::Sync(SyncOp::CondBroadcast(self.cv))
            }
            _ => {
                self.state = 0;
                self.round += 1;
                Action::Sync(SyncOp::MutexUnlock(self.m))
            }
        }
    }

    fn name(&self) -> &str {
        "cond-master"
    }
}

/// Worker of the condvar rounds: waits until the generation passes its
/// round (predicate re-checked after every wake — no lost signals).
struct CondWorker {
    m: LockId,
    cv: CondId,
    gen: Rc<Cell<usize>>,
    rounds: usize,
    round: usize,
    work: Action,
    mem: Option<Action>,
    state: u8,
    /// Broadcast timestamps (shared with the master).
    bcasts: Rc<RefCell<Vec<u64>>>,
    sink: RequestSink,
    /// Wake-up request in flight: arrival = the releasing broadcast,
    /// started = when this worker observed it; completed once the worker
    /// has released the mutex and resumed.
    woken: Option<RequestClock>,
    /// Per-round shed flags (written by the master at broadcast).
    shed_rounds: Rc<RefCell<Vec<bool>>>,
    /// The round just entered was shed: skip its work payload.
    skip_work: bool,
}

impl Program for CondWorker {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.round >= self.rounds {
            if let Some(clock) = self.woken.take() {
                self.sink.complete(clock, ctx.now.as_nanos());
            }
            return Action::Exit;
        }
        match self.state {
            0 => {
                // Back from the unlock: the wake-up request completes as
                // the worker resumes useful work.
                if let Some(clock) = self.woken.take() {
                    self.sink.complete(clock, ctx.now.as_nanos());
                }
                self.state = 1;
                if self.skip_work {
                    return Action::Compute { ns: 1 };
                }
                self.work
            }
            1 => {
                self.state = 2;
                if self.skip_work {
                    return Action::Compute { ns: 1 };
                }
                self.mem.unwrap_or(Action::Compute { ns: 1 })
            }
            2 => {
                self.state = 3;
                Action::Sync(SyncOp::MutexLock(self.m))
            }
            _ => {
                // Mutex held here (CondWait re-acquires on return).
                if self.gen.get() > self.round {
                    let now = ctx.now.as_nanos();
                    let shed = self
                        .shed_rounds
                        .borrow()
                        .get(self.round)
                        .copied()
                        .unwrap_or(false);
                    self.skip_work = shed;
                    if shed {
                        // Shed round: no wake-up request is dispatched —
                        // the worker cycles without a payload.
                        self.woken = None;
                    } else {
                        let arrival = self.bcasts.borrow().get(self.round).copied().unwrap_or(now);
                        let mut clock = RequestClock::arrive(arrival);
                        clock.started(now);
                        self.sink.note_started(now.saturating_sub(arrival), now);
                        self.woken = Some(clock);
                    }
                    self.state = 0;
                    self.round += 1;
                    Action::Sync(SyncOp::MutexUnlock(self.m))
                } else {
                    Action::Sync(SyncOp::CondWait {
                        cond: self.cv,
                        mutex: self.m,
                    })
                }
            }
        }
    }

    fn name(&self) -> &str {
        "cond-worker"
    }
}

/// Master of the custom spin barrier.
struct SpinMaster {
    round: usize,
    phases: usize,
    work_ns: u64,
    serial_ns: u64,
    done: Vec<FlagId>,
    next_wait: usize,
    go: FlagId,
    state: u8,
    tight_loop_every: usize,
}

impl Program for SpinMaster {
    fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
        if self.round >= self.phases {
            return Action::Exit;
        }
        match self.state {
            0 => {
                self.state = 1;
                Action::Compute {
                    ns: self.work_ns + self.serial_ns,
                }
            }
            1 => {
                // Poll each worker's arrival flag in turn.
                if self.next_wait < self.done.len() {
                    let f = self.done[self.next_wait];
                    self.next_wait += 1;
                    Action::Sync(SyncOp::FlagSpinWhileEq {
                        flag: f,
                        while_eq: self.round as u64,
                        sig: SpinSig::bare_loop(7_000 + self.next_wait as u64),
                    })
                } else {
                    self.next_wait = 0;
                    self.state = 2;
                    // Release the round.
                    Action::Sync(SyncOp::FlagSet {
                        flag: self.go,
                        value: self.round as u64 + 1,
                    })
                }
            }
            _ => {
                self.state = 0;
                self.round += 1;
                if self.tight_loop_every > 0 && self.round.is_multiple_of(self.tight_loop_every) {
                    Action::TightLoop {
                        ns: 3_000,
                        sig: SpinSig::bare_loop(8_000),
                    }
                } else {
                    Action::Compute { ns: 1 }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "spin-barrier-master"
    }
}

/// Worker of the custom spin barrier.
struct SpinWorker {
    round: usize,
    phases: usize,
    work_ns: u64,
    mine: FlagId,
    go: FlagId,
    state: u8,
    salt: u64,
}

impl Program for SpinWorker {
    fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
        if self.round >= self.phases {
            return Action::Exit;
        }
        match self.state {
            0 => {
                self.state = 1;
                Action::Compute { ns: self.work_ns }
            }
            1 => {
                self.state = 2;
                // Publish arrival.
                Action::Sync(SyncOp::FlagSet {
                    flag: self.mine,
                    value: self.round as u64 + 1,
                })
            }
            _ => {
                self.state = 0;
                let r = self.round;
                self.round += 1;
                // Busy-wait for the release.
                Action::Sync(SyncOp::FlagSpinWhileEq {
                    flag: self.go,
                    while_eq: r as u64,
                    sig: SpinSig::bare_loop(6_000 + self.salt),
                })
            }
        }
    }

    fn name(&self) -> &str {
        "spin-barrier-worker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_32_benchmarks_present_with_unique_names() {
        let all = BenchProfile::all();
        assert_eq!(all.len(), 32);
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn fig9_set_is_the_papers_13() {
        let set = BenchProfile::fig9_set();
        assert_eq!(set.len(), 13);
        assert!(set.iter().all(|p| p.group == OversubGroup::Suffers));
        // Spin benchmarks are excluded from the blocking study.
        assert!(set.iter().all(|p| p.sync != SyncKind::SpinBarrier));
    }

    #[test]
    fn groups_partition_as_in_figure1() {
        let all = BenchProfile::all();
        let neutral = all
            .iter()
            .filter(|p| p.group == OversubGroup::Neutral)
            .count();
        let benefits = all
            .iter()
            .filter(|p| p.group == OversubGroup::Benefits)
            .count();
        let suffers = all
            .iter()
            .filter(|p| p.group == OversubGroup::Suffers)
            .count();
        assert_eq!(neutral + benefits + suffers, 32);
        assert!(suffers >= 13, "group 3 contains the Figure 9 set");
        // The custom-spin benchmarks carry the extreme slowdowns.
        for name in ["lu", "volrend"] {
            let p = BenchProfile::by_name(name).unwrap();
            assert_eq!(p.sync, SyncKind::SpinBarrier);
            assert!(p.paper_fig1_slowdown > 5.0);
        }
    }

    #[test]
    fn strong_scaling_divides_work() {
        let p = BenchProfile::by_name("cg").unwrap();
        let w16 = p.work_per_phase_ns(16);
        let w32 = p.work_per_phase_ns(32);
        assert_eq!(w16, p.sync_interval_ns);
        assert_eq!(w32 * 2, w16);
    }

    #[test]
    fn sync_intervals_match_figure3_shape() {
        // Most benchmarks synchronize less often than every 1000 µs is
        // FALSE for the suffering group; the paper's histogram has most
        // mass below 1000 µs with facesim at 160 µs.
        let all = BenchProfile::all();
        let min = all.iter().map(|p| p.sync_interval_ns).min().unwrap();
        assert!(min >= 100_000, "no interval below 100 µs");
        let below_ms = all
            .iter()
            .filter(|p| p.sync_interval_ns <= 1_000_000)
            .count();
        assert!(below_ms >= 15, "most of groups 2-3 sync within 1 ms");
    }
}
