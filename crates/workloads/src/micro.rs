//! Microbenchmarks from the paper's §2 measurement study and §4 evaluation.

use oversub_hw::AccessPattern;
use oversub_locks::SpinPolicy;
use oversub_metrics::RunReport;
use oversub_task::{
    Action, CondId, FnProgram, LockId, ProgCtx, Program, ScriptProgram, SpinSig, SyncOp,
};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::workload::{RequestClock, RequestSink, ThreadSpec, Workload, WorldBuilder};

/// Figure 2(a): pure computation with a fixed total amount of work split
/// across threads; each thread yields after every 750 µs of work (the
/// minimum time slice), forcing context switches without any blocking.
#[derive(Clone, Copy, Debug)]
pub struct ComputeYield {
    /// Number of threads splitting the fixed work.
    pub threads: usize,
    /// Total work across all threads (strong scaling).
    pub total_work_ns: u64,
    /// Work between voluntary switches (the paper uses 750 µs).
    pub quantum_ns: u64,
    /// Add a shared-cacheline atomic RMW per quantum (Figure 2b).
    pub atomic: bool,
}

impl ComputeYield {
    /// Figure 2(a) configuration.
    pub fn fig2a(threads: usize, total_work_ns: u64) -> Self {
        ComputeYield {
            threads,
            total_work_ns,
            quantum_ns: 750_000,
            atomic: false,
        }
    }

    /// Figure 2(b) configuration (adds the `__sync_fetch_and_add`).
    pub fn fig2b(threads: usize, total_work_ns: u64) -> Self {
        ComputeYield {
            atomic: true,
            ..Self::fig2a(threads, total_work_ns)
        }
    }
}

impl Workload for ComputeYield {
    fn name(&self) -> &str {
        if self.atomic {
            "compute-yield-atomic"
        } else {
            "compute-yield"
        }
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        let per_thread = self.total_work_ns / self.threads as u64;
        let quanta = (per_thread / self.quantum_ns).max(1);
        for _ in 0..self.threads {
            let mut script = Vec::new();
            for _ in 0..quanta {
                script.push(Action::Compute {
                    ns: self.quantum_ns,
                });
                if self.atomic {
                    script.push(Action::AtomicRmw { line: 0x1000 });
                }
                script.push(Action::Yield);
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }
}

/// Figure 4: the array-walk microbenchmark measuring the indirect cost of
/// context switching. `threads` threads each repeatedly traverse a private
/// sub-array (`total_ws / threads` bytes) and yield after each traversal;
/// all threads share one core. The single-thread run is the serial
/// baseline.
#[derive(Clone, Copy, Debug)]
pub struct ArrayWalk {
    /// Number of threads sharing the core (paper uses 1 vs 2).
    pub threads: usize,
    /// Total array size in bytes (split across threads).
    pub total_ws: u64,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Number of full-array passes (each thread does `passes` traversals
    /// of its sub-array).
    pub passes: u64,
}

impl Workload for ArrayWalk {
    fn name(&self) -> &str {
        "array-walk"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        let sub_ws = (self.total_ws / self.threads as u64).max(64);
        let elems = sub_ws / 8; // doubles, as in the paper
        for _ in 0..self.threads {
            let mut script = Vec::new();
            for _ in 0..self.passes {
                script.push(Action::MemTraversal {
                    pattern: self.pattern,
                    ws_bytes: sub_ws,
                    elems,
                });
                script.push(Action::Yield);
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))).with_footprint(sub_ws));
        }
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }
}

/// Which pthreads primitive the Figure 10 stress test exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Primitive {
    /// `pthread_mutex`: serial lock/unlock pairs.
    Mutex,
    /// `pthread_cond`: N-1 waiters, one broadcaster per round.
    Cond,
    /// `pthread_barrier`: all threads meet each round.
    Barrier,
}

impl Primitive {
    /// Figure 10 label.
    pub fn label(self) -> &'static str {
        match self {
            Primitive::Mutex => "pthread_mutex",
            Primitive::Cond => "pthread_cond",
            Primitive::Barrier => "pthread_barrier",
        }
    }
}

/// Figure 10: threads repeatedly exercising one blocking primitive
/// (10 000 rounds in the paper; configurable here).
///
/// The `Cond` variant is request-shaped: each broadcast is an arrival and
/// each waiter's post-wake work a service, so it feeds the exact
/// per-request latency digest like the server workloads do.
#[derive(Clone)]
pub struct PrimitiveStress {
    /// Thread count.
    pub threads: usize,
    /// Rounds of the primitive.
    pub rounds: usize,
    /// Which primitive.
    pub primitive: Primitive,
    /// Small compute between operations.
    pub work_ns: u64,
    sink: RequestSink,
}

// Manual Debug over the configuration fields only (the sink is per-run
// state, reset on every build) — this keeps the workload cache-keyable.
impl std::fmt::Debug for PrimitiveStress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrimitiveStress")
            .field("threads", &self.threads)
            .field("rounds", &self.rounds)
            .field("primitive", &self.primitive)
            .field("work_ns", &self.work_ns)
            .finish()
    }
}

impl PrimitiveStress {
    /// A stress test of `primitive` with explicit round count and
    /// inter-operation work.
    pub fn new(threads: usize, rounds: usize, primitive: Primitive, work_ns: u64) -> Self {
        PrimitiveStress {
            threads,
            rounds,
            primitive,
            work_ns,
            sink: RequestSink::new(),
        }
    }

    /// The paper's configuration: 10 000 iterations.
    pub fn paper(threads: usize, primitive: Primitive) -> Self {
        Self::new(threads, 10_000, primitive, 2_000)
    }
}

impl Workload for PrimitiveStress {
    fn name(&self) -> &str {
        self.primitive.label()
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        // Per-run sink (see `RequestSink::reset`). Only the Cond variant
        // records requests; for the others the digest stays empty.
        self.sink.reset();
        match self.primitive {
            Primitive::Mutex => {
                let m = w.mutex();
                for _ in 0..self.threads {
                    let mut script = Vec::new();
                    for _ in 0..self.rounds {
                        script.push(Action::Sync(SyncOp::MutexLock(m)));
                        script.push(Action::Compute { ns: self.work_ns });
                        script.push(Action::Sync(SyncOp::MutexUnlock(m)));
                        script.push(Action::Compute { ns: self.work_ns });
                    }
                    w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
                }
            }
            Primitive::Barrier => {
                let b = w.barrier(self.threads);
                for i in 0..self.threads {
                    let mut script = Vec::new();
                    for k in 0..self.rounds {
                        let jitter = (i as u64 * 131 + k as u64 * 17) % (self.work_ns / 2 + 1);
                        script.push(Action::Compute {
                            ns: self.work_ns + jitter,
                        });
                        script.push(Action::Sync(SyncOp::BarrierWait(b)));
                    }
                    w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
                }
            }
            Primitive::Cond => {
                // Generation-guarded broadcast rounds (predicate re-checked
                // after every wake, as correct condvar usage demands).
                let m = w.mutex();
                let cv = w.condvar();
                let gen: Rc<Cell<usize>> = Rc::new(Cell::new(0));
                // Per-round broadcast stamps: round r's wake "arrived"
                // when the master published generation r+1.
                let bcasts: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
                for _ in 0..self.threads.saturating_sub(1) {
                    w.spawn(ThreadSpec::new(Box::new(CondStressWaiter {
                        m,
                        cv,
                        gen: gen.clone(),
                        bcasts: bcasts.clone(),
                        sink: self.sink.clone(),
                        woken: None,
                        pending: None,
                        rounds: self.rounds,
                        round: 0,
                        work_ns: self.work_ns,
                        st: 0,
                    })));
                }
                w.spawn(ThreadSpec::new(Box::new(CondStressMaster {
                    m,
                    cv,
                    gen,
                    bcasts,
                    rounds: self.rounds,
                    round: 0,
                    work_ns: self.work_ns * 4,
                    st: 0,
                })));
            }
        }
    }

    fn collect(&self, report: &mut RunReport) {
        if self.primitive == Primitive::Cond {
            self.sink.collect(report);
        }
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }
}

struct CondStressMaster {
    m: LockId,
    cv: CondId,
    gen: Rc<Cell<usize>>,
    bcasts: Rc<RefCell<Vec<u64>>>,
    rounds: usize,
    round: usize,
    work_ns: u64,
    st: u8,
}

impl Program for CondStressMaster {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.round >= self.rounds {
            return Action::Exit;
        }
        match self.st {
            0 => {
                self.st = 1;
                Action::Compute { ns: self.work_ns }
            }
            1 => {
                self.st = 2;
                Action::Sync(SyncOp::MutexLock(self.m))
            }
            2 => {
                self.gen.set(self.round + 1);
                // Request arrival: the waiters' round-`round` wakeup is
                // published now.
                self.bcasts.borrow_mut().push(ctx.now.as_nanos());
                self.st = 3;
                Action::Sync(SyncOp::CondBroadcast(self.cv))
            }
            _ => {
                self.st = 0;
                self.round += 1;
                Action::Sync(SyncOp::MutexUnlock(self.m))
            }
        }
    }

    fn name(&self) -> &str {
        "cond-stress-master"
    }
}

struct CondStressWaiter {
    m: LockId,
    cv: CondId,
    gen: Rc<Cell<usize>>,
    bcasts: Rc<RefCell<Vec<u64>>>,
    sink: RequestSink,
    /// Lifecycle stamped at wakeup (st 1), carried across the unlock.
    woken: Option<RequestClock>,
    /// Lifecycle of the round whose post-wake work is computing;
    /// completed at the next step.
    pending: Option<RequestClock>,
    rounds: usize,
    round: usize,
    work_ns: u64,
    st: u8,
}

impl Program for CondStressWaiter {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if let Some(clock) = self.pending.take() {
            // The previous round's post-wake work just finished.
            self.sink.complete(clock, ctx.now.as_nanos());
        }
        if self.round >= self.rounds {
            return Action::Exit;
        }
        match self.st {
            0 => {
                self.st = 1;
                Action::Sync(SyncOp::MutexLock(self.m))
            }
            1 => {
                if self.gen.get() > self.round {
                    // Woken for this round: it arrived at the master's
                    // broadcast and service starts now.
                    let now = ctx.now.as_nanos();
                    let arrival = self.bcasts.borrow().get(self.round).copied().unwrap_or(now);
                    let mut clock = RequestClock::arrive(arrival);
                    clock.started(now);
                    self.woken = Some(clock);
                    self.st = 2;
                    Action::Sync(SyncOp::MutexUnlock(self.m))
                } else {
                    Action::Sync(SyncOp::CondWait {
                        cond: self.cv,
                        mutex: self.m,
                    })
                }
            }
            _ => {
                self.st = 0;
                self.round += 1;
                // The post-wake work runs after this return; the round
                // completes when the *next* call finds `pending` set.
                self.pending = self.woken.take();
                Action::Compute { ns: self.work_ns }
            }
        }
    }

    fn name(&self) -> &str {
        "cond-stress-waiter"
    }
}

/// Figure 13 / stress harness for the ten spinlock algorithms: all threads
/// contend one spinlock of the given policy. Strong scaling: `iters` is
/// the *total* number of pipeline stages, divided among threads.
#[derive(Clone, Copy, Debug)]
pub struct SpinlockStress {
    /// Thread count.
    pub threads: usize,
    /// Total lock acquisitions across all threads (strong scaling).
    pub iters: usize,
    /// Critical-section length.
    pub cs_ns: u64,
    /// Work outside the lock.
    pub out_ns: u64,
    /// Which algorithm.
    pub policy: SpinPolicy,
}

impl SpinlockStress {
    /// The Figure 13 shape: stages are tightly coupled — critical sections
    /// long enough that lock-holder preemption is frequent under
    /// oversubscription, which is what makes every algorithm collapse.
    pub fn fig13(threads: usize, policy: SpinPolicy, iters: usize) -> Self {
        SpinlockStress {
            threads,
            iters,
            cs_ns: 400_000,
            out_ns: 400_000,
            policy,
        }
    }
}

impl Workload for SpinlockStress {
    fn name(&self) -> &str {
        self.policy.name
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        let l = w.spinlock(self.policy);
        let per_thread = (self.iters / self.threads).max(1);
        for i in 0..self.threads {
            let mut script = Vec::new();
            for k in 0..per_thread {
                script.push(Action::Sync(SyncOp::SpinAcquire(l)));
                script.push(Action::Compute { ns: self.cs_ns });
                script.push(Action::Sync(SyncOp::SpinRelease(l)));
                let jitter = (i as u64 * 251 + k as u64 * 31) % (self.out_ns / 2 + 1);
                script.push(Action::Compute {
                    ns: self.out_ns + jitter,
                });
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }
}

/// Table 2's sensitivity probe: on a single core, thread #1 holds a
/// spinlock for long stretches while thread #2 keeps trying to acquire it;
/// every contended attempt is a ground-truth spin episode.
#[derive(Clone, Copy, Debug)]
pub struct TpProbe {
    /// Spinlock algorithm under test.
    pub policy: SpinPolicy,
    /// Number of lock acquisitions attempted by the contender.
    pub tries: usize,
    /// Hold time of the holder per acquisition.
    pub hold_ns: u64,
}

impl TpProbe {
    /// A paper-scale probe (tens of thousands of tries take a while; the
    /// defaults keep unit runs fast and the bench harness scales up).
    pub fn new(policy: SpinPolicy, tries: usize) -> Self {
        TpProbe {
            policy,
            tries,
            hold_ns: 400_000,
        }
    }
}

impl Workload for TpProbe {
    fn name(&self) -> &str {
        "bwd-tp-probe"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        let l = w.spinlock(self.policy);
        // Holder: long critical sections, brief gaps.
        let mut script = Vec::new();
        for _ in 0..self.tries {
            script.push(Action::Sync(SyncOp::SpinAcquire(l)));
            script.push(Action::Compute { ns: self.hold_ns });
            script.push(Action::Sync(SyncOp::SpinRelease(l)));
            script.push(Action::Compute { ns: 2_000 });
        }
        w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        // Contender: short critical sections, immediately retries.
        let mut script = Vec::new();
        for _ in 0..self.tries {
            script.push(Action::Sync(SyncOp::SpinAcquire(l)));
            script.push(Action::Compute { ns: 1_000 });
            script.push(Action::Sync(SyncOp::SpinRelease(l)));
            script.push(Action::Compute { ns: 1_000 });
        }
        w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }
}

/// A deliberate ABBA deadlock: two threads, two mutexes, opposite
/// acquisition order, with a hold window wide enough that both first
/// acquisitions overlap. Run with lockdep enabled
/// (`RunConfig::with_lockdep`) this deterministically produces a
/// `lock-order-inversion` diagnostic (conflicting acquisition orders) and
/// a `deadlock-cycle` diagnostic (the live wait-for cycle) naming both
/// mutexes — the validation workload for the engine's lockdep layer.
pub struct AbbaDeadlock {
    /// Nanoseconds each thread computes while holding its first lock.
    /// Must exceed the lock fast-path cost so the windows overlap.
    pub hold_ns: u64,
}

impl Default for AbbaDeadlock {
    fn default() -> Self {
        AbbaDeadlock { hold_ns: 50_000 }
    }
}

impl Workload for AbbaDeadlock {
    fn name(&self) -> &str {
        "abba-deadlock"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        let a = w.mutex();
        let b = w.mutex();
        for (first, second) in [(a, b), (b, a)] {
            let script = vec![
                Action::Sync(SyncOp::MutexLock(first)),
                Action::Compute { ns: self.hold_ns },
                Action::Sync(SyncOp::MutexLock(second)),
                Action::Compute { ns: 1_000 },
                Action::Sync(SyncOp::MutexUnlock(second)),
                Action::Sync(SyncOp::MutexUnlock(first)),
                Action::Exit,
            ];
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
    }
}

/// A deliberate data race: the race-detector sibling of [`AbbaDeadlock`].
///
/// One thread busy-waits on a *plain* (non-atomic) flag word while
/// another computes briefly and then stores into it — the classic
/// unsynchronized done-flag spin. The plain flag carries no
/// release/acquire edge, so the store and the spin loads are unordered by
/// happens-before: run with `RunConfig::with_race_detector()` this
/// deterministically produces exactly one `data-race` diagnostic naming
/// both access sites. Mechanically the run still completes (the store
/// does release the spinner), modeling a race that "works" at runtime —
/// as most do, which is why a detector is needed at all.
pub struct RacyFlagSpin {
    /// Nanoseconds the writer computes before its unsynchronized store.
    pub writer_delay_ns: u64,
}

impl Default for RacyFlagSpin {
    fn default() -> Self {
        RacyFlagSpin {
            writer_delay_ns: 20_000,
        }
    }
}

/// A [`ScriptProgram`] with a distinguishing name, so race diagnostics
/// can label each access site with the thread's role.
fn named_script(name: &'static str, script: Vec<Action>) -> Box<dyn Program> {
    let mut pos = 0usize;
    Box::new(FnProgram::new(name, move |_ctx| {
        if pos >= script.len() {
            return Action::Exit;
        }
        let a = script[pos];
        pos += 1;
        a
    }))
}

impl Workload for RacyFlagSpin {
    fn name(&self) -> &str {
        "racy-flag-spin"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        let done = w.flag_plain(0);
        let spinner = vec![
            Action::Sync(SyncOp::FlagSpinWhileEq {
                flag: done,
                while_eq: 0,
                sig: SpinSig::bare_loop(0x9A),
            }),
            Action::Compute { ns: 1_000 },
            Action::Exit,
        ];
        w.spawn(ThreadSpec::new(named_script("racy-spinner", spinner)));
        let writer = vec![
            Action::Compute {
                ns: self.writer_delay_ns,
            },
            Action::Sync(SyncOp::FlagSet {
                flag: done,
                value: 1,
            }),
            Action::Exit,
        ];
        w.spawn(ThreadSpec::new(named_script("racy-writer", writer)));
    }
}
