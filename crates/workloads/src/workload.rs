//! The workload interface: how benchmarks plug into the simulation engine,
//! plus the request-lifecycle API ([`RequestClock`] / [`RequestSink`])
//! every request-shaped workload uses to emit per-request records.

use crate::admission::{AdmissionState, OverloadParams, RequestOutcome};
use oversub_hw::CpuId;
use oversub_ksync::EpollTable;
use oversub_locks::{MutexKind, SpinPolicy, SyncRegistry};
use oversub_metrics::{GoodputStats, LatencyDigest, LatencyHist, RunReport};
use oversub_task::{BarrierId, CondId, EpollFd, FlagId, LockId, Program, SemId};
use std::cell::RefCell;
use std::rc::Rc;

/// Arrival and start stamps for one in-flight request.
///
/// The lifecycle is `arrive` (the request enters the system: a client
/// sends it, a pipeline item is produced, a fork-join region opens) →
/// `started` (a worker begins servicing it) → `complete` (the response is
/// done). Latency is measured arrival→completion, so queueing delay — the
/// component oversubscription actually moves — is included; `started`
/// splits it into queueing and service time for diagnosis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestClock {
    arrival_ns: u64,
    start_ns: u64,
    attempt: u32,
}

impl Default for RequestClock {
    fn default() -> Self {
        RequestClock {
            arrival_ns: 0,
            start_ns: 0,
            attempt: 1,
        }
    }
}

impl RequestClock {
    /// Stamp a request's arrival at virtual time `now_ns`. Until
    /// [`RequestClock::started`] is called the start time equals the
    /// arrival (zero queueing).
    pub fn arrive(now_ns: u64) -> Self {
        RequestClock {
            arrival_ns: now_ns,
            start_ns: now_ns,
            attempt: 1,
        }
    }

    /// Tag the clock with its attempt number (1 = the original send).
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt.max(1);
        self
    }

    /// The attempt number (1 = the original send).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Stamp the moment a worker begins servicing the request.
    pub fn started(&mut self, now_ns: u64) {
        self.start_ns = now_ns.max(self.arrival_ns);
    }

    /// The arrival stamp.
    pub fn arrival_ns(&self) -> u64 {
        self.arrival_ns
    }

    /// Close the lifecycle at `now_ns` and produce the record. The outcome
    /// defaults to `Completed`; the sink reclassifies against the run's
    /// deadline.
    pub fn complete(self, now_ns: u64) -> RequestRecord {
        let completion_ns = now_ns.max(self.start_ns);
        RequestRecord {
            arrival_ns: self.arrival_ns,
            start_ns: self.start_ns,
            completion_ns,
            attempt: self.attempt,
            deadline_ns: 0,
            outcome: RequestOutcome::Completed,
        }
    }
}

/// One completed request's lifecycle stamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// When the request entered the system.
    pub arrival_ns: u64,
    /// When a worker began servicing it.
    pub start_ns: u64,
    /// When the response was complete.
    pub completion_ns: u64,
    /// The attempt number of this request (1 = the original send).
    pub attempt: u32,
    /// Deadline in force when the record was sealed (0 = none).
    pub deadline_ns: u64,
    /// How the request left the system.
    pub outcome: RequestOutcome,
}

impl RequestRecord {
    /// End-to-end latency (arrival → completion).
    pub fn latency_ns(&self) -> u64 {
        self.completion_ns - self.arrival_ns
    }

    /// Queueing delay (arrival → service start).
    pub fn queue_ns(&self) -> u64 {
        self.start_ns - self.arrival_ns
    }

    /// Service time (service start → completion).
    pub fn service_ns(&self) -> u64 {
        self.completion_ns - self.start_ns
    }

    /// Classify the record against `deadline_ns` (0 = no deadline, always
    /// `Completed`), stamping both the deadline and the outcome.
    pub fn classified(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = deadline_ns;
        self.outcome = if deadline_ns == 0 || self.latency_ns() <= deadline_ns {
            RequestOutcome::Completed
        } else {
            RequestOutcome::DeadlineExceeded
        };
        self
    }
}

struct SinkInner {
    hist: LatencyHist,
    digest: LatencyDigest,
    ops: u64,
    params: OverloadParams,
    adm: AdmissionState,
    good_digest: LatencyDigest,
    offered: u64,
    completed_in_deadline: u64,
    deadline_exceeded: u64,
    shed: u64,
    retries: u64,
}

/// Shared per-run sink for completed request records.
///
/// Cloned into every program of a workload (cheap `Rc`); the workload's
/// `collect` folds it into the report — the legacy bucketed histogram and
/// the exact digest side by side. Workloads must call
/// [`RequestSink::reset`] at the top of `build` so a reused workload value
/// (sweeps run build→run→collect per arm on the same instance) never
/// leaks samples across runs.
#[derive(Clone, Default)]
pub struct RequestSink {
    inner: Rc<RefCell<SinkInner>>,
}

impl Default for SinkInner {
    fn default() -> Self {
        SinkInner {
            hist: LatencyHist::new(),
            digest: LatencyDigest::new(),
            ops: 0,
            params: OverloadParams::disabled(),
            adm: AdmissionState::default(),
            good_digest: LatencyDigest::new(),
            offered: 0,
            completed_in_deadline: 0,
            deadline_exceeded: 0,
            shed: 0,
            retries: 0,
        }
    }
}

impl RequestSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all samples (call at the top of `Workload::build`). Keeps the
    /// overload parameters set by [`RequestSink::configure`].
    pub fn reset(&self) {
        let params = self.inner.borrow().params;
        *self.inner.borrow_mut() = SinkInner {
            params,
            ..SinkInner::default()
        };
    }

    /// Install the run's overload parameters (the engine calls this via
    /// `WorldBuilder` before `Workload::build` populates the world).
    pub fn configure(&self, params: OverloadParams) {
        self.inner.borrow_mut().params = params;
    }

    /// The overload parameters in force for this run.
    pub fn overload(&self) -> OverloadParams {
        self.inner.borrow().params
    }

    /// Offer `n` requests to the admission policy at virtual time `now_ns`.
    /// Counts them as offered; on admission they join the standing queue,
    /// on rejection they are counted as shed. Always admits (and counts
    /// nothing) when the overload control plane is disabled.
    pub fn try_admit(&self, _now_ns: u64, n: u64) -> bool {
        let mut g = self.inner.borrow_mut();
        if !g.params.enabled() {
            return true;
        }
        g.offered += n;
        let policy = g.params.admission;
        if g.adm.admit(&policy) {
            g.adm.in_queue += n;
            true
        } else {
            g.shed += n;
            false
        }
    }

    /// Note that a worker started servicing an admitted request whose
    /// queueing delay was `queue_ns`. Feeds the CoDel controller and
    /// shrinks the standing queue. No-op when overload is disabled.
    pub fn note_started(&self, queue_ns: u64, now_ns: u64) {
        let mut g = self.inner.borrow_mut();
        if !g.params.enabled() {
            return;
        }
        let policy = g.params.admission;
        g.adm.observe(&policy, queue_ns, now_ns);
        g.adm.in_queue = g.adm.in_queue.saturating_sub(1);
    }

    /// Count a client retry re-injection.
    pub fn record_retry(&self) {
        self.inner.borrow_mut().retries += 1;
    }

    /// Record a completed request, classifying it against the run deadline.
    pub fn push(&self, rec: RequestRecord) {
        let mut g = self.inner.borrow_mut();
        g.hist.record(rec.latency_ns());
        g.digest.record(rec.latency_ns());
        g.ops += 1;
        if g.params.enabled() {
            let rec = rec.classified(g.params.deadline_ns);
            match rec.outcome {
                RequestOutcome::Completed => {
                    g.completed_in_deadline += 1;
                    let lat = rec.latency_ns();
                    g.good_digest.record(lat);
                }
                _ => g.deadline_exceeded += 1,
            }
        }
    }

    /// Close `clock` at `now_ns` and record the request.
    pub fn complete(&self, clock: RequestClock, now_ns: u64) {
        self.push(clock.complete(now_ns));
    }

    /// Fold the collected data into a report: the bucketed histogram, the
    /// canonicalized exact digest, the op count, and — when the overload
    /// control plane is on — the outcome-partitioned goodput section.
    /// Admitted requests still in flight at the end of the run surface as
    /// `abandoned` (offered minus every terminal outcome).
    pub fn collect(&self, report: &mut RunReport) {
        let mut g = self.inner.borrow_mut();
        g.digest.canonicalize();
        report.latency = g.hist.clone();
        report.latency_exact = g.digest.clone();
        report.completed_ops = g.ops;
        let mut gp = GoodputStats::default();
        if g.params.enabled() {
            g.good_digest.canonicalize();
            gp.offered = g.offered;
            gp.completed = g.completed_in_deadline;
            gp.deadline_exceeded = g.deadline_exceeded;
            gp.shed = g.shed;
            gp.abandoned = g
                .offered
                .saturating_sub(g.completed_in_deadline + g.deadline_exceeded + g.shed);
            gp.retries = g.retries;
            gp.latency = g.good_digest.clone();
            debug_assert!(gp.balanced(), "goodput accounting out of balance: {gp:?}");
        }
        report.goodput = gp;
    }
}

/// A thread to launch: its program and optional placement constraints.
pub struct ThreadSpec {
    /// The driving program.
    pub program: Box<dyn Program>,
    /// Preferred initial CPU (defaults to round-robin).
    pub initial_cpu: Option<CpuId>,
    /// Hard pin (overrides the run-level `pinned` flag).
    pub pinned: Option<CpuId>,
    /// Initial cache footprint estimate in bytes.
    pub footprint: u64,
    /// Allowed-CPU bitmask (cpuset). Defaults to all CPUs.
    pub allowed: u64,
    /// CFS load weight (1024 = nice 0; 512 ~ nice +3; 2048 ~ nice -3).
    pub weight: u32,
}

impl ThreadSpec {
    /// A plain thread running `program`.
    pub fn new(program: Box<dyn Program>) -> Self {
        ThreadSpec {
            program,
            initial_cpu: None,
            pinned: None,
            footprint: 0,
            allowed: u64::MAX,
            weight: 1024,
        }
    }

    /// Set the CFS load weight (1024 = nice 0).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Restrict the thread to CPUs `[lo, hi)` (cpuset).
    pub fn allowed_range(mut self, lo: usize, hi: usize) -> Self {
        let mut mask = 0u64;
        for c in lo..hi.min(64) {
            mask |= 1 << c;
        }
        self.allowed = mask;
        if self.initial_cpu.is_none() {
            self.initial_cpu = Some(CpuId(lo));
        }
        self
    }

    /// Set the cache footprint estimate.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint = bytes;
        self
    }

    /// Pin to a CPU.
    pub fn pinned_to(mut self, cpu: CpuId) -> Self {
        self.pinned = Some(cpu);
        self.initial_cpu = Some(cpu);
        self
    }
}

/// Handed to [`Workload::build`]: create sync objects and threads here.
pub struct WorldBuilder {
    /// Synchronization objects of the simulated process.
    pub sync: SyncRegistry,
    /// The epoll layer (create instances for server workloads).
    pub epoll: EpollTable,
    /// Threads to launch.
    pub threads: Vec<ThreadSpec>,
    /// Number of online cores the run starts with.
    pub cores: usize,
    /// The run's overload control plane (deadlines, shedding, retries).
    /// Workloads install this into their request sink during `build`.
    pub overload: OverloadParams,
}

impl WorldBuilder {
    /// Create a builder for a machine with `cores` online CPUs.
    pub fn new(cores: usize, epoll: EpollTable) -> Self {
        WorldBuilder {
            sync: SyncRegistry::new(),
            epoll,
            threads: Vec::new(),
            cores,
            overload: OverloadParams::disabled(),
        }
    }

    /// Add a thread; returns its index (== its `TaskId`).
    pub fn spawn(&mut self, spec: ThreadSpec) -> usize {
        self.threads.push(spec);
        self.threads.len() - 1
    }

    /// Shorthand: create a pthread mutex.
    pub fn mutex(&mut self) -> LockId {
        self.sync.create_mutex(MutexKind::Pthread)
    }

    /// Shorthand: create a mutex of a specific kind.
    pub fn mutex_of(&mut self, kind: MutexKind) -> LockId {
        self.sync.create_mutex(kind)
    }

    /// Shorthand: create a condition variable.
    pub fn condvar(&mut self) -> CondId {
        self.sync.create_condvar()
    }

    /// Shorthand: create a barrier.
    pub fn barrier(&mut self, parties: usize) -> BarrierId {
        self.sync.create_barrier(parties)
    }

    /// Shorthand: create a semaphore.
    pub fn semaphore(&mut self, initial: i64) -> SemId {
        self.sync.create_sem(initial)
    }

    /// Shorthand: create a spinlock.
    pub fn spinlock(&mut self, policy: SpinPolicy) -> LockId {
        self.sync.create_spinlock(policy)
    }

    /// Shorthand: create a flag word (release/acquire semantics).
    pub fn flag(&mut self, initial: u64) -> FlagId {
        self.sync.create_flag(initial)
    }

    /// Shorthand: create a *plain* (non-atomic) flag word. Unsynchronized
    /// concurrent access to it is a data race the detector reports.
    pub fn flag_plain(&mut self, initial: u64) -> FlagId {
        self.sync.create_flag_plain(initial)
    }

    /// Shorthand: create an epoll instance.
    pub fn epoll_instance(&mut self) -> EpollFd {
        self.epoll.create()
    }
}

/// A benchmark: builds its world, then harvests workload-specific results
/// into the report after the run.
pub trait Workload {
    /// Canonical name (used as figure/table row labels).
    fn name(&self) -> &str;

    /// Create synchronization objects and threads.
    fn build(&mut self, world: &mut WorldBuilder);

    /// Harvest workload-level results (latency histograms, op counts).
    fn collect(&self, _report: &mut RunReport) {}

    /// A canonical content key describing this workload's *configuration*
    /// (not its built world), or `None` if the workload cannot be keyed.
    ///
    /// Used by the sweep run cache (`oversub::sweep`): two workloads with
    /// equal keys, run under equal `RunConfig`s, must produce identical
    /// reports. Plain-data workloads return their `Debug` form; workloads
    /// holding runtime state (shared sinks, interior mutability) keep the
    /// `None` default and are simply never cached.
    fn cache_key(&self) -> Option<String> {
        None
    }

    /// Lower bound on a single request's service time, if the workload can
    /// state one. Used to warn about deadlines no request could ever meet.
    fn min_service_ns(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oversub_ksync::FutexParams;
    use oversub_task::{Action, FnProgram};

    #[test]
    fn builder_allocates_objects() {
        let mut w = WorldBuilder::new(4, EpollTable::new(FutexParams::default()));
        let m = w.mutex();
        let b = w.barrier(4);
        let f = w.flag(0);
        let ep = w.epoll_instance();
        assert_eq!(m.0, 0);
        assert_eq!(b.0, 0);
        assert_eq!(f.0, 0);
        assert_eq!(ep.0, 0);
        let idx = w.spawn(ThreadSpec::new(Box::new(FnProgram::new("t", |_| {
            Action::Exit
        }))));
        assert_eq!(idx, 0);
        assert_eq!(w.threads.len(), 1);
    }

    #[test]
    fn request_clock_lifecycle() {
        let mut c = RequestClock::arrive(1_000);
        assert_eq!(c.arrival_ns(), 1_000);
        c.started(4_000);
        let rec = c.complete(9_000);
        assert_eq!(rec.queue_ns(), 3_000);
        assert_eq!(rec.service_ns(), 5_000);
        assert_eq!(rec.latency_ns(), 8_000);
        // Stamps never run backwards even if callers hand in a stale now.
        let mut c = RequestClock::arrive(5_000);
        c.started(2_000);
        let rec = c.complete(1_000);
        assert_eq!(rec.latency_ns(), 0);
        assert_eq!(rec.queue_ns(), 0);
    }

    #[test]
    fn request_sink_records_and_resets() {
        let sink = RequestSink::new();
        let clone = sink.clone();
        clone.complete(RequestClock::arrive(0), 5_000);
        sink.complete(RequestClock::arrive(1_000), 2_000);
        let mut r = RunReport::default();
        sink.collect(&mut r);
        assert_eq!(r.completed_ops, 2);
        assert_eq!(r.latency_exact.count(), 2);
        assert_eq!(r.latency_exact.p50(), 1_000);
        assert_eq!(r.latency_exact.max(), 5_000);
        assert_eq!(r.latency.count(), 2);
        // reset() drops everything (the per-run-build contract).
        sink.reset();
        let mut r = RunReport::default();
        sink.collect(&mut r);
        assert_eq!(r.completed_ops, 0);
        assert!(r.latency_exact.is_empty());
    }

    #[test]
    fn sink_partitions_outcomes_against_deadline() {
        use crate::admission::{AdmissionPolicy, OverloadParams};
        let sink = RequestSink::new();
        sink.configure(
            OverloadParams::disabled()
                .with_deadline_ns(1_000)
                .with_admission(AdmissionPolicy::QueueCap(2)),
        );
        sink.reset();
        // Three offered: two admitted, one shed by the queue cap.
        assert!(sink.try_admit(0, 1));
        assert!(sink.try_admit(0, 1));
        assert!(!sink.try_admit(0, 1));
        sink.note_started(100, 100);
        sink.complete(RequestClock::arrive(0), 500); // within deadline
        sink.note_started(2_000, 2_000);
        sink.complete(RequestClock::arrive(0), 2_500); // past deadline
        let mut r = RunReport::default();
        sink.collect(&mut r);
        assert_eq!(r.completed_ops, 2); // legacy count covers all completions
        assert_eq!(r.goodput.offered, 3);
        assert_eq!(r.goodput.completed, 1);
        assert_eq!(r.goodput.deadline_exceeded, 1);
        assert_eq!(r.goodput.shed, 1);
        assert_eq!(r.goodput.abandoned, 0);
        assert!(r.goodput.balanced());
        assert_eq!(r.goodput.latency.count(), 1);
        assert_eq!(r.goodput.latency.max(), 500);
        // reset() keeps the configuration but drops the samples.
        sink.reset();
        assert!(sink.overload().enabled());
        let mut r = RunReport::default();
        sink.collect(&mut r);
        assert_eq!(r.goodput.offered, 0);
    }

    #[test]
    fn disabled_sink_emits_empty_goodput() {
        let sink = RequestSink::new();
        assert!(sink.try_admit(0, 1));
        sink.complete(RequestClock::arrive(0), 5_000);
        let mut r = RunReport::default();
        sink.collect(&mut r);
        assert_eq!(r.completed_ops, 1);
        assert!(r.goodput.is_empty());
    }

    #[test]
    fn thread_spec_builders() {
        let s = ThreadSpec::new(Box::new(FnProgram::new("t", |_| Action::Exit)))
            .with_footprint(1 << 20)
            .pinned_to(CpuId(3));
        assert_eq!(s.footprint, 1 << 20);
        assert_eq!(s.pinned, Some(CpuId(3)));
        assert_eq!(s.initial_cpu, Some(CpuId(3)));
    }
}
