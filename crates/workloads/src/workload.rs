//! The workload interface: how benchmarks plug into the simulation engine.

use oversub_hw::CpuId;
use oversub_ksync::EpollTable;
use oversub_locks::{MutexKind, SpinPolicy, SyncRegistry};
use oversub_metrics::RunReport;
use oversub_task::{BarrierId, CondId, EpollFd, FlagId, LockId, Program, SemId};

/// A thread to launch: its program and optional placement constraints.
pub struct ThreadSpec {
    /// The driving program.
    pub program: Box<dyn Program>,
    /// Preferred initial CPU (defaults to round-robin).
    pub initial_cpu: Option<CpuId>,
    /// Hard pin (overrides the run-level `pinned` flag).
    pub pinned: Option<CpuId>,
    /// Initial cache footprint estimate in bytes.
    pub footprint: u64,
    /// Allowed-CPU bitmask (cpuset). Defaults to all CPUs.
    pub allowed: u64,
    /// CFS load weight (1024 = nice 0; 512 ~ nice +3; 2048 ~ nice -3).
    pub weight: u32,
}

impl ThreadSpec {
    /// A plain thread running `program`.
    pub fn new(program: Box<dyn Program>) -> Self {
        ThreadSpec {
            program,
            initial_cpu: None,
            pinned: None,
            footprint: 0,
            allowed: u64::MAX,
            weight: 1024,
        }
    }

    /// Set the CFS load weight (1024 = nice 0).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Restrict the thread to CPUs `[lo, hi)` (cpuset).
    pub fn allowed_range(mut self, lo: usize, hi: usize) -> Self {
        let mut mask = 0u64;
        for c in lo..hi.min(64) {
            mask |= 1 << c;
        }
        self.allowed = mask;
        if self.initial_cpu.is_none() {
            self.initial_cpu = Some(CpuId(lo));
        }
        self
    }

    /// Set the cache footprint estimate.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint = bytes;
        self
    }

    /// Pin to a CPU.
    pub fn pinned_to(mut self, cpu: CpuId) -> Self {
        self.pinned = Some(cpu);
        self.initial_cpu = Some(cpu);
        self
    }
}

/// Handed to [`Workload::build`]: create sync objects and threads here.
pub struct WorldBuilder {
    /// Synchronization objects of the simulated process.
    pub sync: SyncRegistry,
    /// The epoll layer (create instances for server workloads).
    pub epoll: EpollTable,
    /// Threads to launch.
    pub threads: Vec<ThreadSpec>,
    /// Number of online cores the run starts with.
    pub cores: usize,
}

impl WorldBuilder {
    /// Create a builder for a machine with `cores` online CPUs.
    pub fn new(cores: usize, epoll: EpollTable) -> Self {
        WorldBuilder {
            sync: SyncRegistry::new(),
            epoll,
            threads: Vec::new(),
            cores,
        }
    }

    /// Add a thread; returns its index (== its `TaskId`).
    pub fn spawn(&mut self, spec: ThreadSpec) -> usize {
        self.threads.push(spec);
        self.threads.len() - 1
    }

    /// Shorthand: create a pthread mutex.
    pub fn mutex(&mut self) -> LockId {
        self.sync.create_mutex(MutexKind::Pthread)
    }

    /// Shorthand: create a mutex of a specific kind.
    pub fn mutex_of(&mut self, kind: MutexKind) -> LockId {
        self.sync.create_mutex(kind)
    }

    /// Shorthand: create a condition variable.
    pub fn condvar(&mut self) -> CondId {
        self.sync.create_condvar()
    }

    /// Shorthand: create a barrier.
    pub fn barrier(&mut self, parties: usize) -> BarrierId {
        self.sync.create_barrier(parties)
    }

    /// Shorthand: create a semaphore.
    pub fn semaphore(&mut self, initial: i64) -> SemId {
        self.sync.create_sem(initial)
    }

    /// Shorthand: create a spinlock.
    pub fn spinlock(&mut self, policy: SpinPolicy) -> LockId {
        self.sync.create_spinlock(policy)
    }

    /// Shorthand: create a flag word.
    pub fn flag(&mut self, initial: u64) -> FlagId {
        self.sync.create_flag(initial)
    }

    /// Shorthand: create an epoll instance.
    pub fn epoll_instance(&mut self) -> EpollFd {
        self.epoll.create()
    }
}

/// A benchmark: builds its world, then harvests workload-specific results
/// into the report after the run.
pub trait Workload {
    /// Canonical name (used as figure/table row labels).
    fn name(&self) -> &str;

    /// Create synchronization objects and threads.
    fn build(&mut self, world: &mut WorldBuilder);

    /// Harvest workload-level results (latency histograms, op counts).
    fn collect(&self, _report: &mut RunReport) {}

    /// A canonical content key describing this workload's *configuration*
    /// (not its built world), or `None` if the workload cannot be keyed.
    ///
    /// Used by the sweep run cache (`oversub::sweep`): two workloads with
    /// equal keys, run under equal `RunConfig`s, must produce identical
    /// reports. Plain-data workloads return their `Debug` form; workloads
    /// holding runtime state (shared sinks, interior mutability) keep the
    /// `None` default and are simply never cached.
    fn cache_key(&self) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oversub_ksync::FutexParams;
    use oversub_task::{Action, FnProgram};

    #[test]
    fn builder_allocates_objects() {
        let mut w = WorldBuilder::new(4, EpollTable::new(FutexParams::default()));
        let m = w.mutex();
        let b = w.barrier(4);
        let f = w.flag(0);
        let ep = w.epoll_instance();
        assert_eq!(m.0, 0);
        assert_eq!(b.0, 0);
        assert_eq!(f.0, 0);
        assert_eq!(ep.0, 0);
        let idx = w.spawn(ThreadSpec::new(Box::new(FnProgram::new("t", |_| {
            Action::Exit
        }))));
        assert_eq!(idx, 0);
        assert_eq!(w.threads.len(), 1);
    }

    #[test]
    fn thread_spec_builders() {
        let s = ThreadSpec::new(Box::new(FnProgram::new("t", |_| Action::Exit)))
            .with_footprint(1 << 20)
            .pinned_to(CpuId(3));
        assert_eq!(s.footprint, 1 << 20);
        assert_eq!(s.pinned, Some(CpuId(3)));
        assert_eq!(s.initial_cpu, Some(CpuId(3)));
    }
}
