//! The workload interface: how benchmarks plug into the simulation engine,
//! plus the request-lifecycle API ([`RequestClock`] / [`RequestSink`])
//! every request-shaped workload uses to emit per-request records.

use oversub_hw::CpuId;
use oversub_ksync::EpollTable;
use oversub_locks::{MutexKind, SpinPolicy, SyncRegistry};
use oversub_metrics::{LatencyDigest, LatencyHist, RunReport};
use oversub_task::{BarrierId, CondId, EpollFd, FlagId, LockId, Program, SemId};
use std::cell::RefCell;
use std::rc::Rc;

/// Arrival and start stamps for one in-flight request.
///
/// The lifecycle is `arrive` (the request enters the system: a client
/// sends it, a pipeline item is produced, a fork-join region opens) →
/// `started` (a worker begins servicing it) → `complete` (the response is
/// done). Latency is measured arrival→completion, so queueing delay — the
/// component oversubscription actually moves — is included; `started`
/// splits it into queueing and service time for diagnosis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestClock {
    arrival_ns: u64,
    start_ns: u64,
}

impl RequestClock {
    /// Stamp a request's arrival at virtual time `now_ns`. Until
    /// [`RequestClock::started`] is called the start time equals the
    /// arrival (zero queueing).
    pub fn arrive(now_ns: u64) -> Self {
        RequestClock {
            arrival_ns: now_ns,
            start_ns: now_ns,
        }
    }

    /// Stamp the moment a worker begins servicing the request.
    pub fn started(&mut self, now_ns: u64) {
        self.start_ns = now_ns.max(self.arrival_ns);
    }

    /// The arrival stamp.
    pub fn arrival_ns(&self) -> u64 {
        self.arrival_ns
    }

    /// Close the lifecycle at `now_ns` and produce the record.
    pub fn complete(self, now_ns: u64) -> RequestRecord {
        let completion_ns = now_ns.max(self.start_ns);
        RequestRecord {
            arrival_ns: self.arrival_ns,
            start_ns: self.start_ns,
            completion_ns,
        }
    }
}

/// One completed request's lifecycle stamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// When the request entered the system.
    pub arrival_ns: u64,
    /// When a worker began servicing it.
    pub start_ns: u64,
    /// When the response was complete.
    pub completion_ns: u64,
}

impl RequestRecord {
    /// End-to-end latency (arrival → completion).
    pub fn latency_ns(&self) -> u64 {
        self.completion_ns - self.arrival_ns
    }

    /// Queueing delay (arrival → service start).
    pub fn queue_ns(&self) -> u64 {
        self.start_ns - self.arrival_ns
    }

    /// Service time (service start → completion).
    pub fn service_ns(&self) -> u64 {
        self.completion_ns - self.start_ns
    }
}

struct SinkInner {
    hist: LatencyHist,
    digest: LatencyDigest,
    ops: u64,
}

/// Shared per-run sink for completed request records.
///
/// Cloned into every program of a workload (cheap `Rc`); the workload's
/// `collect` folds it into the report — the legacy bucketed histogram and
/// the exact digest side by side. Workloads must call
/// [`RequestSink::reset`] at the top of `build` so a reused workload value
/// (sweeps run build→run→collect per arm on the same instance) never
/// leaks samples across runs.
#[derive(Clone, Default)]
pub struct RequestSink {
    inner: Rc<RefCell<SinkInner>>,
}

impl Default for SinkInner {
    fn default() -> Self {
        SinkInner {
            hist: LatencyHist::new(),
            digest: LatencyDigest::new(),
            ops: 0,
        }
    }
}

impl RequestSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all samples (call at the top of `Workload::build`).
    pub fn reset(&self) {
        *self.inner.borrow_mut() = SinkInner::default();
    }

    /// Record a completed request.
    pub fn push(&self, rec: RequestRecord) {
        let mut g = self.inner.borrow_mut();
        g.hist.record(rec.latency_ns());
        g.digest.record(rec.latency_ns());
        g.ops += 1;
    }

    /// Close `clock` at `now_ns` and record the request.
    pub fn complete(&self, clock: RequestClock, now_ns: u64) {
        self.push(clock.complete(now_ns));
    }

    /// Fold the collected data into a report: the bucketed histogram, the
    /// canonicalized exact digest, and the op count.
    pub fn collect(&self, report: &mut RunReport) {
        let mut g = self.inner.borrow_mut();
        g.digest.canonicalize();
        report.latency = g.hist.clone();
        report.latency_exact = g.digest.clone();
        report.completed_ops = g.ops;
    }
}

/// A thread to launch: its program and optional placement constraints.
pub struct ThreadSpec {
    /// The driving program.
    pub program: Box<dyn Program>,
    /// Preferred initial CPU (defaults to round-robin).
    pub initial_cpu: Option<CpuId>,
    /// Hard pin (overrides the run-level `pinned` flag).
    pub pinned: Option<CpuId>,
    /// Initial cache footprint estimate in bytes.
    pub footprint: u64,
    /// Allowed-CPU bitmask (cpuset). Defaults to all CPUs.
    pub allowed: u64,
    /// CFS load weight (1024 = nice 0; 512 ~ nice +3; 2048 ~ nice -3).
    pub weight: u32,
}

impl ThreadSpec {
    /// A plain thread running `program`.
    pub fn new(program: Box<dyn Program>) -> Self {
        ThreadSpec {
            program,
            initial_cpu: None,
            pinned: None,
            footprint: 0,
            allowed: u64::MAX,
            weight: 1024,
        }
    }

    /// Set the CFS load weight (1024 = nice 0).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Restrict the thread to CPUs `[lo, hi)` (cpuset).
    pub fn allowed_range(mut self, lo: usize, hi: usize) -> Self {
        let mut mask = 0u64;
        for c in lo..hi.min(64) {
            mask |= 1 << c;
        }
        self.allowed = mask;
        if self.initial_cpu.is_none() {
            self.initial_cpu = Some(CpuId(lo));
        }
        self
    }

    /// Set the cache footprint estimate.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint = bytes;
        self
    }

    /// Pin to a CPU.
    pub fn pinned_to(mut self, cpu: CpuId) -> Self {
        self.pinned = Some(cpu);
        self.initial_cpu = Some(cpu);
        self
    }
}

/// Handed to [`Workload::build`]: create sync objects and threads here.
pub struct WorldBuilder {
    /// Synchronization objects of the simulated process.
    pub sync: SyncRegistry,
    /// The epoll layer (create instances for server workloads).
    pub epoll: EpollTable,
    /// Threads to launch.
    pub threads: Vec<ThreadSpec>,
    /// Number of online cores the run starts with.
    pub cores: usize,
}

impl WorldBuilder {
    /// Create a builder for a machine with `cores` online CPUs.
    pub fn new(cores: usize, epoll: EpollTable) -> Self {
        WorldBuilder {
            sync: SyncRegistry::new(),
            epoll,
            threads: Vec::new(),
            cores,
        }
    }

    /// Add a thread; returns its index (== its `TaskId`).
    pub fn spawn(&mut self, spec: ThreadSpec) -> usize {
        self.threads.push(spec);
        self.threads.len() - 1
    }

    /// Shorthand: create a pthread mutex.
    pub fn mutex(&mut self) -> LockId {
        self.sync.create_mutex(MutexKind::Pthread)
    }

    /// Shorthand: create a mutex of a specific kind.
    pub fn mutex_of(&mut self, kind: MutexKind) -> LockId {
        self.sync.create_mutex(kind)
    }

    /// Shorthand: create a condition variable.
    pub fn condvar(&mut self) -> CondId {
        self.sync.create_condvar()
    }

    /// Shorthand: create a barrier.
    pub fn barrier(&mut self, parties: usize) -> BarrierId {
        self.sync.create_barrier(parties)
    }

    /// Shorthand: create a semaphore.
    pub fn semaphore(&mut self, initial: i64) -> SemId {
        self.sync.create_sem(initial)
    }

    /// Shorthand: create a spinlock.
    pub fn spinlock(&mut self, policy: SpinPolicy) -> LockId {
        self.sync.create_spinlock(policy)
    }

    /// Shorthand: create a flag word.
    pub fn flag(&mut self, initial: u64) -> FlagId {
        self.sync.create_flag(initial)
    }

    /// Shorthand: create an epoll instance.
    pub fn epoll_instance(&mut self) -> EpollFd {
        self.epoll.create()
    }
}

/// A benchmark: builds its world, then harvests workload-specific results
/// into the report after the run.
pub trait Workload {
    /// Canonical name (used as figure/table row labels).
    fn name(&self) -> &str;

    /// Create synchronization objects and threads.
    fn build(&mut self, world: &mut WorldBuilder);

    /// Harvest workload-level results (latency histograms, op counts).
    fn collect(&self, _report: &mut RunReport) {}

    /// A canonical content key describing this workload's *configuration*
    /// (not its built world), or `None` if the workload cannot be keyed.
    ///
    /// Used by the sweep run cache (`oversub::sweep`): two workloads with
    /// equal keys, run under equal `RunConfig`s, must produce identical
    /// reports. Plain-data workloads return their `Debug` form; workloads
    /// holding runtime state (shared sinks, interior mutability) keep the
    /// `None` default and are simply never cached.
    fn cache_key(&self) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oversub_ksync::FutexParams;
    use oversub_task::{Action, FnProgram};

    #[test]
    fn builder_allocates_objects() {
        let mut w = WorldBuilder::new(4, EpollTable::new(FutexParams::default()));
        let m = w.mutex();
        let b = w.barrier(4);
        let f = w.flag(0);
        let ep = w.epoll_instance();
        assert_eq!(m.0, 0);
        assert_eq!(b.0, 0);
        assert_eq!(f.0, 0);
        assert_eq!(ep.0, 0);
        let idx = w.spawn(ThreadSpec::new(Box::new(FnProgram::new("t", |_| {
            Action::Exit
        }))));
        assert_eq!(idx, 0);
        assert_eq!(w.threads.len(), 1);
    }

    #[test]
    fn request_clock_lifecycle() {
        let mut c = RequestClock::arrive(1_000);
        assert_eq!(c.arrival_ns(), 1_000);
        c.started(4_000);
        let rec = c.complete(9_000);
        assert_eq!(rec.queue_ns(), 3_000);
        assert_eq!(rec.service_ns(), 5_000);
        assert_eq!(rec.latency_ns(), 8_000);
        // Stamps never run backwards even if callers hand in a stale now.
        let mut c = RequestClock::arrive(5_000);
        c.started(2_000);
        let rec = c.complete(1_000);
        assert_eq!(rec.latency_ns(), 0);
        assert_eq!(rec.queue_ns(), 0);
    }

    #[test]
    fn request_sink_records_and_resets() {
        let sink = RequestSink::new();
        let clone = sink.clone();
        clone.complete(RequestClock::arrive(0), 5_000);
        sink.complete(RequestClock::arrive(1_000), 2_000);
        let mut r = RunReport::default();
        sink.collect(&mut r);
        assert_eq!(r.completed_ops, 2);
        assert_eq!(r.latency_exact.count(), 2);
        assert_eq!(r.latency_exact.p50(), 1_000);
        assert_eq!(r.latency_exact.max(), 5_000);
        assert_eq!(r.latency.count(), 2);
        // reset() drops everything (the per-run-build contract).
        sink.reset();
        let mut r = RunReport::default();
        sink.collect(&mut r);
        assert_eq!(r.completed_ops, 0);
        assert!(r.latency_exact.is_empty());
    }

    #[test]
    fn thread_spec_builders() {
        let s = ThreadSpec::new(Box::new(FnProgram::new("t", |_| Action::Exit)))
            .with_footprint(1 << 20)
            .pinned_to(CpuId(3));
        assert_eq!(s.footprint, 1 << 20);
        assert_eq!(s.pinned, Some(CpuId(3)));
        assert_eq!(s.initial_cpu, Some(CpuId(3)));
    }
}
