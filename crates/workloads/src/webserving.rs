//! A CloudSuite-style web-serving workload (the paper's §4.2 mentions the
//! CloudSuite web-serving results "confirmed our findings" for
//! loosely-coupled cloud workloads).
//!
//! Structure: `workers` epoll-driven request handlers on the server cores.
//! Each request goes through three phases:
//! 1. parse + session lookup under a session-table mutex,
//! 2. an off-CPU backend call (database/memcached round trip — `IoWait`),
//! 3. response rendering (compute).
//!
//! The backend wait makes every request sleep and wake *twice* (epoll +
//! I/O completion), doubling the pressure on the kernel wakeup path
//! compared to memcached — exactly the kind of service that benefits from
//! VB while barely noticing oversubscription otherwise.

use oversub_hw::CpuId;
use oversub_metrics::RunReport;
use oversub_task::{Action, EpollFd, LockId, ProgCtx, Program, SyncOp};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::admission::{ClientPoll, DoneFlags, OpenLoopOverload};
use crate::workload::{RequestClock, RequestSink, ThreadSpec, Workload, WorldBuilder};

/// CPU cost of a client-side deadline check or shed-error reply.
const CLIENT_CHECK_NS: u64 = 300;

#[derive(Clone, Debug)]
struct Request {
    clock: RequestClock,
    parse_ns: u64,
    backend_ns: u64,
    render_ns: u64,
    session_lock: usize,
    done: Option<(DoneFlags, usize)>,
}

/// The draws defining one request, re-used verbatim on retry.
#[derive(Clone, Copy)]
struct WebPayload {
    parse_ns: u64,
    backend_ns: u64,
    render_ns: u64,
    session_lock: usize,
}

type Queue = Rc<RefCell<VecDeque<Request>>>;

/// Web-serving configuration.
pub struct WebServing {
    /// Worker threads.
    pub workers: usize,
    /// Server cores (workers restricted to CPUs `0..server_cores`).
    pub server_cores: usize,
    /// Client generator threads (one extra CPU each).
    pub clients: usize,
    /// Aggregate offered load, requests/second.
    pub rate_ops: f64,
    /// Session-table locks.
    pub session_locks: usize,
    /// Mean backend (database) round trip.
    pub backend_ns: u64,
    sink: RequestSink,
}

// Manual Debug over the configuration fields only (the sink is per-run
// state, reset on every build) — this keeps the workload cache-keyable.
impl std::fmt::Debug for WebServing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebServing")
            .field("workers", &self.workers)
            .field("server_cores", &self.server_cores)
            .field("clients", &self.clients)
            .field("rate_ops", &self.rate_ops)
            .field("session_locks", &self.session_locks)
            .field("backend_ns", &self.backend_ns)
            .finish()
    }
}

impl WebServing {
    /// A nginx/php-like shape: ~8 µs parse, ~60 µs backend, ~20 µs render.
    pub fn new(workers: usize, server_cores: usize, rate_ops: f64) -> Self {
        WebServing {
            workers,
            server_cores,
            clients: 2,
            rate_ops,
            session_locks: 32,
            backend_ns: 60_000,
            sink: RequestSink::new(),
        }
    }

    /// Total CPUs needed (server + clients).
    pub fn total_cpus(&self) -> usize {
        self.server_cores + self.clients
    }
}

impl Workload for WebServing {
    fn name(&self) -> &str {
        "web-serving"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        // Per-run sink (see `RequestSink::reset`).
        self.sink.reset();
        self.sink.configure(w.overload);
        let locks: Vec<LockId> = (0..self.session_locks).map(|_| w.mutex()).collect();
        let mut eps = Vec::new();
        let mut queues: Vec<Queue> = Vec::new();
        for _ in 0..self.workers {
            eps.push(w.epoll_instance());
            queues.push(Rc::new(RefCell::new(VecDeque::new())));
        }
        for i in 0..self.workers {
            w.spawn(
                ThreadSpec::new(Box::new(WebWorker {
                    ep: eps[i],
                    queue: queues[i].clone(),
                    locks: locks.clone(),
                    sink: self.sink.clone(),
                    st: WState::Waiting,
                }))
                .allowed_range(0, self.server_cores)
                .with_footprint(256 << 10),
            );
        }
        let per_client = self.rate_ops / self.clients as f64;
        for c in 0..self.clients {
            w.spawn(
                ThreadSpec::new(Box::new(WebClient {
                    eps: eps.clone(),
                    queues: queues.clone(),
                    next: c % self.workers,
                    mean_gap_ns: 1e9 / per_client,
                    backend_ns: self.backend_ns,
                    sending: false,
                    sink: self.sink.clone(),
                    ov: w
                        .overload
                        .enabled()
                        .then(|| OpenLoopOverload::new(w.overload)),
                }))
                .pinned_to(CpuId(self.server_cores + c)),
            );
        }
    }

    fn collect(&self, report: &mut RunReport) {
        self.sink.collect(report);
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }

    fn min_service_ns(&self) -> Option<u64> {
        // parse (±30%) + backend (±40%) + render (±30%) at their floors.
        Some((8_000.0 * 0.7 + self.backend_ns as f64 * 0.6 + 20_000.0 * 0.7) as u64)
    }
}

enum WState {
    Waiting,
    Dispatch,
    /// Parsing done; holding the session lock.
    Session {
        req: Request,
    },
    /// Unlock after the session update.
    Unlock {
        req: Request,
    },
    /// Backend round trip.
    Backend {
        req: Request,
    },
    /// Render the response.
    Render {
        req: Request,
    },
    /// Record and loop.
    Record {
        req: Request,
    },
}

struct WebWorker {
    ep: EpollFd,
    queue: Queue,
    locks: Vec<LockId>,
    sink: RequestSink,
    st: WState,
}

impl Program for WebWorker {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        loop {
            match std::mem::replace(&mut self.st, WState::Waiting) {
                WState::Waiting => {
                    self.st = WState::Dispatch;
                    return Action::Sync(SyncOp::EpollWait(self.ep));
                }
                WState::Dispatch => match self.queue.borrow_mut().pop_front() {
                    Some(mut req) => {
                        // Service begins now; the gap since arrival is
                        // queueing (epoll wakeup latency included).
                        let now = ctx.now.as_nanos();
                        req.clock.started(now);
                        self.sink
                            .note_started(now.saturating_sub(req.clock.arrival_ns()), now);
                        let lock = self.locks[req.session_lock % self.locks.len()];
                        self.st = WState::Session { req };
                        return Action::Sync(SyncOp::MutexLock(lock));
                    }
                    None => {
                        self.st = WState::Waiting;
                        continue;
                    }
                },
                WState::Session { req } => {
                    let ns = req.parse_ns;
                    self.st = WState::Unlock { req };
                    return Action::Compute { ns };
                }
                WState::Unlock { req } => {
                    let lock = self.locks[req.session_lock % self.locks.len()];
                    self.st = WState::Backend { req };
                    return Action::Sync(SyncOp::MutexUnlock(lock));
                }
                WState::Backend { req } => {
                    let ns = req.backend_ns;
                    self.st = WState::Render { req };
                    return Action::IoWait { ns };
                }
                WState::Render { req } => {
                    let ns = req.render_ns;
                    self.st = WState::Record { req };
                    return Action::Compute { ns };
                }
                WState::Record { req } => {
                    if let Some((flags, slot)) = &req.done {
                        if let Some(f) = flags.borrow_mut().get_mut(*slot) {
                            *f = true;
                        }
                    }
                    self.sink.complete(req.clock, ctx.now.as_nanos());
                    self.st = WState::Dispatch;
                    continue;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "web-worker"
    }
}

struct WebClient {
    eps: Vec<EpollFd>,
    queues: Vec<Queue>,
    next: usize,
    mean_gap_ns: f64,
    backend_ns: u64,
    sending: bool,
    sink: RequestSink,
    /// Overload machinery; `None` runs the exact pre-overload client.
    ov: Option<OpenLoopOverload<WebPayload>>,
}

impl WebClient {
    fn inject(&mut self, p: WebPayload, attempt: u32, now: u64, ctx: &mut ProgCtx<'_>) -> Action {
        if self.sink.try_admit(now, 1) {
            let ov = self.ov.as_mut().expect("overload client state");
            let mut done = None;
            if ov.params.deadline_ns > 0 && ov.params.retry.is_some() {
                let slot = ov.new_slot();
                ov.schedule_timeout(now, slot, p, attempt);
                done = Some((ov.done_flags(), slot));
            }
            let wi = self.next;
            self.next = (self.next + 1) % self.queues.len();
            self.queues[wi].borrow_mut().push_back(Request {
                clock: RequestClock::arrive(now).with_attempt(attempt),
                parse_ns: p.parse_ns,
                backend_ns: p.backend_ns,
                render_ns: p.render_ns,
                session_lock: p.session_lock,
                done,
            });
            Action::Sync(SyncOp::EpollPost(self.eps[wi], 1))
        } else {
            let ov = self.ov.as_mut().expect("overload client state");
            ov.schedule_retry(now, p, attempt + 1, ctx.rng);
            Action::Compute {
                ns: CLIENT_CHECK_NS,
            }
        }
    }

    fn next_overload(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        let now = ctx.now.as_nanos();
        loop {
            let ov = self.ov.as_mut().expect("overload client state");
            match ov.poll(now) {
                ClientPoll::Sleep(ns) => return Action::IoWait { ns },
                ClientPoll::NeedGap => {
                    let gap = ctx.rng.gen_exp(self.mean_gap_ns).max(500.0) as u64;
                    let ov = self.ov.as_mut().expect("overload client state");
                    ov.set_next_arrival(now + gap);
                }
                ClientPoll::Arrival => {
                    ov.take_arrival();
                    // Same draws, in the same order, as the legacy client.
                    let payload = WebPayload {
                        parse_ns: ctx.rng.jitter(8_000, 0.3),
                        backend_ns: ctx.rng.jitter(self.backend_ns, 0.4),
                        render_ns: ctx.rng.jitter(20_000, 0.3),
                        session_lock: ctx.rng.gen_index(1024),
                    };
                    let gap = ctx.rng.gen_exp(self.mean_gap_ns).max(500.0) as u64;
                    let ov = self.ov.as_mut().expect("overload client state");
                    ov.set_next_arrival(now + gap);
                    return self.inject(payload, 1, now, ctx);
                }
                ClientPoll::Timeout {
                    slot,
                    payload,
                    attempt,
                } => {
                    if !ov.is_done(slot) {
                        ov.schedule_retry(now, payload, attempt + 1, ctx.rng);
                    }
                    return Action::Compute {
                        ns: CLIENT_CHECK_NS,
                    };
                }
                ClientPoll::Retry { payload, attempt } => {
                    self.sink.record_retry();
                    return self.inject(payload, attempt, now, ctx);
                }
            }
        }
    }
}

impl Program for WebClient {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.ov.is_some() {
            return self.next_overload(ctx);
        }
        if self.sending {
            self.sending = false;
            let wi = self.next;
            self.next = (self.next + 1) % self.queues.len();
            let req = Request {
                clock: RequestClock::arrive(ctx.now.as_nanos()),
                parse_ns: ctx.rng.jitter(8_000, 0.3),
                backend_ns: ctx.rng.jitter(self.backend_ns, 0.4),
                render_ns: ctx.rng.jitter(20_000, 0.3),
                session_lock: ctx.rng.gen_index(1024),
                done: None,
            };
            self.queues[wi].borrow_mut().push_back(req);
            return Action::Sync(SyncOp::EpollPost(self.eps[wi], 1));
        }
        self.sending = true;
        let gap = ctx.rng.gen_exp(self.mean_gap_ns).max(500.0) as u64;
        Action::IoWait { ns: gap }
    }

    fn name(&self) -> &str {
        "web-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_defaults() {
        let w = WebServing::new(16, 4, 50_000.0);
        assert_eq!(w.total_cpus(), 6);
        assert_eq!(w.session_locks, 32);
    }
}
