//! An OpenMP-style fork-join workload with a persistent worker pool.
//!
//! The paper's related work contrasts thread oversubscription with
//! *dynamic threading*: runtimes like OpenMP keep a pool and activate a
//! per-region thread count, leaving the rest asleep. This workload models
//! both modes:
//!
//! - `active == pool`: every pool thread works every region — plain
//!   oversubscription when the pool exceeds the cores;
//! - `active < pool`: OpenMP-style adaptation — only `active` threads are
//!   woken per region, the others sleep on their semaphore.
//!
//! Each region distributes `chunks` self-scheduled chunks (a shared
//! counter claimed with an atomic RMW, like an OpenMP `schedule(dynamic)`
//! loop) and joins on a counting semaphore.

use oversub_metrics::RunReport;
use oversub_task::{Action, ProgCtx, Program, SemId, SyncOp};
use std::cell::Cell;
use std::rc::Rc;

use crate::workload::{RequestClock, RequestSink, ThreadSpec, Workload, WorldBuilder};

/// Shared per-region state: the chunk counter and the completion count.
struct RegionState {
    next_chunk: Cell<usize>,
    chunks: Cell<usize>,
    finished_workers: Cell<usize>,
    active: Cell<usize>,
    retired: Cell<bool>,
}

/// The fork-join workload. Request-shaped: each parallel region is one
/// request — arriving at region setup, serviced from the fork, complete
/// when the join collects the last worker.
#[derive(Clone)]
pub struct ForkJoin {
    /// Pool size (threads created).
    pub pool: usize,
    /// Threads activated per region (`<= pool`).
    pub active: usize,
    /// Parallel regions.
    pub regions: usize,
    /// Chunks per region (self-scheduled).
    pub chunks: usize,
    /// Compute per chunk.
    pub chunk_ns: u64,
    sink: RequestSink,
}

// Manual Debug over the configuration fields only (the sink is per-run
// state, reset on every build) — this keeps the workload cache-keyable.
impl std::fmt::Debug for ForkJoin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkJoin")
            .field("pool", &self.pool)
            .field("active", &self.active)
            .field("regions", &self.regions)
            .field("chunks", &self.chunks)
            .field("chunk_ns", &self.chunk_ns)
            .finish()
    }
}

impl ForkJoin {
    /// Fully explicit configuration.
    pub fn new(pool: usize, active: usize, regions: usize, chunks: usize, chunk_ns: u64) -> Self {
        ForkJoin {
            pool,
            active,
            regions,
            chunks,
            chunk_ns,
            sink: RequestSink::new(),
        }
    }

    /// A region-heavy configuration: many small regions, the fork/join
    /// overhead dominates — the case where wake-up efficiency matters.
    pub fn region_heavy(pool: usize, active: usize, regions: usize) -> Self {
        ForkJoin::new(pool, active, regions, active * 4, 40_000)
    }
}

impl Workload for ForkJoin {
    fn name(&self) -> &str {
        "fork-join"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        assert!(self.active >= 1 && self.active <= self.pool);
        // Per-run sink (see `RequestSink::reset`).
        self.sink.reset();
        self.sink.configure(w.overload);
        let work_sem: SemId = w.semaphore(0);
        let done_sem: SemId = w.semaphore(0);
        let state = Rc::new(RegionState {
            next_chunk: Cell::new(0),
            chunks: Cell::new(self.chunks),
            finished_workers: Cell::new(0),
            active: Cell::new(self.active),
            retired: Cell::new(false),
        });
        for _ in 0..self.pool {
            w.spawn(ThreadSpec::new(Box::new(PoolWorker {
                work_sem,
                done_sem,
                state: state.clone(),
                chunk_ns: self.chunk_ns,
                st: 0,
                pool_retired: false,
            })));
        }
        w.spawn(ThreadSpec::new(Box::new(Master {
            work_sem,
            done_sem,
            state,
            regions: self.regions,
            region: 0,
            chunks: self.chunks,
            posted: 0,
            joined: 0,
            pool: self.pool,
            retire_posts: 0,
            st: 0,
            clock: None,
            sink: self.sink.clone(),
        })));
    }

    fn collect(&self, report: &mut RunReport) {
        self.sink.collect(report);
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }

    fn min_service_ns(&self) -> Option<u64> {
        // The critical path of a region: each active worker's share of the
        // self-scheduled chunks, at the jitter floor (±20%).
        let waves = self.chunks.div_ceil(self.active.max(1)) as u64;
        Some((waves.saturating_mul(self.chunk_ns) as f64 * 0.8) as u64)
    }
}

/// The master: per region, reset the chunk counter, release `active`
/// workers, then join on the done semaphore `active` times.
struct Master {
    work_sem: SemId,
    done_sem: SemId,
    state: Rc<RegionState>,
    regions: usize,
    region: usize,
    chunks: usize,
    posted: usize,
    joined: usize,
    pool: usize,
    retire_posts: usize,
    st: u8,
    /// Lifecycle clock of the in-flight region.
    clock: Option<RequestClock>,
    sink: RequestSink,
}

impl Program for Master {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.region >= self.regions {
            // Retire the pool: wake every worker so it can observe the
            // retirement flag and exit (instead of sleeping forever).
            self.state.retired.set(true);
            if self.retire_posts < self.pool {
                self.retire_posts += 1;
                return Action::Sync(SyncOp::SemPost(self.work_sem));
            }
            return Action::Exit;
        }
        match self.st {
            0 => {
                // Serial part + region setup. The region "request" arrives
                // here: the serial part is part of its queueing delay. A
                // shed region runs its serial part but skips the parallel
                // body entirely (no fork, no join).
                let now = ctx.now.as_nanos();
                if !self.sink.try_admit(now, 1) {
                    self.region += 1;
                    return Action::Compute { ns: 15_000 };
                }
                self.clock = Some(RequestClock::arrive(now));
                self.state.next_chunk.set(0);
                self.state.chunks.set(self.chunks);
                self.state.finished_workers.set(0);
                self.posted = 0;
                self.joined = 0;
                self.st = 1;
                Action::Compute { ns: 15_000 }
            }
            1 => {
                // Fork: release the active workers one post at a time.
                if self.posted < self.state.active.get() {
                    if self.posted == 0 {
                        // Service starts with the first wake-up post.
                        let now = ctx.now.as_nanos();
                        if let Some(c) = &mut self.clock {
                            c.started(now);
                            self.sink
                                .note_started(now.saturating_sub(c.arrival_ns()), now);
                        }
                    }
                    self.posted += 1;
                    Action::Sync(SyncOp::SemPost(self.work_sem))
                } else {
                    self.st = 2;
                    Action::Compute { ns: 1 }
                }
            }
            _ => {
                // Join: collect one done token per worker.
                if self.joined < self.state.active.get() {
                    self.joined += 1;
                    Action::Sync(SyncOp::SemWait(self.done_sem))
                } else {
                    // The last join token has been collected: the region is
                    // complete end-to-end.
                    if let Some(clock) = self.clock.take() {
                        self.sink.complete(clock, ctx.now.as_nanos());
                    }
                    self.st = 0;
                    self.region += 1;
                    Action::Compute { ns: 1 }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "forkjoin-master"
    }
}

/// A pool worker: wait for a region, self-schedule chunks, report done.
struct PoolWorker {
    work_sem: SemId,
    done_sem: SemId,
    state: Rc<RegionState>,
    chunk_ns: u64,
    st: u8,
    pool_retired: bool,
}

impl Program for PoolWorker {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.pool_retired {
            return Action::Exit;
        }
        match self.st {
            0 => {
                self.st = 1;
                Action::Sync(SyncOp::SemWait(self.work_sem))
            }
            1 if self.state.retired.get() => {
                self.pool_retired = true;
                Action::Exit
            }
            1 => {
                // Claim a chunk (a shared-counter atomic).
                let n = self.state.next_chunk.get();
                if n < self.state.chunks.get() {
                    self.state.next_chunk.set(n + 1);
                    self.st = 2;
                    Action::AtomicRmw { line: 0x7000 }
                } else {
                    // Region exhausted: report and go back to sleep.
                    self.state
                        .finished_workers
                        .set(self.state.finished_workers.get() + 1);
                    self.st = 0;
                    Action::Sync(SyncOp::SemPost(self.done_sem))
                }
            }
            _ => {
                self.st = 1;
                Action::Compute {
                    ns: ctx.rng.jitter(self.chunk_ns, 0.2),
                }
            }
        }
    }

    fn name(&self) -> &str {
        "forkjoin-worker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_invariants() {
        let f = ForkJoin::region_heavy(32, 8, 100);
        assert_eq!(f.pool, 32);
        assert_eq!(f.active, 8);
        assert_eq!(f.chunks, 32);
    }
}
