//! The multi-stage pipeline microbenchmark of §4.3.
//!
//! "We designed a micro-benchmark with a multi-stage pipeline, with each
//! stage assigned to a separate thread. Each thread spins on the
//! completion of the previous stage before starting its own stage. As
//! such, the slowdown of one stage could cause cascading delays to the
//! downstream stages."
//!
//! Two waiting flavours are provided:
//! - [`WaitFlavor::Flags`]: bare flag polling (the `lu`-style loop of
//!   Figure 6 — invisible to PLE);
//! - [`WaitFlavor::SpinLock`]: waiting through one of the ten spinlock
//!   algorithms (each stage's completion guarded by a lock the consumer
//!   must acquire).

use oversub_locks::SpinPolicy;
use oversub_metrics::RunReport;
use oversub_task::{Action, FlagId, LockId, ProgCtx, Program, SpinSig, SyncOp};
use std::cell::RefCell;
use std::rc::Rc;

use crate::workload::{RequestClock, RequestSink, ThreadSpec, Workload, WorldBuilder};

/// Per-item lifecycle clocks shared between the first and last stage: the
/// first stage stamps arrival when it begins an item, the last stamps
/// start/completion as the item leaves the pipeline.
type ItemClocks = Rc<RefCell<Vec<RequestClock>>>;

/// Per-item shed flags, written by the first stage as it offers each item
/// to admission and read by every stage: a shed item still traverses the
/// pipeline (progress counters must advance to keep the hand-off protocol
/// intact) but no stage spends service time on it.
type ItemShed = Rc<RefCell<Vec<bool>>>;

/// How downstream stages wait for upstream completion.
#[derive(Clone, Copy, Debug)]
pub enum WaitFlavor {
    /// Poll a shared flag word with a bare loop.
    Flags,
    /// Acquire a spinlock of the given policy protecting the stage's
    /// hand-off slot.
    SpinLock(SpinPolicy),
}

/// The pipeline benchmark. Request-shaped: each item is a request —
/// arriving when the first stage begins it, serviced through the cascade,
/// complete when the last stage finishes it — so cascading delays show up
/// directly in the exact tail digest.
#[derive(Clone)]
pub struct SpinPipeline {
    /// Number of stages (= threads).
    pub stages: usize,
    /// Items pushed through the pipeline.
    pub items: usize,
    /// Per-stage processing time per item.
    pub stage_ns: u64,
    /// Waiting flavour.
    pub flavor: WaitFlavor,
    sink: RequestSink,
}

// Manual Debug over the configuration fields only (the sink is per-run
// state, reset on every build) — this keeps the workload cache-keyable.
impl std::fmt::Debug for SpinPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpinPipeline")
            .field("stages", &self.stages)
            .field("items", &self.items)
            .field("stage_ns", &self.stage_ns)
            .field("flavor", &self.flavor)
            .finish()
    }
}

impl SpinPipeline {
    /// The paper-shaped configuration.
    pub fn new(stages: usize, items: usize, flavor: WaitFlavor) -> Self {
        SpinPipeline {
            stages,
            items,
            stage_ns: 120_000,
            flavor,
            sink: RequestSink::new(),
        }
    }
}

impl Workload for SpinPipeline {
    fn name(&self) -> &str {
        "spin-pipeline"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        // Per-run sink (see `RequestSink::reset`).
        self.sink.reset();
        self.sink.configure(w.overload);
        let clocks: ItemClocks = Rc::new(RefCell::new(Vec::with_capacity(self.items)));
        let shed: ItemShed = Rc::new(RefCell::new(Vec::with_capacity(self.items)));
        match self.flavor {
            WaitFlavor::Flags => {
                // progress[i] = number of items stage i has completed.
                // Stage i processes item k once progress[i-1] > k.
                let progress: Vec<FlagId> = (0..self.stages).map(|_| w.flag(0)).collect();
                for i in 0..self.stages {
                    let is_first = i == 0;
                    let is_last = i + 1 == self.stages;
                    w.spawn(ThreadSpec::new(Box::new(FlagStage {
                        upstream: if i == 0 { None } else { Some(progress[i - 1]) },
                        // Bounded buffer of 1: a stage may not run more
                        // than one item ahead of its consumer — the
                        // tight coupling that makes one descheduled
                        // stage cascade through the whole pipeline.
                        downstream: if i + 1 < self.stages {
                            Some(progress[i + 1])
                        } else {
                            None
                        },
                        mine: progress[i],
                        items: self.items,
                        stage_ns: self.stage_ns,
                        done: 0,
                        st: 0,
                        salt: i as u64 + 1,
                        clocks: if is_first || is_last {
                            Some(clocks.clone())
                        } else {
                            None
                        },
                        is_first,
                        is_last,
                        sink: self.sink.clone(),
                        shed: shed.clone(),
                    })));
                }
            }
            WaitFlavor::SpinLock(policy) => {
                // One hand-off lock per stage boundary; the shared counter
                // behind it says how many items have crossed.
                let locks: Vec<LockId> = (0..self.stages).map(|_| w.spinlock(policy)).collect();
                let counters: Vec<FlagId> = (0..self.stages).map(|_| w.flag(0)).collect();
                for i in 0..self.stages {
                    let is_first = i == 0;
                    let is_last = i + 1 == self.stages;
                    w.spawn(ThreadSpec::new(Box::new(LockStage {
                        upstream_lock: if i == 0 { None } else { Some(locks[i - 1]) },
                        upstream_count: if i == 0 { None } else { Some(counters[i - 1]) },
                        my_lock: locks[i],
                        my_count: counters[i],
                        items: self.items,
                        stage_ns: self.stage_ns,
                        done: 0,
                        st: 0,
                        salt: i as u64 + 1,
                        clocks: if is_first || is_last {
                            Some(clocks.clone())
                        } else {
                            None
                        },
                        is_first,
                        is_last,
                        sink: self.sink.clone(),
                        shed: shed.clone(),
                    })));
                }
            }
        }
    }

    fn collect(&self, report: &mut RunReport) {
        self.sink.collect(report);
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }

    fn min_service_ns(&self) -> Option<u64> {
        // An item must cross every stage even with zero queueing.
        Some(self.stage_ns.saturating_mul(self.stages as u64))
    }
}

/// Flag-polling stage: spin until upstream's progress counter passes the
/// item we need, process, publish.
struct FlagStage {
    upstream: Option<FlagId>,
    downstream: Option<FlagId>,
    mine: FlagId,
    items: usize,
    stage_ns: u64,
    done: usize,
    st: u8,
    salt: u64,
    /// Shared item clocks (present only on the first/last stage).
    clocks: Option<ItemClocks>,
    is_first: bool,
    is_last: bool,
    sink: RequestSink,
    /// Per-item shed flags (written by the first stage at admission).
    shed: ItemShed,
}

impl FlagStage {
    fn item_shed(&self) -> bool {
        self.shed.borrow().get(self.done).copied().unwrap_or(false)
    }
}

impl Program for FlagStage {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.done >= self.items {
            return Action::Exit;
        }
        match self.st {
            0 => {
                self.st = 1;
                match self.upstream {
                    // Spin while upstream's progress still equals our done
                    // count (it has not produced our item yet).
                    Some(f) => Action::Sync(SyncOp::FlagSpinWhileEq {
                        flag: f,
                        while_eq: self.done as u64,
                        sig: SpinSig::bare_loop(0x50 + self.salt),
                    }),
                    None => Action::Compute { ns: 1 },
                }
            }
            1 => {
                self.st = 2;
                // Back-pressure: wait until the consumer is at most one
                // item behind before producing the next.
                match (self.downstream, self.done) {
                    (Some(f), d) if d >= 1 => Action::Sync(SyncOp::FlagSpinWhileEq {
                        flag: f,
                        while_eq: (d - 1) as u64,
                        sig: SpinSig::bare_loop(0x70 + self.salt),
                    }),
                    _ => Action::Compute { ns: 1 },
                }
            }
            2 => {
                self.st = 3;
                let now = ctx.now.as_nanos();
                // The first stage admits the item into the pipeline: this
                // is its arrival, and the admission decision for the whole
                // cascade. The last stage begins the final leg of service;
                // for a single-stage pipeline both stamps land here.
                if self.is_first {
                    let admit = self.sink.try_admit(now, 1);
                    self.shed.borrow_mut().push(!admit);
                    if let Some(clocks) = &self.clocks {
                        clocks.borrow_mut().push(RequestClock::arrive(now));
                    }
                }
                let shed = self.item_shed();
                if self.is_last && !shed {
                    let arrival = self.clocks.as_ref().and_then(|clocks| {
                        clocks.borrow_mut().get_mut(self.done).map(|c| {
                            c.started(now);
                            c.arrival_ns()
                        })
                    });
                    if let Some(arr) = arrival {
                        self.sink.note_started(now.saturating_sub(arr), now);
                    }
                }
                // A shed item crosses the stage at hand-off cost only.
                Action::Compute {
                    ns: if shed { 1 } else { self.stage_ns },
                }
            }
            _ => {
                if self.is_last && !self.item_shed() {
                    let clock = self
                        .clocks
                        .as_ref()
                        .and_then(|c| c.borrow().get(self.done).copied());
                    if let Some(clock) = clock {
                        self.sink.complete(clock, ctx.now.as_nanos());
                    }
                }
                self.st = 0;
                self.done += 1;
                Action::Sync(SyncOp::FlagSet {
                    flag: self.mine,
                    value: self.done as u64,
                })
            }
        }
    }

    fn name(&self) -> &str {
        "pipeline-flag-stage"
    }
}

/// Spinlock-guarded stage: take the upstream hand-off lock to check/claim
/// the item, process under own lock, publish.
struct LockStage {
    upstream_lock: Option<LockId>,
    upstream_count: Option<FlagId>,
    my_lock: LockId,
    my_count: FlagId,
    items: usize,
    stage_ns: u64,
    done: usize,
    st: u8,
    salt: u64,
    /// Shared item clocks (present only on the first/last stage).
    clocks: Option<ItemClocks>,
    is_first: bool,
    is_last: bool,
    sink: RequestSink,
    /// Per-item shed flags (written by the first stage at admission).
    shed: ItemShed,
}

impl LockStage {
    fn item_shed(&self) -> bool {
        self.shed.borrow().get(self.done).copied().unwrap_or(false)
    }
}

impl Program for LockStage {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.done >= self.items {
            return Action::Exit;
        }
        match self.st {
            0 => {
                // Wait for the upstream item (flag poll models the
                // condition; the lock acquisition models the hand-off
                // contention through the chosen algorithm).
                self.st = 1;
                match self.upstream_count {
                    Some(f) => Action::Sync(SyncOp::FlagSpinWhileEq {
                        flag: f,
                        while_eq: self.done as u64,
                        sig: SpinSig::bare_loop(0x90 + self.salt),
                    }),
                    None => Action::Compute { ns: 1 },
                }
            }
            1 => {
                self.st = 2;
                match self.upstream_lock {
                    Some(l) => Action::Sync(SyncOp::SpinAcquire(l)),
                    None => Action::Compute { ns: 1 },
                }
            }
            2 => {
                self.st = 3;
                match self.upstream_lock {
                    Some(l) => Action::Sync(SyncOp::SpinRelease(l)),
                    None => Action::Compute { ns: 1 },
                }
            }
            3 => {
                self.st = 4;
                let now = ctx.now.as_nanos();
                // Same lifecycle points as the flag flavour: arrival (and
                // the admission decision) as the first stage admits the
                // item, service start as the last stage begins its leg.
                if self.is_first {
                    let admit = self.sink.try_admit(now, 1);
                    self.shed.borrow_mut().push(!admit);
                    if let Some(clocks) = &self.clocks {
                        clocks.borrow_mut().push(RequestClock::arrive(now));
                    }
                }
                let shed = self.item_shed();
                if self.is_last && !shed {
                    let arrival = self.clocks.as_ref().and_then(|clocks| {
                        clocks.borrow_mut().get_mut(self.done).map(|c| {
                            c.started(now);
                            c.arrival_ns()
                        })
                    });
                    if let Some(arr) = arrival {
                        self.sink.note_started(now.saturating_sub(arr), now);
                    }
                }
                Action::Compute {
                    ns: if shed { 1 } else { self.stage_ns },
                }
            }
            4 => {
                self.st = 5;
                Action::Sync(SyncOp::SpinAcquire(self.my_lock))
            }
            5 => {
                self.st = 6;
                Action::Sync(SyncOp::FlagSet {
                    flag: self.my_count,
                    value: self.done as u64 + 1,
                })
            }
            _ => {
                if self.is_last && !self.item_shed() {
                    let clock = self
                        .clocks
                        .as_ref()
                        .and_then(|c| c.borrow().get(self.done).copied());
                    if let Some(clock) = clock {
                        self.sink.complete(clock, ctx.now.as_nanos());
                    }
                }
                // Increment only here: the top-of-next exit check must not
                // fire while the stage still holds its lock.
                self.st = 0;
                self.done += 1;
                Action::Sync(SyncOp::SpinRelease(self.my_lock))
            }
        }
    }

    fn name(&self) -> &str {
        "pipeline-lock-stage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let p = SpinPipeline::new(8, 100, WaitFlavor::Flags);
        assert_eq!(p.stages, 8);
        assert_eq!(p.items, 100);
        let q = SpinPipeline::new(4, 10, WaitFlavor::SpinLock(SpinPolicy::mcs()));
        assert!(matches!(q.flavor, WaitFlavor::SpinLock(_)));
    }
}
