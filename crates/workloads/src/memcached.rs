//! The memcached server model (paper §4.2, Figure 12).
//!
//! Memcached worker threads block in `epoll_wait` (via libevent) until
//! requests arrive, then look up / update a hash table protected by item
//! locks (pthread mutexes over futex). We model:
//!
//! - `workers` worker threads, each with its own epoll instance, restricted
//!   to the server cores;
//! - a mutilate-style open-loop client running on dedicated client CPUs
//!   (the paper uses a separate client machine): Poisson arrivals at a
//!   configurable aggregate rate, 10:1 GET/SET mix, requests fanned out to
//!   workers round-robin;
//! - per-request latency measured from the client's send to the worker's
//!   completion, collected into the run report's histogram.

use oversub_hw::CpuId;
use oversub_metrics::RunReport;
use oversub_task::{Action, EpollFd, LockId, ProgCtx, Program, SyncOp};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::workload::{RequestClock, RequestSink, ThreadSpec, Workload, WorldBuilder};

/// A queued request: lifecycle stamps and service cost.
#[derive(Clone, Copy, Debug)]
struct Request {
    clock: RequestClock,
    service_ns: u64,
    lock_idx: usize,
}

type Queue = Rc<RefCell<VecDeque<Request>>>;

/// Configuration of the memcached experiment.
pub struct Memcached {
    /// Worker threads (the oversubscription knob: 4 vs 16).
    pub workers: usize,
    /// Server cores (CPUs `0..server_cores`).
    pub server_cores: usize,
    /// Client generator threads (each pinned to its own extra CPU).
    pub clients: usize,
    /// Aggregate offered load in requests/second.
    pub rate_ops: f64,
    /// GET fraction (paper: 10:1 GET/SET).
    pub get_frac: f64,
    /// Service time of a GET (lookup + 2 KiB response).
    pub get_service_ns: u64,
    /// Service time of a SET.
    pub set_service_ns: u64,
    /// Item locks protecting the hash table.
    pub hash_locks: usize,
    sink: RequestSink,
}

// Manual Debug over the configuration fields only (the sink is per-run
// state, reset on every build) — this is what makes the workload
// cache-keyable for the sweep run cache.
impl std::fmt::Debug for Memcached {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memcached")
            .field("workers", &self.workers)
            .field("server_cores", &self.server_cores)
            .field("clients", &self.clients)
            .field("rate_ops", &self.rate_ops)
            .field("get_frac", &self.get_frac)
            .field("get_service_ns", &self.get_service_ns)
            .field("set_service_ns", &self.set_service_ns)
            .field("hash_locks", &self.hash_locks)
            .finish()
    }
}

impl Memcached {
    /// The paper's setup: 128 B keys / 2 KiB values, 10:1 GET/SET.
    pub fn paper(workers: usize, server_cores: usize, rate_ops: f64) -> Self {
        Memcached {
            workers,
            server_cores,
            clients: 3,
            rate_ops,
            get_frac: 10.0 / 11.0,
            get_service_ns: 9_000,
            set_service_ns: 14_000,
            hash_locks: 16,
            sink: RequestSink::new(),
        }
    }

    /// Total CPUs the machine needs (server + client).
    pub fn total_cpus(&self) -> usize {
        self.server_cores + self.clients
    }
}

impl Workload for Memcached {
    fn name(&self) -> &str {
        "memcached"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        // Per-run sink: sweeps run build→run→collect per arm on the same
        // workload instance, so samples must not leak across runs.
        self.sink.reset();
        let locks: Vec<LockId> = (0..self.hash_locks).map(|_| w.mutex()).collect();
        let mut eps = Vec::new();
        let mut queues: Vec<Queue> = Vec::new();
        for _ in 0..self.workers {
            eps.push(w.epoll_instance());
            queues.push(Rc::new(RefCell::new(VecDeque::new())));
        }
        for i in 0..self.workers {
            w.spawn(
                ThreadSpec::new(Box::new(WorkerProg {
                    ep: eps[i],
                    queue: queues[i].clone(),
                    locks: locks.clone(),
                    sink: self.sink.clone(),
                    state: WorkerState::Waiting,
                }))
                .allowed_range(0, self.server_cores)
                // Connection buffers + hot hash-table share: what a
                // migration or context switch must refetch.
                .with_footprint(128 << 10),
            );
        }
        let per_client_rate = self.rate_ops / self.clients as f64;
        for c in 0..self.clients {
            w.spawn(
                ThreadSpec::new(Box::new(ClientProg {
                    eps: eps.clone(),
                    queues: queues.clone(),
                    next_worker: c % self.workers,
                    mean_gap_ns: 1e9 / per_client_rate,
                    get_frac: self.get_frac,
                    get_ns: self.get_service_ns,
                    set_ns: self.set_service_ns,
                    hash_locks: self.hash_locks,
                    sending: false,
                }))
                .pinned_to(CpuId(self.server_cores + c)),
            );
        }
    }

    fn collect(&self, report: &mut RunReport) {
        self.sink.collect(report);
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }
}

enum WorkerState {
    /// About to epoll_wait.
    Waiting,
    /// Just returned from epoll_wait / finished a request: pop next.
    Dispatch,
    /// Holding `lock`, about to compute the service time.
    InCs {
        lock: LockId,
        clock: RequestClock,
        service_ns: u64,
    },
    /// Service done, about to unlock.
    Unlock { lock: LockId, clock: RequestClock },
    /// Request complete: record the lifecycle, then dispatch.
    Record { clock: RequestClock },
}

struct WorkerProg {
    ep: EpollFd,
    queue: Queue,
    locks: Vec<LockId>,
    sink: RequestSink,
    state: WorkerState,
}

impl Program for WorkerProg {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        loop {
            match self.state {
                WorkerState::Waiting => {
                    self.state = WorkerState::Dispatch;
                    return Action::Sync(SyncOp::EpollWait(self.ep));
                }
                WorkerState::Dispatch => {
                    let req = self.queue.borrow_mut().pop_front();
                    match req {
                        Some(mut r) => {
                            // Service begins now; everything before this
                            // stamp is queueing (epoll wakeup latency
                            // included — the path oversubscription hurts).
                            r.clock.started(ctx.now.as_nanos());
                            self.state = WorkerState::InCs {
                                lock: self.locks[r.lock_idx],
                                clock: r.clock,
                                service_ns: r.service_ns,
                            };
                            let lock = self.locks[r.lock_idx];
                            return Action::Sync(SyncOp::MutexLock(lock));
                        }
                        None => {
                            self.state = WorkerState::Waiting;
                            continue;
                        }
                    }
                }
                WorkerState::InCs {
                    lock,
                    clock,
                    service_ns,
                } => {
                    self.state = WorkerState::Unlock { lock, clock };
                    return Action::Compute { ns: service_ns };
                }
                WorkerState::Unlock { lock, clock } => {
                    self.state = WorkerState::Record { clock };
                    return Action::Sync(SyncOp::MutexUnlock(lock));
                }
                WorkerState::Record { clock } => {
                    self.sink.complete(clock, ctx.now.as_nanos());
                    self.state = WorkerState::Dispatch;
                    continue;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "memcached-worker"
    }
}

struct ClientProg {
    eps: Vec<EpollFd>,
    queues: Vec<Queue>,
    next_worker: usize,
    mean_gap_ns: f64,
    get_frac: f64,
    get_ns: u64,
    set_ns: u64,
    hash_locks: usize,
    sending: bool,
}

impl Program for ClientProg {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.sending {
            // Woken after the inter-arrival gap: emit the request *now*.
            self.sending = false;
            let is_get = ctx.rng.gen_bool(self.get_frac);
            let service_ns = ctx
                .rng
                .jitter(if is_get { self.get_ns } else { self.set_ns }, 0.2);
            let lock_idx = ctx.rng.gen_index(self.hash_locks);
            let wi = self.next_worker;
            self.next_worker = (self.next_worker + 1) % self.queues.len();
            self.queues[wi].borrow_mut().push_back(Request {
                clock: RequestClock::arrive(ctx.now.as_nanos()),
                service_ns,
                lock_idx,
            });
            return Action::Sync(SyncOp::EpollPost(self.eps[wi], 1));
        }
        self.sending = true;
        let gap = ctx.rng.gen_exp(self.mean_gap_ns).max(200.0) as u64;
        Action::IoWait { ns: gap }
    }

    fn name(&self) -> &str {
        "mutilate-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let m = Memcached::paper(16, 4, 100_000.0);
        assert_eq!(m.workers, 16);
        assert_eq!(m.total_cpus(), 7);
        assert!((m.get_frac - 10.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn cache_key_covers_config_only() {
        let a = Memcached::paper(16, 4, 100_000.0);
        let b = Memcached::paper(16, 4, 100_000.0);
        assert_eq!(a.cache_key(), b.cache_key());
        assert!(a.cache_key().is_some_and(|k| k.contains("workers: 16")));
        let c = Memcached::paper(8, 4, 100_000.0);
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
