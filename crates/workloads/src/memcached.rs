//! The memcached server model (paper §4.2, Figure 12).
//!
//! Memcached worker threads block in `epoll_wait` (via libevent) until
//! requests arrive, then look up / update a hash table protected by item
//! locks (pthread mutexes over futex). We model:
//!
//! - `workers` worker threads, each with its own epoll instance, restricted
//!   to the server cores;
//! - a mutilate-style open-loop client running on dedicated client CPUs
//!   (the paper uses a separate client machine): Poisson arrivals at a
//!   configurable aggregate rate, 10:1 GET/SET mix, requests fanned out to
//!   workers round-robin;
//! - per-request latency measured from the client's send to the worker's
//!   completion, collected into the run report's histogram.

use oversub_hw::CpuId;
use oversub_metrics::RunReport;
use oversub_task::{Action, EpollFd, LockId, ProgCtx, Program, SyncOp};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::admission::{ClientPoll, DoneFlags, OpenLoopOverload};
use crate::workload::{RequestClock, RequestSink, ThreadSpec, Workload, WorldBuilder};

/// CPU cost of a client-side deadline check or shed-error reply.
const CLIENT_CHECK_NS: u64 = 300;

/// A queued request: lifecycle stamps, service cost, and (under the
/// overload control plane) the completion slot the client's deadline
/// timeout checks.
#[derive(Clone, Debug)]
struct Request {
    clock: RequestClock,
    service_ns: u64,
    lock_idx: usize,
    done: Option<(DoneFlags, usize)>,
}

/// What the client must remember to retry a request: the draws that
/// define it (re-used verbatim on re-injection).
#[derive(Clone, Copy)]
struct McPayload {
    service_ns: u64,
    lock_idx: usize,
}

type Queue = Rc<RefCell<VecDeque<Request>>>;

/// Configuration of the memcached experiment.
pub struct Memcached {
    /// Worker threads (the oversubscription knob: 4 vs 16).
    pub workers: usize,
    /// Server cores (CPUs `0..server_cores`).
    pub server_cores: usize,
    /// Client generator threads (each pinned to its own extra CPU).
    pub clients: usize,
    /// Aggregate offered load in requests/second.
    pub rate_ops: f64,
    /// GET fraction (paper: 10:1 GET/SET).
    pub get_frac: f64,
    /// Service time of a GET (lookup + 2 KiB response).
    pub get_service_ns: u64,
    /// Service time of a SET.
    pub set_service_ns: u64,
    /// Item locks protecting the hash table.
    pub hash_locks: usize,
    sink: RequestSink,
}

// Manual Debug over the configuration fields only (the sink is per-run
// state, reset on every build) — this is what makes the workload
// cache-keyable for the sweep run cache.
impl std::fmt::Debug for Memcached {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memcached")
            .field("workers", &self.workers)
            .field("server_cores", &self.server_cores)
            .field("clients", &self.clients)
            .field("rate_ops", &self.rate_ops)
            .field("get_frac", &self.get_frac)
            .field("get_service_ns", &self.get_service_ns)
            .field("set_service_ns", &self.set_service_ns)
            .field("hash_locks", &self.hash_locks)
            .finish()
    }
}

impl Memcached {
    /// The paper's setup: 128 B keys / 2 KiB values, 10:1 GET/SET.
    pub fn paper(workers: usize, server_cores: usize, rate_ops: f64) -> Self {
        Memcached {
            workers,
            server_cores,
            clients: 3,
            rate_ops,
            get_frac: 10.0 / 11.0,
            get_service_ns: 9_000,
            set_service_ns: 14_000,
            hash_locks: 16,
            sink: RequestSink::new(),
        }
    }

    /// Total CPUs the machine needs (server + client).
    pub fn total_cpus(&self) -> usize {
        self.server_cores + self.clients
    }
}

impl Workload for Memcached {
    fn name(&self) -> &str {
        "memcached"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        // Per-run sink: sweeps run build→run→collect per arm on the same
        // workload instance, so samples must not leak across runs.
        self.sink.reset();
        self.sink.configure(w.overload);
        let locks: Vec<LockId> = (0..self.hash_locks).map(|_| w.mutex()).collect();
        let mut eps = Vec::new();
        let mut queues: Vec<Queue> = Vec::new();
        for _ in 0..self.workers {
            eps.push(w.epoll_instance());
            queues.push(Rc::new(RefCell::new(VecDeque::new())));
        }
        for i in 0..self.workers {
            w.spawn(
                ThreadSpec::new(Box::new(WorkerProg {
                    ep: eps[i],
                    queue: queues[i].clone(),
                    locks: locks.clone(),
                    sink: self.sink.clone(),
                    state: WorkerState::Waiting,
                }))
                .allowed_range(0, self.server_cores)
                // Connection buffers + hot hash-table share: what a
                // migration or context switch must refetch.
                .with_footprint(128 << 10),
            );
        }
        let per_client_rate = self.rate_ops / self.clients as f64;
        for c in 0..self.clients {
            w.spawn(
                ThreadSpec::new(Box::new(ClientProg {
                    eps: eps.clone(),
                    queues: queues.clone(),
                    next_worker: c % self.workers,
                    mean_gap_ns: 1e9 / per_client_rate,
                    get_frac: self.get_frac,
                    get_ns: self.get_service_ns,
                    set_ns: self.set_service_ns,
                    hash_locks: self.hash_locks,
                    sending: false,
                    sink: self.sink.clone(),
                    ov: w
                        .overload
                        .enabled()
                        .then(|| OpenLoopOverload::new(w.overload)),
                }))
                .pinned_to(CpuId(self.server_cores + c)),
            );
        }
    }

    fn collect(&self, report: &mut RunReport) {
        self.sink.collect(report);
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("{self:?}"))
    }

    fn min_service_ns(&self) -> Option<u64> {
        // Service draws are jittered ±20% around the GET/SET costs.
        let base = self.get_service_ns.min(self.set_service_ns);
        Some((base as f64 * 0.8) as u64)
    }
}

enum WorkerState {
    /// About to epoll_wait.
    Waiting,
    /// Just returned from epoll_wait / finished a request: pop next.
    Dispatch,
    /// Holding the item lock, about to compute the service time.
    InCs { lock: LockId, req: Request },
    /// Service done, about to unlock.
    Unlock { lock: LockId, req: Request },
    /// Request complete: record the lifecycle, then dispatch.
    Record { req: Request },
}

struct WorkerProg {
    ep: EpollFd,
    queue: Queue,
    locks: Vec<LockId>,
    sink: RequestSink,
    state: WorkerState,
}

impl Program for WorkerProg {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        loop {
            match std::mem::replace(&mut self.state, WorkerState::Waiting) {
                WorkerState::Waiting => {
                    self.state = WorkerState::Dispatch;
                    return Action::Sync(SyncOp::EpollWait(self.ep));
                }
                WorkerState::Dispatch => {
                    let req = self.queue.borrow_mut().pop_front();
                    match req {
                        Some(mut r) => {
                            // Service begins now; everything before this
                            // stamp is queueing (epoll wakeup latency
                            // included — the path oversubscription hurts).
                            let now = ctx.now.as_nanos();
                            r.clock.started(now);
                            self.sink
                                .note_started(now.saturating_sub(r.clock.arrival_ns()), now);
                            let lock = self.locks[r.lock_idx];
                            self.state = WorkerState::InCs { lock, req: r };
                            return Action::Sync(SyncOp::MutexLock(lock));
                        }
                        None => {
                            self.state = WorkerState::Waiting;
                            continue;
                        }
                    }
                }
                WorkerState::InCs { lock, req } => {
                    let ns = req.service_ns;
                    self.state = WorkerState::Unlock { lock, req };
                    return Action::Compute { ns };
                }
                WorkerState::Unlock { lock, req } => {
                    self.state = WorkerState::Record { req };
                    return Action::Sync(SyncOp::MutexUnlock(lock));
                }
                WorkerState::Record { req } => {
                    // The response is out: let the client's deadline check
                    // see it, then seal the lifecycle record.
                    if let Some((flags, slot)) = &req.done {
                        if let Some(f) = flags.borrow_mut().get_mut(*slot) {
                            *f = true;
                        }
                    }
                    self.sink.complete(req.clock, ctx.now.as_nanos());
                    self.state = WorkerState::Dispatch;
                    continue;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "memcached-worker"
    }
}

struct ClientProg {
    eps: Vec<EpollFd>,
    queues: Vec<Queue>,
    next_worker: usize,
    mean_gap_ns: f64,
    get_frac: f64,
    get_ns: u64,
    set_ns: u64,
    hash_locks: usize,
    sending: bool,
    sink: RequestSink,
    /// Overload machinery; `None` runs the exact pre-overload client.
    ov: Option<OpenLoopOverload<McPayload>>,
}

impl ClientProg {
    /// Send one attempt through admission: enqueue to a worker on admit,
    /// or burn a tiny error-reply cost (and maybe back off a retry) on
    /// shed.
    fn inject(&mut self, p: McPayload, attempt: u32, now: u64, ctx: &mut ProgCtx<'_>) -> Action {
        if self.sink.try_admit(now, 1) {
            let ov = self.ov.as_mut().expect("overload client state");
            let mut done = None;
            if ov.params.deadline_ns > 0 && ov.params.retry.is_some() {
                let slot = ov.new_slot();
                ov.schedule_timeout(now, slot, p, attempt);
                done = Some((ov.done_flags(), slot));
            }
            let wi = self.next_worker;
            self.next_worker = (self.next_worker + 1) % self.queues.len();
            self.queues[wi].borrow_mut().push_back(Request {
                clock: RequestClock::arrive(now).with_attempt(attempt),
                service_ns: p.service_ns,
                lock_idx: p.lock_idx,
                done,
            });
            Action::Sync(SyncOp::EpollPost(self.eps[wi], 1))
        } else {
            let ov = self.ov.as_mut().expect("overload client state");
            ov.schedule_retry(now, p, attempt + 1, ctx.rng);
            Action::Compute {
                ns: CLIENT_CHECK_NS,
            }
        }
    }

    /// The overload-aware client loop: one deterministic event stream
    /// merging fresh arrivals, deadline checks, and backed-off retries.
    fn next_overload(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        let now = ctx.now.as_nanos();
        loop {
            let ov = self.ov.as_mut().expect("overload client state");
            match ov.poll(now) {
                ClientPoll::Sleep(ns) => return Action::IoWait { ns },
                ClientPoll::NeedGap => {
                    let gap = ctx.rng.gen_exp(self.mean_gap_ns).max(200.0) as u64;
                    let ov = self.ov.as_mut().expect("overload client state");
                    ov.set_next_arrival(now + gap);
                }
                ClientPoll::Arrival => {
                    ov.take_arrival();
                    // Same draws, in the same order, as the legacy client.
                    let is_get = ctx.rng.gen_bool(self.get_frac);
                    let service_ns = ctx
                        .rng
                        .jitter(if is_get { self.get_ns } else { self.set_ns }, 0.2);
                    let lock_idx = ctx.rng.gen_index(self.hash_locks);
                    let gap = ctx.rng.gen_exp(self.mean_gap_ns).max(200.0) as u64;
                    let ov = self.ov.as_mut().expect("overload client state");
                    ov.set_next_arrival(now + gap);
                    return self.inject(
                        McPayload {
                            service_ns,
                            lock_idx,
                        },
                        1,
                        now,
                        ctx,
                    );
                }
                ClientPoll::Timeout {
                    slot,
                    payload,
                    attempt,
                } => {
                    if !ov.is_done(slot) {
                        ov.schedule_retry(now, payload, attempt + 1, ctx.rng);
                    }
                    return Action::Compute {
                        ns: CLIENT_CHECK_NS,
                    };
                }
                ClientPoll::Retry { payload, attempt } => {
                    self.sink.record_retry();
                    return self.inject(payload, attempt, now, ctx);
                }
            }
        }
    }
}

impl Program for ClientProg {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        if self.ov.is_some() {
            return self.next_overload(ctx);
        }
        if self.sending {
            // Woken after the inter-arrival gap: emit the request *now*.
            self.sending = false;
            let is_get = ctx.rng.gen_bool(self.get_frac);
            let service_ns = ctx
                .rng
                .jitter(if is_get { self.get_ns } else { self.set_ns }, 0.2);
            let lock_idx = ctx.rng.gen_index(self.hash_locks);
            let wi = self.next_worker;
            self.next_worker = (self.next_worker + 1) % self.queues.len();
            self.queues[wi].borrow_mut().push_back(Request {
                clock: RequestClock::arrive(ctx.now.as_nanos()),
                service_ns,
                lock_idx,
                done: None,
            });
            return Action::Sync(SyncOp::EpollPost(self.eps[wi], 1));
        }
        self.sending = true;
        let gap = ctx.rng.gen_exp(self.mean_gap_ns).max(200.0) as u64;
        Action::IoWait { ns: gap }
    }

    fn name(&self) -> &str {
        "mutilate-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let m = Memcached::paper(16, 4, 100_000.0);
        assert_eq!(m.workers, 16);
        assert_eq!(m.total_cpus(), 7);
        assert!((m.get_frac - 10.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn cache_key_covers_config_only() {
        let a = Memcached::paper(16, 4, 100_000.0);
        let b = Memcached::paper(16, 4, 100_000.0);
        assert_eq!(a.cache_key(), b.cache_key());
        assert!(a.cache_key().is_some_and(|k| k.contains("workers: 16")));
        let c = Memcached::paper(8, 4, 100_000.0);
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
