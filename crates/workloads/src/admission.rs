//! The overload control plane: admission policies (load shedding), request
//! deadlines, and a deterministic client retry model.
//!
//! Everything here is plain data plus a little state machine — no wall
//! clocks, no ambient randomness. Retry backoff draws from a dedicated RNG
//! substream forked off the client task's stream, so enabling retries
//! perturbs neither the arrival process nor any other task, and a retry
//! storm replays byte-for-byte from the run seed.

use oversub_simcore::SimRng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// How one request attempt left the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Finished within its deadline (or no deadline was configured).
    Completed,
    /// Finished, but past its deadline — wasted work from the client's view.
    DeadlineExceeded,
    /// Rejected at the generator→worker boundary by the admission policy.
    Shed,
    /// Admitted but never completed before the run ended.
    Abandoned,
}

/// Load-shedding policy applied where the generator hands requests to
/// workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything (the PR 7 behaviour).
    None,
    /// Shed when more than this many admitted requests are waiting to
    /// start service.
    QueueCap(u64),
    /// CoDel-style queue-delay shedder: track the queueing delay observed
    /// at service start; once it has stayed above `target_ns` for a full
    /// `interval_ns`, shed arrivals until a below-target delay (or an
    /// empty queue) is observed. This is the sojourn-target + interval
    /// hysteresis core of CoDel with bang-bang dropping rather than the
    /// sqrt-spaced drop schedule — at µs-scale service times the sqrt
    /// schedule sheds far too slowly to matter.
    CoDel {
        /// Acceptable standing queueing delay.
        target_ns: u64,
        /// How long the delay must stay above target before shedding.
        interval_ns: u64,
    },
}

/// Deterministic client retry model: exponential backoff with seeded full
/// jitter, a per-request attempt budget, and re-injection into the open
/// loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts per request (1 = no retries).
    pub budget: u32,
    /// Backoff bound before the first retry; doubles per attempt.
    pub base_backoff_ns: u64,
    /// Cap on the backoff bound.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 3,
            base_backoff_ns: 500_000,
            max_backoff_ns: 5_000_000,
        }
    }
}

/// Per-run overload configuration, carried from `RunConfig` into
/// `WorldBuilder` and picked up by every request family's sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadParams {
    /// Request deadline; 0 means no deadline (every completion is good).
    pub deadline_ns: u64,
    /// Load-shedding policy at the generator→worker boundary.
    pub admission: AdmissionPolicy,
    /// Client retry model; `None` disables retries.
    pub retry: Option<RetryPolicy>,
}

impl Default for OverloadParams {
    fn default() -> Self {
        Self::disabled()
    }
}

impl OverloadParams {
    /// The PR 7 behaviour: no deadlines, no shedding, no retries.
    pub fn disabled() -> Self {
        OverloadParams {
            deadline_ns: 0,
            admission: AdmissionPolicy::None,
            retry: None,
        }
    }

    /// True when any part of the control plane is switched on. When false,
    /// every workload runs its exact pre-overload code path.
    pub fn enabled(&self) -> bool {
        self.deadline_ns > 0 || self.admission != AdmissionPolicy::None || self.retry.is_some()
    }

    /// Set the request deadline.
    pub fn with_deadline_ns(mut self, ns: u64) -> Self {
        self.deadline_ns = ns;
        self
    }

    /// Set the admission policy.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Enable retries.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }
}

/// Mutable admission-control state (lives inside the request sink).
#[derive(Debug, Default)]
pub struct AdmissionState {
    /// Admitted requests that have not yet started service.
    pub in_queue: u64,
    /// When the observed queueing delay first exceeded the CoDel target.
    first_above_since: Option<u64>,
    /// Whether the CoDel shedder is currently dropping arrivals.
    dropping: bool,
}

impl AdmissionState {
    /// Feed a queueing-delay observation (taken when a worker starts a
    /// request) to the CoDel controller.
    pub fn observe(&mut self, policy: &AdmissionPolicy, queue_ns: u64, now_ns: u64) {
        if let AdmissionPolicy::CoDel {
            target_ns,
            interval_ns,
        } = *policy
        {
            if queue_ns < target_ns {
                self.first_above_since = None;
                self.dropping = false;
            } else {
                match self.first_above_since {
                    None => self.first_above_since = Some(now_ns),
                    Some(since) => {
                        if now_ns.saturating_sub(since) >= interval_ns {
                            self.dropping = true;
                        }
                    }
                }
            }
        }
    }

    /// Decide one arrival. Does not touch `in_queue`; the caller counts
    /// admitted requests.
    pub fn admit(&mut self, policy: &AdmissionPolicy) -> bool {
        match *policy {
            AdmissionPolicy::None => true,
            AdmissionPolicy::QueueCap(cap) => self.in_queue < cap,
            AdmissionPolicy::CoDel { .. } => {
                if self.in_queue == 0 {
                    // An empty queue always resets the controller: there is
                    // no standing delay left to shed.
                    self.dropping = false;
                    self.first_above_since = None;
                    true
                } else {
                    !self.dropping
                }
            }
        }
    }

    /// Whether the CoDel controller is currently shedding.
    pub fn dropping(&self) -> bool {
        self.dropping
    }
}

/// Full-jitter exponential backoff (AWS style): uniform in
/// `[1, min(max, base << (attempt - 2)))`, drawn from the dedicated retry
/// substream. `attempt` is the attempt number about to be injected (>= 2).
pub fn backoff_full_jitter(rng: &mut SimRng, retry: &RetryPolicy, attempt: u32) -> u64 {
    let exp = attempt.saturating_sub(2).min(32);
    let cap = retry.max_backoff_ns.max(1);
    let bound = retry
        .base_backoff_ns
        .max(1)
        .saturating_mul(1u64 << exp)
        .min(cap);
    rng.gen_range(bound) + 1
}

/// Shared "response received" flags: one slot per admitted attempt, set by
/// the server worker at completion and read by the client's timeout check.
pub type DoneFlags = Rc<RefCell<Vec<bool>>>;

/// A pending client-side event.
enum Pending<P> {
    /// Deadline check for an in-flight attempt.
    Timeout {
        slot: usize,
        payload: P,
        attempt: u32,
    },
    /// A backed-off retry is due for re-injection.
    Retry { payload: P, attempt: u32 },
}

/// What the open-loop client should do next.
pub enum ClientPoll<P> {
    /// Sleep this long until the next client-side event.
    Sleep(u64),
    /// No next arrival scheduled: draw a gap and call
    /// [`OpenLoopOverload::set_next_arrival`].
    NeedGap,
    /// A fresh arrival is due now; call [`OpenLoopOverload::take_arrival`],
    /// draw the request, and inject it.
    Arrival,
    /// A deadline check fired for this attempt.
    Timeout {
        slot: usize,
        payload: P,
        attempt: u32,
    },
    /// A retry is due for re-injection now.
    Retry { payload: P, attempt: u32 },
}

/// Client-side overload machinery for open-loop request generators:
/// merges the arrival process with deadline-timeout checks and backed-off
/// retries into one deterministic event stream.
///
/// Pending events live in a `BTreeMap` keyed `(fire_ns, seq)` so iteration
/// order is by virtual time with FIFO tie-breaks — deterministic
/// regardless of insertion pattern.
pub struct OpenLoopOverload<P> {
    /// The run's overload parameters.
    pub params: OverloadParams,
    pending: BTreeMap<(u64, u64), Pending<P>>,
    seq: u64,
    next_arrival: Option<u64>,
    retry_rng: Option<SimRng>,
    done: DoneFlags,
}

/// Stream tag for the dedicated retry-backoff RNG substream.
const RETRY_STREAM: u64 = 0xB0FF_1E55;

impl<P: Copy> OpenLoopOverload<P> {
    /// New helper for a client running under `params`.
    pub fn new(params: OverloadParams) -> Self {
        OpenLoopOverload {
            params,
            pending: BTreeMap::new(),
            seq: 0,
            next_arrival: None,
            retry_rng: None,
            done: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// The shared completion flags (clone into injected requests).
    pub fn done_flags(&self) -> DoneFlags {
        self.done.clone()
    }

    /// Allocate a completion slot for a newly admitted attempt.
    pub fn new_slot(&mut self) -> usize {
        let mut d = self.done.borrow_mut();
        d.push(false);
        d.len() - 1
    }

    /// Whether the attempt in `slot` has completed.
    pub fn is_done(&self, slot: usize) -> bool {
        self.done.borrow().get(slot).copied().unwrap_or(false)
    }

    /// Record the next fresh-arrival time (after drawing a gap).
    pub fn set_next_arrival(&mut self, at_ns: u64) {
        self.next_arrival = Some(at_ns);
    }

    /// Consume the due arrival (call when handling [`ClientPoll::Arrival`]).
    pub fn take_arrival(&mut self) {
        self.next_arrival = None;
    }

    /// Schedule the deadline check for an in-flight attempt. Fires one
    /// nanosecond past the deadline so a completion exactly at the deadline
    /// beats the check.
    pub fn schedule_timeout(&mut self, now_ns: u64, slot: usize, payload: P, attempt: u32) {
        let at = now_ns
            .saturating_add(self.params.deadline_ns)
            .saturating_add(1);
        let key = (at, self.seq);
        self.seq += 1;
        self.pending.insert(
            key,
            Pending::Timeout {
                slot,
                payload,
                attempt,
            },
        );
    }

    /// Schedule a retry with full-jitter backoff. `client_rng` seeds the
    /// dedicated retry substream on first use (`fork` does not perturb the
    /// client's own stream).
    pub fn schedule_retry(
        &mut self,
        now_ns: u64,
        payload: P,
        attempt: u32,
        client_rng: &SimRng,
    ) -> bool {
        let Some(retry) = self.params.retry else {
            return false;
        };
        if attempt > retry.budget {
            return false;
        }
        let rng = self
            .retry_rng
            .get_or_insert_with(|| client_rng.fork(RETRY_STREAM));
        let delay = backoff_full_jitter(rng, &retry, attempt);
        let key = (now_ns.saturating_add(delay), self.seq);
        self.seq += 1;
        self.pending
            .insert(key, Pending::Retry { payload, attempt });
        true
    }

    /// Next client action at virtual time `now_ns`. Pending timeout/retry
    /// events fire before a fresh arrival due at the same instant.
    pub fn poll(&mut self, now_ns: u64) -> ClientPoll<P> {
        let pending_at = self.pending.keys().next().map(|&(at, _)| at);
        let due = match (pending_at, self.next_arrival) {
            (None, None) => return ClientPoll::NeedGap,
            (Some(p), None) => (p, true),
            (None, Some(a)) => (a, false),
            (Some(p), Some(a)) => {
                if p <= a {
                    (p, true)
                } else {
                    (a, false)
                }
            }
        };
        let (at, is_pending) = due;
        if at > now_ns {
            return ClientPoll::Sleep(at - now_ns);
        }
        if !is_pending {
            return ClientPoll::Arrival;
        }
        let key = *self
            .pending
            .keys()
            .next()
            .expect("pending event disappeared");
        match self
            .pending
            .remove(&key)
            .expect("pending event disappeared")
        {
            Pending::Timeout {
                slot,
                payload,
                attempt,
            } => ClientPoll::Timeout {
                slot,
                payload,
                attempt,
            },
            Pending::Retry { payload, attempt } => ClientPoll::Retry { payload, attempt },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_cap_sheds_above_cap() {
        let mut st = AdmissionState::default();
        let pol = AdmissionPolicy::QueueCap(2);
        assert!(st.admit(&pol));
        st.in_queue = 2;
        assert!(!st.admit(&pol));
        st.in_queue = 1;
        assert!(st.admit(&pol));
    }

    #[test]
    fn codel_requires_sustained_delay_then_drops_until_below_target() {
        let mut st = AdmissionState::default();
        let pol = AdmissionPolicy::CoDel {
            target_ns: 1_000,
            interval_ns: 5_000,
        };
        st.in_queue = 10;
        // Above target, but not yet for a full interval.
        st.observe(&pol, 2_000, 10_000);
        assert!(st.admit(&pol));
        st.observe(&pol, 2_000, 12_000);
        assert!(st.admit(&pol));
        // Interval elapsed with delay still above target: start dropping.
        st.observe(&pol, 2_000, 15_000);
        assert!(st.dropping());
        assert!(!st.admit(&pol));
        // A below-target observation exits dropping immediately.
        st.observe(&pol, 500, 16_000);
        assert!(st.admit(&pol));
        // Re-entering takes a full interval again.
        st.observe(&pol, 2_000, 17_000);
        assert!(st.admit(&pol));
    }

    #[test]
    fn codel_resets_on_empty_queue() {
        let mut st = AdmissionState::default();
        let pol = AdmissionPolicy::CoDel {
            target_ns: 1_000,
            interval_ns: 1_000,
        };
        st.in_queue = 4;
        st.observe(&pol, 5_000, 0);
        st.observe(&pol, 5_000, 2_000);
        assert!(!st.admit(&pol));
        st.in_queue = 0;
        assert!(st.admit(&pol));
        assert!(!st.dropping());
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let retry = RetryPolicy {
            budget: 8,
            base_backoff_ns: 1_000,
            max_backoff_ns: 4_000,
        };
        let mut a = SimRng::new(7).fork(RETRY_STREAM);
        let mut b = SimRng::new(7).fork(RETRY_STREAM);
        for attempt in 2..10u32 {
            let bound = 1_000u64.saturating_mul(1 << (attempt - 2)).min(4_000);
            let d = backoff_full_jitter(&mut a, &retry, attempt);
            assert!(d >= 1 && d <= bound, "attempt {attempt}: {d} vs {bound}");
            assert_eq!(d, backoff_full_jitter(&mut b, &retry, attempt));
        }
    }

    #[test]
    fn poll_orders_pending_before_same_instant_arrival() {
        let params = OverloadParams::disabled()
            .with_deadline_ns(100)
            .with_retry(RetryPolicy::default());
        let mut ov: OpenLoopOverload<u32> = OpenLoopOverload::new(params);
        assert!(matches!(ov.poll(0), ClientPoll::NeedGap));
        ov.set_next_arrival(101);
        let slot = ov.new_slot();
        ov.schedule_timeout(0, slot, 7, 1); // fires at 101 too
        match ov.poll(50) {
            ClientPoll::Sleep(ns) => assert_eq!(ns, 51),
            _ => panic!("expected sleep"),
        }
        assert!(matches!(
            ov.poll(101),
            ClientPoll::Timeout {
                slot: 0,
                payload: 7,
                attempt: 1
            }
        ));
        assert!(matches!(ov.poll(101), ClientPoll::Arrival));
        ov.take_arrival();
        assert!(matches!(ov.poll(101), ClientPoll::NeedGap));
    }

    #[test]
    fn retry_respects_budget() {
        let params = OverloadParams::disabled()
            .with_deadline_ns(100)
            .with_retry(RetryPolicy {
                budget: 2,
                ..RetryPolicy::default()
            });
        let mut ov: OpenLoopOverload<u32> = OpenLoopOverload::new(params);
        let rng = SimRng::new(3);
        assert!(ov.schedule_retry(0, 1, 2, &rng));
        assert!(!ov.schedule_retry(0, 1, 3, &rng));
    }

    #[test]
    fn disabled_params_report_disabled() {
        assert!(!OverloadParams::disabled().enabled());
        assert!(OverloadParams::disabled().with_deadline_ns(1).enabled());
        assert!(OverloadParams::disabled()
            .with_admission(AdmissionPolicy::QueueCap(5))
            .enabled());
        assert!(OverloadParams::disabled()
            .with_retry(RetryPolicy::default())
            .enabled());
    }
}
