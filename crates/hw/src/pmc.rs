//! Performance monitoring counters (PMCs) and the per-core hardware state.
//!
//! BWD reads two counters per 100 µs window: TLB misses and L1D misses. The
//! simulation feeds them from the memory model (priced traversals) and from
//! the average rates of "normal" code. Fractional events are accumulated
//! exactly so that long runs do not drift.

use crate::lbr::Lbr;
use crate::mem::NormalCodeRates;

/// Per-window performance counters.
#[derive(Clone, Debug, Default)]
pub struct Pmc {
    /// Instructions retired in the current window.
    pub instructions: u64,
    /// L1D misses in the current window.
    pub l1d_misses: u64,
    /// TLB misses (any level) in the current window.
    pub tlb_misses: u64,
    /// Fractional accumulators so rate-based feeding is exact over time.
    frac_instr: f64,
    frac_l1d: f64,
    frac_tlb: f64,
}

impl Pmc {
    /// New, zeroed counters.
    pub fn new() -> Self {
        Pmc::default()
    }

    /// Add exact event counts (from a priced memory traversal).
    pub fn add_events(&mut self, instructions: u64, l1d_misses: u64, tlb_misses: u64) {
        self.instructions += instructions;
        self.l1d_misses += l1d_misses;
        self.tlb_misses += tlb_misses;
    }

    /// Add `ns` nanoseconds of normal-code execution at the given rates.
    pub fn add_normal_execution(&mut self, ns: u64, rates: &NormalCodeRates) {
        let instr = ns as f64 * rates.instr_per_ns + self.frac_instr;
        let whole_instr = instr.floor();
        self.frac_instr = instr - whole_instr;
        self.instructions += whole_instr as u64;

        let l1 = whole_instr * rates.l1d_miss_per_instr + self.frac_l1d;
        let whole_l1 = l1.floor();
        self.frac_l1d = l1 - whole_l1;
        self.l1d_misses += whole_l1 as u64;

        let tlb = whole_instr * rates.tlb_miss_per_instr + self.frac_tlb;
        let whole_tlb = tlb.floor();
        self.frac_tlb = tlb - whole_tlb;
        self.tlb_misses += whole_tlb as u64;
    }

    /// Clear the window (fractional accumulators persist — they model
    /// events straddling a window boundary).
    pub fn clear_window(&mut self) {
        self.instructions = 0;
        self.l1d_misses = 0;
        self.tlb_misses = 0;
    }

    /// True if the window saw no cache or TLB misses — the PMC component of
    /// the spin signature.
    #[inline]
    pub fn no_misses(&self) -> bool {
        self.l1d_misses == 0 && self.tlb_misses == 0
    }
}

/// The monitored hardware state of one core: LBR ring + PMCs.
#[derive(Clone, Debug, Default)]
pub struct CoreHw {
    /// Set by every `note_*` recording method, cleared by
    /// [`CoreHw::new_window`]. Every recording method deposits at least
    /// one LBR entry, so this tracks "window touched" exactly — it exists
    /// so [`CoreHw::window_untouched`] (polled once per idle monitoring
    /// tick, on every core) is a one-byte read instead of a walk over the
    /// LBR ring and the counters. Mutating `lbr`/`pmc` directly bypasses
    /// it; the debug assertion in `window_untouched` catches that.
    dirty: bool,
    /// Last-branch-record ring.
    pub lbr: Lbr,
    /// Window performance counters.
    pub pmc: Pmc,
}

impl CoreHw {
    /// Fresh hardware state.
    pub fn new() -> Self {
        CoreHw::default()
    }

    /// Record `ns` of ordinary (non-spinning) execution: varied branches at
    /// roughly one branch per 5 instructions, plus rate-based PMC events.
    pub fn note_normal_execution(&mut self, ns: u64, rates: &NormalCodeRates, addr_salt: u64) {
        self.dirty = true;
        let instr = ns as f64 * rates.instr_per_ns;
        let branches = (instr / 5.0) as u64;
        self.lbr.record_varied(addr_salt, branches.max(1));
        self.pmc.add_normal_execution(ns, rates);
    }

    /// Record a priced memory traversal (exact PMC events, varied branches).
    pub fn note_traversal(
        &mut self,
        instructions: u64,
        l1d_misses: u64,
        tlb_misses: u64,
        addr_salt: u64,
    ) {
        self.dirty = true;
        self.lbr.record_varied(addr_salt, (instructions / 5).max(1));
        self.pmc.add_events(instructions, l1d_misses, tlb_misses);
    }

    /// Record `iterations` of a spin loop with branch signature
    /// `(from, to)`. Spin loops touch no new data: no PMC miss events.
    pub fn note_spin(&mut self, from: u64, to: u64, iterations: u64, instr_per_iter: u64) {
        self.dirty = true;
        self.lbr.record_repeated(from, to, iterations);
        self.pmc.add_events(iterations * instr_per_iter, 0, 0);
    }

    /// Start a new monitoring window (BWD timer fired).
    pub fn new_window(&mut self) {
        self.dirty = false;
        self.lbr.clear();
        self.pmc.clear_window();
    }

    /// True if nothing has been recorded since the last
    /// [`CoreHw::new_window`]: the LBR ring is in its cleared state and
    /// the window counters are zero. An untouched window classifies as
    /// not-spinning (the ring cannot be full) and clearing it again is a
    /// state no-op — the two facts that let an idle core's monitoring
    /// tick skip window inspection entirely. Answered from the dirty
    /// flag, so the idle-tick poll does not fault in the LBR ring.
    #[inline]
    pub fn window_untouched(&self) -> bool {
        debug_assert_eq!(
            !self.dirty,
            self.lbr.valid_entries() == 0 && self.pmc.instructions == 0 && self.pmc.no_misses(),
            "CoreHw dirty flag out of sync (direct lbr/pmc mutation?)"
        );
        !self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_feeding_is_exact_over_many_windows() {
        let rates = NormalCodeRates::default();
        let mut pmc = Pmc::new();
        let mut total_instr = 0u64;
        // 1000 windows of 100 µs.
        for _ in 0..1000 {
            pmc.add_normal_execution(100_000, &rates);
            total_instr += pmc.instructions;
            pmc.clear_window();
        }
        let expected = (100_000.0 * 1000.0 * rates.instr_per_ns) as u64;
        let diff = total_instr.abs_diff(expected);
        assert!(diff <= 1000, "drift too large: {diff}");
    }

    #[test]
    fn normal_execution_produces_misses() {
        let mut hw = CoreHw::new();
        hw.note_normal_execution(100_000, &NormalCodeRates::default(), 1);
        assert!(hw.pmc.l1d_misses > 6000, "expected ~6667 L1 misses");
        assert!(hw.pmc.tlb_misses > 300, "expected ~337 TLB misses");
        assert!(!hw.pmc.no_misses());
        assert!(!hw.lbr.all_identical_backward());
    }

    #[test]
    fn spin_produces_clean_signature() {
        let mut hw = CoreHw::new();
        hw.note_spin(0x5000, 0x4FF0, 10_000, 4);
        assert!(hw.pmc.no_misses());
        assert!(hw.lbr.all_identical_backward());
        assert_eq!(hw.pmc.instructions, 40_000);
    }

    #[test]
    fn spin_then_normal_is_not_spin_signature() {
        let mut hw = CoreHw::new();
        hw.note_spin(0x5000, 0x4FF0, 10_000, 4);
        hw.note_normal_execution(10_000, &NormalCodeRates::default(), 9);
        assert!(!hw.lbr.all_identical_backward());
        assert!(!hw.pmc.no_misses());
    }

    #[test]
    fn new_window_resets_state() {
        let mut hw = CoreHw::new();
        hw.note_spin(0x5000, 0x4FF0, 100, 4);
        hw.new_window();
        assert_eq!(hw.pmc.instructions, 0);
        assert!(!hw.lbr.is_full());
    }

    #[test]
    fn traversal_events_are_exact() {
        let mut pmc = Pmc::new();
        pmc.add_events(1000, 22, 3);
        assert_eq!(pmc.instructions, 1000);
        assert_eq!(pmc.l1d_misses, 22);
        assert_eq!(pmc.tlb_misses, 3);
    }
}
