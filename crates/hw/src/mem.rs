//! Analytic cache / TLB / prefetcher model.
//!
//! Reproduces the memory-system behaviour behind the paper's §2.3 study
//! (Figure 4): the interplay between working-set size, the two-level TLB
//! (64 / 1536 entries of 4 KiB pages => 256 KiB / 6 MiB reach), the cache
//! hierarchy (L1D 32 KiB, L2 256 KiB, L3 45 MiB on the Xeon E5-2695 v4),
//! and the stream prefetcher.
//!
//! The model is *analytic*: instead of simulating individual cache lines it
//! computes expected per-access latencies and miss rates from capacity
//! ratios. That is what makes whole-program simulations of billions of
//! accesses affordable while preserving the crossover points the paper
//! reports (256 KiB, 1–4 MiB, beyond 4 MiB).

/// Memory access pattern of a traversal, as in Figure 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessPattern {
    /// Sequential read (`seq-r`).
    SeqRead,
    /// Sequential read-modify-write (`seq-rmw`).
    SeqRmw,
    /// Random read (`rnd-r`).
    RndRead,
    /// Random read-modify-write (`rnd-rmw`).
    RndRmw,
}

impl AccessPattern {
    /// All four patterns, in the paper's order.
    pub const ALL: [AccessPattern; 4] = [
        AccessPattern::SeqRead,
        AccessPattern::SeqRmw,
        AccessPattern::RndRead,
        AccessPattern::RndRmw,
    ];

    /// Short label used by the figure harness.
    pub fn label(self) -> &'static str {
        match self {
            AccessPattern::SeqRead => "seq-r",
            AccessPattern::SeqRmw => "seq-rmw",
            AccessPattern::RndRead => "rnd-r",
            AccessPattern::RndRmw => "rnd-rmw",
        }
    }

    /// True for the sequential patterns.
    pub fn is_sequential(self) -> bool {
        matches!(self, AccessPattern::SeqRead | AccessPattern::SeqRmw)
    }

    /// True for the read-modify-write patterns.
    pub fn is_rmw(self) -> bool {
        matches!(self, AccessPattern::SeqRmw | AccessPattern::RndRmw)
    }
}

/// Capacities and latencies of the modeled memory system.
#[derive(Clone, Debug)]
pub struct CacheParams {
    /// L1 data cache capacity in bytes.
    pub l1d_bytes: u64,
    /// L2 cache capacity in bytes (per core).
    pub l2_bytes: u64,
    /// L3 cache capacity in bytes (per socket).
    pub l3_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// First-level data TLB entries.
    pub tlb_l1_entries: u64,
    /// Second-level (shared) TLB entries.
    pub tlb_l2_entries: u64,
    /// L1 hit latency (ns).
    pub lat_l1_ns: f64,
    /// Additional latency of an L2 hit over L1 (ns).
    pub lat_l2_ns: f64,
    /// Additional latency of an L3 hit over L2 (ns).
    pub lat_l3_ns: f64,
    /// Additional latency of a local DRAM access over L3 (ns).
    pub lat_dram_ns: f64,
    /// Additional latency of an sTLB hit over an L1 TLB hit (ns).
    pub lat_stlb_ns: f64,
    /// Additional latency of a full page walk (ns).
    pub lat_walk_ns: f64,
    /// Effective per-element cost of a prefetched sequential stream (ns).
    /// The stream prefetcher hides most of the DRAM latency.
    pub seq_stream_ns_per_elem: f64,
    /// Extra per-element cost when a sequential stream's prefetcher has to
    /// retrain (fraction of DRAM latency paid on the first lines).
    pub prefetch_retrain_ns: f64,
    /// Multiplier on DRAM latency for remote-node accesses.
    pub remote_dram_mult: f64,
    /// Sustained refill bandwidth when re-populating caches after a context
    /// switch or migration, in bytes per nanosecond (i.e. GB/s / ~1.07).
    pub refill_bytes_per_ns: f64,
    /// Element size used by the Figure 4 microbenchmark (a `double`).
    pub elem_bytes: u64,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            l1d_bytes: 32 << 10,
            l2_bytes: 256 << 10,
            l3_bytes: 45 << 20,
            line_bytes: 64,
            page_bytes: 4096,
            tlb_l1_entries: 64,
            tlb_l2_entries: 1536,
            lat_l1_ns: 1.0,
            lat_l2_ns: 3.0,
            lat_l3_ns: 10.0,
            lat_dram_ns: 60.0,
            lat_stlb_ns: 1.5,
            lat_walk_ns: 35.0,
            seq_stream_ns_per_elem: 0.55,
            prefetch_retrain_ns: 0.9,
            remote_dram_mult: 1.6,
            // ~45 GB/s sustained refill: calibrated so that re-populating the
            // 45 MiB L3 costs about 1 ms, the indirect cost the paper reports
            // for seq patterns at 128 MiB arrays.
            refill_bytes_per_ns: 47.0,
            elem_bytes: 8,
        }
    }
}

/// Outcome of pricing a traversal: virtual time plus PMC events.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccessOutcome {
    /// Nanoseconds of execution.
    pub ns: u64,
    /// L1D misses incurred.
    pub l1d_misses: u64,
    /// TLB misses incurred (any level).
    pub tlb_misses: u64,
    /// Instructions retired (approximate; ~2 per element for the walk).
    pub instructions: u64,
}

/// Average PMC rates of "normal" (non-spinning) code, from the paper's
/// profile of all 32 benchmarks: 3000 instructions/µs, 1 L1D miss per 45
/// instructions, 1 TLB miss per 890 instructions.
#[derive(Clone, Copy, Debug)]
pub struct NormalCodeRates {
    /// Instructions retired per nanosecond.
    pub instr_per_ns: f64,
    /// L1D misses per instruction.
    pub l1d_miss_per_instr: f64,
    /// TLB misses per instruction.
    pub tlb_miss_per_instr: f64,
}

impl Default for NormalCodeRates {
    fn default() -> Self {
        NormalCodeRates {
            instr_per_ns: 3.0,
            l1d_miss_per_instr: 1.0 / 45.0,
            tlb_miss_per_instr: 1.0 / 890.0,
        }
    }
}

/// The analytic memory model.
#[derive(Clone, Debug, Default)]
pub struct MemModel {
    params: CacheParams,
}

impl MemModel {
    /// Create a model with explicit parameters.
    pub fn new(params: CacheParams) -> Self {
        MemModel { params }
    }

    /// Access to the parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Probability that a random access to a working set of `ws` bytes
    /// misses a cache of `cap` bytes (steady state, fully warm).
    #[inline]
    fn miss_frac(ws: u64, cap: u64) -> f64 {
        if ws <= cap {
            0.0
        } else {
            1.0 - cap as f64 / ws as f64
        }
    }

    /// Expected TLB cost (ns) and miss probability per random access to a
    /// working set of `ws` bytes.
    fn tlb_cost(&self, ws: u64) -> (f64, f64) {
        let p = &self.params;
        let pages = ws.div_ceil(p.page_bytes);
        let l1_reach = p.tlb_l1_entries;
        let l2_reach = p.tlb_l2_entries;
        if pages <= l1_reach {
            (0.0, 0.0)
        } else if pages <= l2_reach {
            let miss_l1 = 1.0 - l1_reach as f64 / pages as f64;
            (miss_l1 * p.lat_stlb_ns, 0.0)
        } else {
            let miss_l1 = 1.0 - l1_reach as f64 / pages as f64;
            let miss_l2 = 1.0 - l2_reach as f64 / pages as f64;
            (miss_l1 * p.lat_stlb_ns + miss_l2 * p.lat_walk_ns, miss_l2)
        }
    }

    /// Expected per-element cost (ns) of a *warm, steady-state* traversal of
    /// a working set of `ws` bytes with the given pattern, plus expected
    /// L1D / TLB miss probabilities per element.
    pub fn per_elem(&self, pattern: AccessPattern, ws: u64) -> (f64, f64, f64) {
        let p = &self.params;
        match pattern {
            AccessPattern::SeqRead | AccessPattern::SeqRmw => {
                // Streaming: the prefetcher hides latency; only 1 in
                // (line/elem) elements touches a new line.
                let elems_per_line = (p.line_bytes / p.elem_bytes).max(1) as f64;
                let mut ns = p.seq_stream_ns_per_elem;
                let line_miss = if ws > p.l1d_bytes {
                    1.0 / elems_per_line
                } else {
                    0.0
                };
                if pattern.is_rmw() && ws > p.l2_bytes {
                    // Dirty lines stream back out; costs extra bandwidth.
                    ns += 0.35;
                }
                // Sequential TLB cost is negligible (1 access per 512
                // elements, speculatively walked).
                (ns, line_miss, 0.0)
            }
            AccessPattern::RndRead | AccessPattern::RndRmw => {
                let mut ns = p.lat_l1_ns;
                let m1 = Self::miss_frac(ws, p.l1d_bytes);
                // The L2 stops filtering quickly once the set exceeds it
                // (random access thrashes it): saturating ramp.
                let m2 = if ws <= p.l2_bytes {
                    0.0
                } else {
                    (((ws - p.l2_bytes) as f64) / p.l2_bytes as f64).min(1.0)
                };
                let m3 = Self::miss_frac(ws, p.l3_bytes);
                ns += m1 * p.lat_l2_ns + m2 * p.lat_l3_ns + m3 * p.lat_dram_ns;
                if pattern.is_rmw() {
                    // Dirty lines are written back at least to L3 (paper
                    // §2.3: the L2 is not a filter for RMW traffic).
                    ns += m1 * p.lat_l3_ns * 0.6;
                }
                let (tlb_ns, tlb_walk_p) = self.tlb_cost(ws);
                ns += tlb_ns;
                // Count a "TLB miss" PMC event for both sTLB hits and walks.
                let pages = ws.div_ceil(p.page_bytes);
                let tlb_miss_p = if pages <= p.tlb_l1_entries {
                    0.0
                } else {
                    (1.0 - p.tlb_l1_entries as f64 / pages as f64).max(tlb_walk_p)
                };
                (ns, m1, tlb_miss_p)
            }
        }
    }

    /// Price a traversal of `elems` elements over a working set of `ws`
    /// bytes, assuming warm caches.
    pub fn traversal(&self, pattern: AccessPattern, ws: u64, elems: u64) -> AccessOutcome {
        let (ns, l1_p, tlb_p) = self.per_elem(pattern, ws);
        AccessOutcome {
            ns: (ns * elems as f64) as u64,
            l1d_misses: (l1_p * elems as f64) as u64,
            tlb_misses: (tlb_p * elems as f64) as u64,
            instructions: elems * 2,
        }
    }

    /// Cost of re-warming caches after another thread polluted them: the
    /// evicted resident footprint must be refilled. `footprint` is the bytes
    /// this thread had resident; pollution is bounded by the L3 (inclusive
    /// hierarchy: beyond L3 the data was never cached anyway).
    pub fn pollution_refill_ns(&self, footprint: u64) -> u64 {
        let p = &self.params;
        let evicted = footprint.min(p.l3_bytes);
        (evicted as f64 / p.refill_bytes_per_ns) as u64
    }

    /// Full context-switch cache penalty when `incoming` replaces a thread
    /// whose resident footprint was `previous` on the same core:
    ///
    /// - if the two footprints together overflow the private L2, the
    ///   incoming thread refills its private levels from L3 (cheap);
    /// - if they together overflow the shared L3, the incoming thread
    ///   additionally refetches its L3-resident share from DRAM — this is
    ///   the ~1 ms penalty the paper measures for 128 MiB arrays;
    /// - TLB entries evicted by the other thread are re-walked.
    ///
    /// `incoming_random` states whether the incoming thread's accesses
    /// are random. Sequential streams pay the full bandwidth-bound refill
    /// of everything evicted (the prefetched stream must be refetched
    /// before it is useful); random access rebuilds residency inline with
    /// its ordinary misses, so only the latency-bound L2 and TLB re-warm
    /// costs appear as extra stalls.
    pub fn switch_penalty_ns(&self, incoming: u64, previous: u64, incoming_random: bool) -> u64 {
        if incoming == 0 || previous == 0 {
            return 0;
        }
        let p = &self.params;
        let combined = incoming.saturating_add(previous);
        let mut ns = 0u64;
        if combined > p.l2_bytes {
            if incoming_random {
                // Latency-bound refill of the evicted private lines,
                // overlapped by memory-level parallelism (~6 outstanding
                // misses on this class of core).
                let lines = incoming.min(p.l1d_bytes + p.l2_bytes) / p.line_bytes;
                ns += (lines as f64 * p.lat_l3_ns / 6.0) as u64;
            } else {
                ns += self.private_refill_ns(incoming);
            }
        }
        if combined > p.l3_bytes && !incoming_random {
            let from_dram = incoming.min(p.l3_bytes);
            ns += (from_dram as f64 / p.refill_bytes_per_ns) as u64;
        }
        // Shared-TLB pollution: pages the other thread displaced must be
        // re-walked (bounded by the sTLB size).
        let prev_pages = previous / p.page_bytes;
        if prev_pages > p.tlb_l1_entries {
            let my_pages = (incoming / p.page_bytes).min(p.tlb_l2_entries);
            let displaced = my_pages.min(prev_pages);
            ns += (displaced as f64 * p.lat_walk_ns * 0.5) as u64;
        }
        ns
    }

    /// Pollution cost when only the private levels (L1+L2) were evicted —
    /// the common case for a context switch to a sibling thread whose
    /// footprint fits in L2; the L3 still holds both.
    pub fn private_refill_ns(&self, footprint: u64) -> u64 {
        let p = &self.params;
        let evicted = footprint.min(p.l2_bytes + p.l1d_bytes);
        // Refilling from L3 is much faster than from DRAM.
        (evicted as f64 / (p.refill_bytes_per_ns * 3.0)) as u64
    }

    /// One-off cost of a thread migration: the cache-resident working set
    /// must be refetched on the destination. Cross-node migrations refetch
    /// from the remote socket's cache/DRAM and cost proportionally more.
    pub fn migration_refill_ns(&self, footprint: u64, cross_node: bool) -> u64 {
        let p = &self.params;
        let moved = footprint.min(p.l2_bytes * 4); // hot set, not whole L3
        let base = moved as f64 / p.refill_bytes_per_ns * 4.0;
        if cross_node {
            (base * p.remote_dram_mult) as u64
        } else {
            base as u64
        }
    }

    /// Extra cost a sequential stream pays right after a context switch:
    /// the prefetcher must retrain and the first lines miss.
    pub fn prefetch_retrain_ns(&self, elems_until_trained: u64) -> u64 {
        (self.params.prefetch_retrain_ns * elems_until_trained as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MemModel {
        MemModel::default()
    }

    #[test]
    fn tiny_working_sets_hit_l1() {
        let m = model();
        let (ns, l1, tlb) = m.per_elem(AccessPattern::RndRead, 16 << 10);
        assert!(ns <= m.params().lat_l1_ns + 0.01);
        assert_eq!(l1, 0.0);
        assert_eq!(tlb, 0.0);
    }

    #[test]
    fn random_cost_increases_with_working_set() {
        let m = model();
        let sizes = [32u64 << 10, 256 << 10, 2 << 20, 16 << 20, 128 << 20];
        let costs: Vec<f64> = sizes
            .iter()
            .map(|&s| m.per_elem(AccessPattern::RndRead, s).0)
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] > w[0], "cost must grow with ws: {costs:?}");
        }
    }

    #[test]
    fn tlb_reach_thresholds_match_paper() {
        let m = model();
        // 64 entries * 4KiB = 256KiB reach: below => no TLB cost.
        let (_, _, tlb_small) = m.per_elem(AccessPattern::RndRead, 256 << 10);
        assert_eq!(tlb_small, 0.0);
        // Above L1 TLB reach: misses appear.
        let (_, _, tlb_mid) = m.per_elem(AccessPattern::RndRead, 1 << 20);
        assert!(tlb_mid > 0.0);
        // Beyond sTLB reach (6 MiB): page walks too.
        let (ns_big, _, _) = m.per_elem(AccessPattern::RndRead, 64 << 20);
        let (ns_mid, _, _) = m.per_elem(AccessPattern::RndRead, 4 << 20);
        assert!(ns_big > ns_mid + m.params().lat_walk_ns * 0.3);
    }

    #[test]
    fn halving_random_working_set_helps_when_tlb_bound() {
        // The core TLB effect behind Figure 4: at 512 KiB total, a 256 KiB
        // sub-array fits the L1 TLB reach while the full array does not.
        let m = model();
        let full = m.per_elem(AccessPattern::RndRead, 512 << 10).0;
        let half = m.per_elem(AccessPattern::RndRead, 256 << 10).0;
        assert!(half < full);
        // And at 128 MiB, a 64 MiB sub-array still beats the full array
        // (fewer page walks).
        let full = m.per_elem(AccessPattern::RndRead, 128 << 20).0;
        let half = m.per_elem(AccessPattern::RndRead, 64 << 20).0;
        assert!(half < full);
    }

    #[test]
    fn rmw_is_never_cheaper_than_read() {
        let m = model();
        for shift in 14..27 {
            let ws = 1u64 << shift;
            let r = m.per_elem(AccessPattern::RndRead, ws).0;
            let w = m.per_elem(AccessPattern::RndRmw, ws).0;
            assert!(w >= r, "rmw {w} < read {r} at ws {ws}");
            let r = m.per_elem(AccessPattern::SeqRead, ws).0;
            let w = m.per_elem(AccessPattern::SeqRmw, ws).0;
            assert!(w >= r);
        }
    }

    #[test]
    fn sequential_is_much_cheaper_than_random_when_large() {
        let m = model();
        let ws = 64 << 20;
        let seq = m.per_elem(AccessPattern::SeqRead, ws).0;
        let rnd = m.per_elem(AccessPattern::RndRead, ws).0;
        assert!(rnd > 10.0 * seq);
    }

    #[test]
    fn traversal_scales_linearly() {
        let m = model();
        let a = m.traversal(AccessPattern::RndRead, 8 << 20, 1000);
        let b = m.traversal(AccessPattern::RndRead, 8 << 20, 2000);
        assert!((b.ns as f64 / a.ns as f64 - 2.0).abs() < 0.01);
        assert!(b.l1d_misses >= a.l1d_misses);
        assert_eq!(b.instructions, 2 * a.instructions);
    }

    #[test]
    fn pollution_refill_bounded_by_l3() {
        let m = model();
        let small = m.pollution_refill_ns(1 << 20);
        let big = m.pollution_refill_ns(1 << 30);
        let l3 = m.pollution_refill_ns(m.params().l3_bytes);
        assert!(small < big);
        assert_eq!(big, l3, "refill saturates at L3 capacity");
        // Calibration target: ~1 ms to refill a full L3 (paper's 128 MiB
        // seq indirect cost).
        assert!((900_000..1_200_000).contains(&big), "L3 refill = {big} ns");
    }

    #[test]
    fn cross_node_migration_costs_more() {
        let m = model();
        let local = m.migration_refill_ns(1 << 20, false);
        let remote = m.migration_refill_ns(1 << 20, true);
        assert!(remote > local);
    }

    #[test]
    fn normal_code_rates_match_paper_profile() {
        let r = NormalCodeRates::default();
        // Per 100 µs window: ~300k instructions, ~6667 L1 misses, ~337 TLB
        // misses (paper §3.2).
        let instr = r.instr_per_ns * 100_000.0;
        assert!((instr - 300_000.0).abs() < 1.0);
        let l1 = instr * r.l1d_miss_per_instr;
        assert!((l1 - 6666.7).abs() < 10.0);
        let tlb = instr * r.tlb_miss_per_instr;
        assert!((tlb - 337.0).abs() < 2.0);
    }
}
