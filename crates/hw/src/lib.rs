//! Hardware models for the thread-oversubscription simulator.
//!
//! This crate models the *observable* hardware behaviour the paper's
//! mechanisms depend on:
//!
//! - [`topology`]: sockets / cores / SMT layout of the machine slice a
//!   container sees.
//! - [`mem`]: an analytic cache + TLB + prefetcher model that prices memory
//!   traversals and produces the PMC events (L1D / TLB misses) the
//!   busy-waiting detector consumes. Parameters default to the paper's
//!   Xeon E5-2695 v4 testbed.
//! - [`lbr`]: the 16-entry last-branch-record ring.
//! - [`pmc`]: per-window performance counters and the combined per-core
//!   monitored state [`pmc::CoreHw`].

pub mod lbr;
pub mod mem;
pub mod pmc;
pub mod topology;

pub use lbr::{BranchRecord, Lbr, LBR_ENTRIES};
pub use mem::{AccessOutcome, AccessPattern, CacheParams, MemModel, NormalCodeRates};
pub use pmc::{CoreHw, Pmc};
pub use topology::{CpuId, NodeId, Topology};
