//! Machine topology: sockets (NUMA nodes), cores, and SMT siblings.
//!
//! The paper's testbed is a dual-socket Xeon E5-2695 v4 class machine
//! (2 x 18 cores, hyper-threading). Experiments run inside containers
//! restricted to a subset of logical CPUs; [`Topology`] describes the CPUs
//! visible to one experiment.

/// Identifier of a logical CPU (hardware thread).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CpuId(pub usize);

/// Identifier of a NUMA node (socket).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Layout of the logical CPUs available to a run.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Number of logical CPUs.
    cpus: usize,
    /// NUMA node of each CPU.
    node_of: Vec<NodeId>,
    /// Physical core of each CPU (SMT siblings share one).
    core_of: Vec<usize>,
    /// Number of NUMA nodes.
    nodes: usize,
    /// SMT width (1 = HT off, 2 = HT on).
    smt: usize,
}

impl Topology {
    /// A single-node machine with `cpus` physical cores, SMT off.
    pub fn flat(cpus: usize) -> Self {
        assert!(cpus > 0, "topology needs at least one cpu");
        Topology {
            cpus,
            node_of: vec![NodeId(0); cpus],
            core_of: (0..cpus).collect(),
            nodes: 1,
            smt: 1,
        }
    }

    /// A machine with `nodes` NUMA nodes, `cores_per_node` physical cores
    /// each and `smt` hardware threads per core. CPUs are numbered
    /// node-major, then core, then sibling.
    pub fn numa(nodes: usize, cores_per_node: usize, smt: usize) -> Self {
        assert!(nodes > 0 && cores_per_node > 0 && smt > 0);
        let cpus = nodes * cores_per_node * smt;
        let mut node_of = Vec::with_capacity(cpus);
        let mut core_of = Vec::with_capacity(cpus);
        for n in 0..nodes {
            for c in 0..cores_per_node {
                for _ in 0..smt {
                    node_of.push(NodeId(n));
                    core_of.push(n * cores_per_node + c);
                }
            }
        }
        Topology {
            cpus,
            node_of,
            core_of,
            nodes,
            smt,
        }
    }

    /// The paper's container config "8 cores": 8 physical cores split
    /// across the two sockets (4 + 4), SMT off.
    pub fn paper_8_cores() -> Self {
        Topology::numa(2, 4, 1)
    }

    /// The paper's container config "8 hyperthreads on 4 cores": one
    /// socket, 4 physical cores, SMT on.
    pub fn paper_8_hyperthreads() -> Self {
        Topology::numa(1, 4, 2)
    }

    /// `n` physical cores balanced across two sockets (the paper's scaling
    /// experiments use 2..=32 cores of the dual 18-core machine). For
    /// `n <= 18` a single socket is used, mirroring how containers are
    /// usually packed before spilling to the second socket.
    pub fn paper_n_cores(n: usize) -> Self {
        assert!(n > 0);
        if n <= 18 {
            Topology::numa(1, n, 1)
        } else {
            // Split as evenly as possible; requires even n for simplicity.
            let per = n / 2;
            let mut t = Topology::numa(2, per, 1);
            if n % 2 == 1 {
                // Odd: add one extra cpu on node 0.
                t.node_of.push(NodeId(0));
                t.core_of.push(t.cpus);
                t.cpus += 1;
            }
            t
        }
    }

    /// Number of logical CPUs.
    #[inline]
    pub fn num_cpus(&self) -> usize {
        self.cpus
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// SMT width (hardware threads per physical core).
    #[inline]
    pub fn smt(&self) -> usize {
        self.smt
    }

    /// NUMA node of a CPU.
    #[inline]
    pub fn node_of(&self, cpu: CpuId) -> NodeId {
        self.node_of[cpu.0]
    }

    /// Physical core index of a CPU.
    #[inline]
    pub fn core_of(&self, cpu: CpuId) -> usize {
        self.core_of[cpu.0]
    }

    /// True if the two CPUs are SMT siblings on the same physical core.
    #[inline]
    pub fn siblings(&self, a: CpuId, b: CpuId) -> bool {
        a != b && self.core_of[a.0] == self.core_of[b.0]
    }

    /// True if the two CPUs share a NUMA node.
    #[inline]
    pub fn same_node(&self, a: CpuId, b: CpuId) -> bool {
        self.node_of[a.0] == self.node_of[b.0]
    }

    /// Iterator over all CPU ids.
    pub fn cpu_ids(&self) -> impl Iterator<Item = CpuId> + '_ {
        (0..self.cpus).map(CpuId)
    }

    /// CPUs belonging to a node.
    pub fn cpus_of_node(&self, node: NodeId) -> Vec<CpuId> {
        self.cpu_ids()
            .filter(|&c| self.node_of(c) == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_has_one_node() {
        let t = Topology::flat(8);
        assert_eq!(t.num_cpus(), 8);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.smt(), 1);
        assert!(t.same_node(CpuId(0), CpuId(7)));
        assert!(!t.siblings(CpuId(0), CpuId(1)));
    }

    #[test]
    fn numa_topology_assigns_nodes() {
        let t = Topology::numa(2, 4, 1);
        assert_eq!(t.num_cpus(), 8);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.node_of(CpuId(0)), NodeId(0));
        assert_eq!(t.node_of(CpuId(4)), NodeId(1));
        assert!(!t.same_node(CpuId(3), CpuId(4)));
    }

    #[test]
    fn smt_siblings_share_core() {
        let t = Topology::paper_8_hyperthreads();
        assert_eq!(t.num_cpus(), 8);
        assert_eq!(t.smt(), 2);
        assert!(t.siblings(CpuId(0), CpuId(1)));
        assert!(!t.siblings(CpuId(1), CpuId(2)));
        assert_eq!(t.core_of(CpuId(2)), t.core_of(CpuId(3)));
    }

    #[test]
    fn paper_n_cores_splits_past_socket() {
        let t = Topology::paper_n_cores(16);
        assert_eq!(t.num_nodes(), 1);
        let t = Topology::paper_n_cores(32);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_cpus(), 32);
        assert_eq!(t.cpus_of_node(NodeId(0)).len(), 16);
    }

    #[test]
    fn cpus_of_node_partition_the_machine() {
        let t = Topology::numa(2, 3, 2);
        let n0 = t.cpus_of_node(NodeId(0));
        let n1 = t.cpus_of_node(NodeId(1));
        assert_eq!(n0.len() + n1.len(), t.num_cpus());
        for c in n0 {
            assert_eq!(t.node_of(c), NodeId(0));
        }
    }

    #[test]
    #[should_panic]
    fn zero_cpus_panics() {
        Topology::flat(0);
    }
}
