//! Last Branch Record (LBR) model.
//!
//! Intel CPUs expose a small ring of the most recently retired branches as
//! `(from, to)` virtual-address pairs. The paper's busy-waiting detector
//! configures the LBR to *exclude call/return branches* and reads the ring
//! every 100 µs: a full ring of 16 identical backward branches is the spin
//! signature.
//!
//! In the simulation, executed code segments report their branches here.
//! Spin loops report one identical backward branch per iteration; ordinary
//! code reports a varied stream of branch addresses.

/// Number of LBR entries on the paper's Broadwell platform.
pub const LBR_ENTRIES: usize = 16;

/// One recorded branch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub from: u64,
    /// Branch target address.
    pub to: u64,
}

impl BranchRecord {
    /// A backward branch jumps to an earlier address (loops).
    #[inline]
    pub fn is_backward(&self) -> bool {
        self.to < self.from
    }
}

/// The per-core LBR ring.
#[derive(Clone, Debug)]
pub struct Lbr {
    ring: [BranchRecord; LBR_ENTRIES],
    /// Number of valid entries since the last clear (caps at LBR_ENTRIES).
    valid: usize,
    /// Next slot to overwrite.
    head: usize,
    /// Total branches recorded since the last clear (can exceed ring size).
    recorded_since_clear: u64,
}

impl Default for Lbr {
    fn default() -> Self {
        Self::new()
    }
}

impl Lbr {
    /// An empty ring.
    pub fn new() -> Self {
        Lbr {
            ring: [BranchRecord::default(); LBR_ENTRIES],
            valid: 0,
            head: 0,
            recorded_since_clear: 0,
        }
    }

    /// Record a single retired branch.
    #[inline]
    pub fn record(&mut self, from: u64, to: u64) {
        self.ring[self.head] = BranchRecord { from, to };
        self.head = (self.head + 1) % LBR_ENTRIES;
        if self.valid < LBR_ENTRIES {
            self.valid += 1;
        }
        self.recorded_since_clear += 1;
    }

    /// Record the same branch `count` times (bulk path for spin loops; the
    /// ring ends up in the same state as `count` individual records).
    pub fn record_repeated(&mut self, from: u64, to: u64, count: u64) {
        if count == 0 {
            return;
        }
        let reps = count.min(LBR_ENTRIES as u64) as usize;
        for _ in 0..reps {
            self.ring[self.head] = BranchRecord { from, to };
            self.head = (self.head + 1) % LBR_ENTRIES;
        }
        self.valid = (self.valid + reps).min(LBR_ENTRIES);
        self.recorded_since_clear += count;
    }

    /// Record a stream of varied branches, as ordinary code does. The
    /// addresses are synthesized from `base` so that consecutive entries
    /// differ and include forward branches.
    pub fn record_varied(&mut self, base: u64, count: u64) {
        if count == 0 {
            return;
        }
        let reps = count.min(LBR_ENTRIES as u64);
        for i in 0..reps {
            let k = base.wrapping_add(i.wrapping_mul(0x9E37)) & 0xFFFF;
            // Alternate forward and backward branches at varied addresses.
            let from = 0x40_0000 + k * 64;
            let to = if i % 2 == 0 { from + 128 } else { from - 96 };
            self.record(from, to);
        }
        self.recorded_since_clear += count.saturating_sub(reps);
    }

    /// Number of valid entries since the last clear (<= 16).
    #[inline]
    pub fn valid_entries(&self) -> usize {
        self.valid
    }

    /// True if all 16 entries have been filled since the last clear — a BWD
    /// precondition (guards against short intervals mislabeling).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.valid == LBR_ENTRIES
    }

    /// Total branches recorded since the last clear.
    #[inline]
    pub fn recorded_since_clear(&self) -> u64 {
        self.recorded_since_clear
    }

    /// Snapshot of the valid entries (unordered; BWD only checks equality).
    pub fn entries(&self) -> &[BranchRecord] {
        &self.ring[..self.valid]
    }

    /// True if every valid entry is the same backward branch and the ring is
    /// full — the raw LBR component of the spin signature.
    pub fn all_identical_backward(&self) -> bool {
        if !self.is_full() {
            return false;
        }
        let first = self.ring[0];
        first.is_backward() && self.ring.iter().all(|r| *r == first)
    }

    /// Clear the ring for the next monitoring period.
    pub fn clear(&mut self) {
        self.valid = 0;
        self.head = 0;
        self.recorded_since_clear = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_is_not_spin() {
        let l = Lbr::new();
        assert!(!l.is_full());
        assert!(!l.all_identical_backward());
        assert_eq!(l.valid_entries(), 0);
    }

    #[test]
    fn identical_backward_branches_fill_signature() {
        let mut l = Lbr::new();
        l.record_repeated(0x1000, 0x0FF0, 100);
        assert!(l.is_full());
        assert!(l.all_identical_backward());
        assert_eq!(l.recorded_since_clear(), 100);
    }

    #[test]
    fn forward_branches_are_not_spin() {
        let mut l = Lbr::new();
        l.record_repeated(0x1000, 0x1010, 100); // forward
        assert!(l.is_full());
        assert!(!l.all_identical_backward());
    }

    #[test]
    fn underfilled_ring_is_not_spin() {
        let mut l = Lbr::new();
        l.record_repeated(0x1000, 0x0FF0, 10);
        assert!(!l.is_full());
        assert!(!l.all_identical_backward());
    }

    #[test]
    fn varied_stream_is_not_spin() {
        let mut l = Lbr::new();
        l.record_varied(12345, 64);
        assert!(l.is_full());
        assert!(!l.all_identical_backward());
    }

    #[test]
    fn mixed_stream_is_not_spin() {
        let mut l = Lbr::new();
        l.record_repeated(0x1000, 0x0FF0, 15);
        l.record(0x2000, 0x2040);
        assert!(l.is_full());
        assert!(!l.all_identical_backward());
    }

    #[test]
    fn spin_after_normal_code_overwrites_ring() {
        let mut l = Lbr::new();
        l.record_varied(7, 40);
        l.record_repeated(0x1000, 0x0FF0, 16);
        assert!(l.all_identical_backward());
    }

    #[test]
    fn clear_resets_everything() {
        let mut l = Lbr::new();
        l.record_repeated(0x1000, 0x0FF0, 50);
        l.clear();
        assert_eq!(l.valid_entries(), 0);
        assert_eq!(l.recorded_since_clear(), 0);
        assert!(!l.all_identical_backward());
    }

    #[test]
    fn bulk_and_individual_records_agree() {
        let mut a = Lbr::new();
        let mut b = Lbr::new();
        a.record_repeated(0x1000, 0x0FF0, 23);
        for _ in 0..23 {
            b.record(0x1000, 0x0FF0);
        }
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.recorded_since_clear(), b.recorded_since_clear());
    }
}
