//! Property tests of the analytic memory model and the monitored hardware
//! state.

use oversub_hw::{AccessPattern, CoreHw, Lbr, MemModel, NormalCodeRates};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Per-element cost is always positive and finite, and RMW never beats
    /// the read variant of the same pattern.
    #[test]
    fn per_elem_sane(ws in 1024u64..(1u64 << 31)) {
        let m = MemModel::default();
        for p in AccessPattern::ALL {
            let (ns, l1, tlb) = m.per_elem(p, ws);
            prop_assert!(ns.is_finite() && ns > 0.0);
            prop_assert!((0.0..=1.0).contains(&l1));
            prop_assert!((0.0..=1.0).contains(&tlb));
        }
        let r = m.per_elem(AccessPattern::RndRead, ws).0;
        let w = m.per_elem(AccessPattern::RndRmw, ws).0;
        prop_assert!(w >= r);
        let sr = m.per_elem(AccessPattern::SeqRead, ws).0;
        let sw = m.per_elem(AccessPattern::SeqRmw, ws).0;
        prop_assert!(sw >= sr);
        // Sequential streaming is never worse than random access.
        prop_assert!(sr <= r + 1e-9);
    }

    /// Random-read cost is monotone in working-set size.
    #[test]
    fn rnd_cost_monotone(a in 4096u64..(1u64 << 30), b in 4096u64..(1u64 << 30)) {
        let m = MemModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let cl = m.per_elem(AccessPattern::RndRead, lo).0;
        let ch = m.per_elem(AccessPattern::RndRead, hi).0;
        prop_assert!(ch + 1e-9 >= cl, "cost decreased: {cl} -> {ch} for {lo} -> {hi}");
    }

    /// Traversal pricing is (near-)linear in the element count.
    #[test]
    fn traversal_linear(ws in 4096u64..(1u64 << 28), elems in 100u64..100_000) {
        let m = MemModel::default();
        let one = m.traversal(AccessPattern::RndRead, ws, elems);
        let two = m.traversal(AccessPattern::RndRead, ws, elems * 2);
        let ratio = two.ns as f64 / one.ns.max(1) as f64;
        prop_assert!((1.98..=2.02).contains(&ratio), "ratio {ratio}");
    }

    /// The switch penalty is zero without a previous footprint and
    /// bounded; once the combined footprints spill the shared L3, the
    /// sequential penalty (full bandwidth-bound refetch) dominates the
    /// random one (inline residency rebuild).
    #[test]
    fn switch_penalty_bounds(inc in 0u64..(1u64 << 31), prev in 0u64..(1u64 << 31)) {
        let m = MemModel::default();
        prop_assert_eq!(m.switch_penalty_ns(inc, 0, true), 0);
        prop_assert_eq!(m.switch_penalty_ns(0, prev, false), 0);
        let rnd = m.switch_penalty_ns(inc, prev, true);
        let seq = m.switch_penalty_ns(inc, prev, false);
        if inc.saturating_add(prev) > m.params().l3_bytes {
            prop_assert!(rnd <= seq, "rnd {rnd} > seq {seq} beyond L3");
        }
        // Even the worst cases stay far below 10 ms.
        prop_assert!(seq < 10_000_000);
        prop_assert!(rnd < 10_000_000);
    }

    /// Migration refill grows with footprint and is dearer cross-node.
    #[test]
    fn migration_refill_monotone(f1 in 0u64..(1u64 << 28), f2 in 0u64..(1u64 << 28)) {
        let m = MemModel::default();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(m.migration_refill_ns(lo, false) <= m.migration_refill_ns(hi, false));
        prop_assert!(m.migration_refill_ns(hi, true) >= m.migration_refill_ns(hi, false));
    }

    /// The LBR ring state after any branch sequence equals a 16-entry
    /// sliding window of it.
    #[test]
    fn lbr_is_a_sliding_window(branches in proptest::collection::vec((0u64..1000, 0u64..1000), 1..80)) {
        let mut lbr = Lbr::new();
        for &(f, t) in &branches {
            lbr.record(f, t);
        }
        prop_assert_eq!(lbr.recorded_since_clear(), branches.len() as u64);
        let window: Vec<(u64, u64)> = branches
            .iter()
            .rev()
            .take(16)
            .copied()
            .collect();
        let mut got: Vec<(u64, u64)> = lbr.entries().iter().map(|r| (r.from, r.to)).collect();
        got.sort_unstable();
        let mut expect = window;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// A spin signature is only reported when the window is pure spin:
    /// appending even one varied-branch run destroys it.
    #[test]
    fn spin_signature_requires_purity(iters in 16u64..10_000, tail in 1u64..16) {
        let mut hw = CoreHw::new();
        hw.note_spin(0x9000, 0x8FF0, iters, 4);
        prop_assert!(hw.lbr.all_identical_backward());
        hw.note_normal_execution(tail * 1_000, &NormalCodeRates::default(), 3);
        prop_assert!(!hw.lbr.all_identical_backward() || hw.pmc.l1d_misses > 0);
    }
}
