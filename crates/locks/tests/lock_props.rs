#![allow(clippy::needless_range_loop)]

//! Property tests of the lock state machines: mutual exclusion, no lost
//! grants, and progress under arbitrary acquire/release interleavings.

use oversub_locks::{
    Barrier, BarrierEffect, BlockingMutex, CondVar, MutexAcquire, MutexKind, MutexRelease,
    SemEffect, Semaphore, SpinEffect, SpinLock, SpinPolicy,
};
use oversub_task::{FutexKey, TaskId};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_policy() -> impl Strategy<Value = SpinPolicy> {
    (0usize..10).prop_map(|i| SpinPolicy::all()[i])
}

fn arb_kind() -> impl Strategy<Value = MutexKind> {
    prop_oneof![
        Just(MutexKind::Pthread),
        (1_000u64..100_000).prop_map(|s| MutexKind::Mutexee { spin_ns: s }),
        (1_000u64..100_000).prop_map(|s| MutexKind::McsTp { spin_ns: s }),
        (1_000u64..100_000).prop_map(|s| MutexKind::Shfllock { spin_ns: s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Spinlocks: with N contenders repeatedly acquiring and releasing,
    /// every task completes exactly its rounds and the lock ends free —
    /// for every policy (mutual exclusion + no lost grants + progress).
    #[test]
    fn spinlock_no_lost_grants(
        policy in arb_policy(),
        n in 2usize..8,
        rounds in 1usize..12,
        nodes in 1usize..3,
    ) {
        let mut l = SpinLock::new(policy, 7);
        let mut remaining = vec![rounds; n];
        let mut waiting: Vec<TaskId> = Vec::new();
        let mut holder: Option<TaskId> = None;
        let mut steps = 0usize;
        loop {
            steps += 1;
            prop_assert!(steps < n * rounds * 8 + 64, "no progress");
            // Any task that still needs rounds and is not engaged tries to
            // acquire.
            for i in 0..n {
                let t = TaskId(i);
                if remaining[i] > 0 && holder != Some(t) && !waiting.contains(&t) {
                    match l.acquire(t, i % nodes) {
                        SpinEffect::Acquired { .. } => {
                            prop_assert!(holder.is_none(), "two holders");
                            holder = Some(t);
                        }
                        SpinEffect::MustSpin { sig } => {
                            prop_assert!(sig.is_backward());
                            waiting.push(t);
                        }
                    }
                }
            }
            match holder {
                Some(h) => {
                    // Critical section done: release.
                    remaining[h.0] -= 1;
                    let (_, granted) = l.release(h, h.0 % nodes);
                    holder = None;
                    // All spinners poll: a granted one (or, under barging,
                    // whoever is claimable) takes the lock.
                    let next = granted
                        .or_else(|| waiting.iter().copied().find(|&w| l.claimable_by(w)));
                    if let Some(w) = next {
                        prop_assert!(l.try_claim(w).is_some(), "heir cannot claim");
                        waiting.retain(|&x| x != w);
                        prop_assert_eq!(l.holder(), Some(w));
                        holder = Some(w);
                    }
                }
                None => {
                    if remaining.iter().all(|&r| r == 0) {
                        break;
                    }
                    prop_assert!(
                        !waiting.is_empty() || remaining.iter().any(|&r| r > 0),
                        "stuck"
                    );
                    // Lock free: a waiter claims (FIFO head or barge).
                    if let Some(w) =
                        waiting.iter().copied().find(|&w| l.claimable_by(w))
                    {
                        prop_assert!(l.try_claim(w).is_some());
                        waiting.retain(|&x| x != w);
                        holder = Some(w);
                    }
                }
            }
        }
        prop_assert!(l.holder().is_none());
        prop_assert_eq!(l.num_waiters(), 0);
    }

    /// Blocking mutexes: the release hand-off designates exactly one next
    /// holder, and every waiter eventually gets the lock once.
    #[test]
    fn mutex_handoff_is_exclusive_and_complete(
        kind in arb_kind(),
        n in 2usize..10,
        nodes in 1usize..3,
    ) {
        let mut m = BlockingMutex::new(kind, FutexKey(0x9000));
        let mut got: HashSet<usize> = HashSet::new();
        // Task 0 takes the lock; 1..n contend.
        assert!(matches!(m.acquire(TaskId(0), 0), MutexAcquire::Acquired { .. }));
        for i in 1..n {
            match m.acquire(TaskId(i), i % nodes) {
                MutexAcquire::Acquired { .. } => prop_assert!(false, "mutual exclusion broken"),
                MutexAcquire::Park { .. } | MutexAcquire::SpinThenPark { .. } => {}
            }
        }
        got.insert(0);
        let mut holder = TaskId(0);
        for _ in 1..n {
            let (_, rel) = m.release(holder, holder.0 % nodes);
            let next = match rel {
                MutexRelease::GrantSpinner(w) => w,
                MutexRelease::WakeParked { futex } => {
                    // The futex key identifies the woken waiter for
                    // queue-kinds; for pthread it is the shared word. In
                    // both cases the heir is the granted task: find it by
                    // claim-retry.
                    let heir = (0..n)
                        .map(TaskId)
                        .find(|&t| {
                            !got.contains(&t.0) && {
                                m.note_wake_retry(t);
                                matches!(
                                    m.acquire(t, t.0 % nodes),
                                    MutexAcquire::Acquired { .. }
                                )
                            }
                        });
                    let _ = futex;
                    match heir {
                        Some(h) => {
                            got.insert(h.0);
                            holder = h;
                            continue;
                        }
                        None => {
                            prop_assert!(false, "no heir could claim");
                            unreachable!()
                        }
                    }
                }
                MutexRelease::None => {
                    prop_assert!(false, "waiters lost");
                    unreachable!()
                }
            };
            let cost = m.try_claim(next);
            prop_assert!(cost.is_some(), "granted spinner cannot claim");
            prop_assert!(got.insert(next.0), "double grant to {next:?}");
            holder = next;
        }
        let (_, rel) = m.release(holder, 0);
        prop_assert_eq!(rel, MutexRelease::None);
        prop_assert_eq!(got.len(), n);
    }

    /// Barriers: for any party count and round count, every round releases
    /// exactly parties-1 sleepers and the generation advances once.
    #[test]
    fn barrier_generations(parties in 1usize..16, rounds in 1usize..8) {
        let mut b = Barrier::new(parties, FutexKey(0x40));
        for r in 0..rounds {
            for arrival in 0..parties {
                match b.arrive() {
                    BarrierEffect::Wait { .. } => {
                        prop_assert!(arrival + 1 < parties, "last arrival must release");
                    }
                    BarrierEffect::ReleaseAll { wake_n, .. } => {
                        prop_assert_eq!(arrival + 1, parties);
                        prop_assert_eq!(wake_n, parties - 1);
                    }
                }
            }
            prop_assert_eq!(b.generation(), (r + 1) as u64);
        }
    }

    /// Semaphores: token count is conserved across arbitrary P/V mixes.
    #[test]
    fn semaphore_token_conservation(
        initial in 0i64..8,
        ops in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut s = Semaphore::new(initial, FutexKey(0x50));
        let mut model = initial;
        for is_post in ops {
            if is_post {
                let wake = s.post();
                prop_assert_eq!(wake.is_some(), model < 0);
                model += 1;
            } else {
                let eff = s.wait();
                model -= 1;
                prop_assert_eq!(matches!(eff, SemEffect::Acquired), model >= 0);
            }
            prop_assert_eq!(s.count(), model);
        }
    }

    /// Condvars: waiter counting is exact; broadcast drains everyone.
    #[test]
    fn condvar_counts(waits in 0usize..20, signals in 0usize..25) {
        let mut cv = CondVar::new(FutexKey(0x60));
        for _ in 0..waits {
            cv.wait();
        }
        let mut woken = 0usize;
        for _ in 0..signals {
            woken += cv.signal().1;
        }
        prop_assert_eq!(woken, waits.min(signals));
        let (_, rest) = cv.broadcast();
        prop_assert_eq!(woken + rest, waits);
        prop_assert_eq!(cv.num_waiters(), 0);
    }
}
