//! The spinlock algorithms studied in the paper (Figure 13, Table 2).
//!
//! Ten algorithms from the SHFLLOCK study [Kashyap et al., SOSP'19] are
//! modeled: alock-ls, CLH, Malthusian, MCS, partitioned ticket, pthread
//! spinlock, ticket, TTAS, CNA, and AQS. For the oversubscription study
//! what distinguishes them is:
//!
//! - **grant order**: FIFO queues (MCS/CLH/ticket/...) vs barging
//!   (TTAS/pthread) vs NUMA-grouped FIFO (CNA/AQS);
//! - **loop shape**: whether the wait loop executes PAUSE/NOP (visible to
//!   hardware pause-loop exiting in VMs) or is a bare load loop (invisible);
//! - **costs**: uncontended acquire/release and contended hand-off costs.
//!
//! All of them busy-wait, so all of them melt down when oversubscribed and
//! are rescued by BWD — which is exactly Figure 13's result.
//!
//! The lock objects here are *pure state machines*: they track the holder
//! and the waiting set and emit effects (`Acquired` / `MustSpin`); the
//! simulation engine charges time, runs the spin loops, and applies grants.

use oversub_task::{SpinSig, TaskId};

/// Hand-off discipline of a spinlock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GrantOrder {
    /// Strict arrival order (queue-based locks).
    Fifo,
    /// Free-for-all: the first waiter to observe the release wins.
    Barge,
    /// Arrival order, but waiters on the releaser's NUMA node first.
    NumaFifo,
}

/// Static description of one spinlock algorithm.
#[derive(Clone, Copy, Debug)]
pub struct SpinPolicy {
    /// Canonical name as used in the paper's figures.
    pub name: &'static str,
    /// Hand-off discipline.
    pub order: GrantOrder,
    /// Whether the wait loop contains PAUSE/NOP (PLE-visible in VMs).
    pub pause: bool,
    /// Uncontended acquire cost.
    pub acquire_cost_ns: u64,
    /// Release cost.
    pub release_cost_ns: u64,
    /// Extra cost on a contended hand-off (cacheline transfer to waiter).
    pub handoff_cost_ns: u64,
}

impl SpinPolicy {
    /// Anderson's array lock with local spinning.
    pub fn alock_ls() -> Self {
        SpinPolicy {
            name: "alock-ls",
            order: GrantOrder::Fifo,
            pause: false,
            acquire_cost_ns: 28,
            release_cost_ns: 18,
            handoff_cost_ns: 55,
        }
    }

    /// CLH queue lock (spin on predecessor's node).
    pub fn clh() -> Self {
        SpinPolicy {
            name: "clh",
            order: GrantOrder::Fifo,
            pause: false,
            acquire_cost_ns: 30,
            release_cost_ns: 15,
            handoff_cost_ns: 60,
        }
    }

    /// Malthusian lock (culls the active waiter set; we model its spin
    /// phase — the culling appears as spin-then-park in `blocking`).
    pub fn malth() -> Self {
        SpinPolicy {
            name: "malth",
            order: GrantOrder::Fifo,
            pause: true,
            acquire_cost_ns: 35,
            release_cost_ns: 22,
            handoff_cost_ns: 65,
        }
    }

    /// MCS queue lock.
    pub fn mcs() -> Self {
        SpinPolicy {
            name: "mcs",
            order: GrantOrder::Fifo,
            pause: false,
            acquire_cost_ns: 32,
            release_cost_ns: 20,
            handoff_cost_ns: 60,
        }
    }

    /// Partitioned ticket lock.
    pub fn partitioned() -> Self {
        SpinPolicy {
            name: "partitioned",
            order: GrantOrder::Fifo,
            pause: false,
            acquire_cost_ns: 26,
            release_cost_ns: 16,
            handoff_cost_ns: 50,
        }
    }

    /// pthread spinlock (TTAS with PAUSE, Figure 6 left).
    pub fn pthread() -> Self {
        SpinPolicy {
            name: "pthread",
            order: GrantOrder::Barge,
            pause: true,
            acquire_cost_ns: 20,
            release_cost_ns: 12,
            handoff_cost_ns: 45,
        }
    }

    /// Classic ticket lock (global spinning with PAUSE).
    pub fn ticket() -> Self {
        SpinPolicy {
            name: "ticket",
            order: GrantOrder::Fifo,
            pause: true,
            acquire_cost_ns: 18,
            release_cost_ns: 10,
            handoff_cost_ns: 70,
        }
    }

    /// Test-and-test-and-set (bare loop).
    pub fn ttas() -> Self {
        SpinPolicy {
            name: "ttas",
            order: GrantOrder::Barge,
            pause: false,
            acquire_cost_ns: 16,
            release_cost_ns: 10,
            handoff_cost_ns: 48,
        }
    }

    /// Compact NUMA-aware lock.
    pub fn cna() -> Self {
        SpinPolicy {
            name: "cna",
            order: GrantOrder::NumaFifo,
            pause: false,
            acquire_cost_ns: 34,
            release_cost_ns: 24,
            handoff_cost_ns: 52,
        }
    }

    /// AQS (adaptive queued spinlock from the SHFLLOCK family).
    pub fn aqs() -> Self {
        SpinPolicy {
            name: "aqs",
            order: GrantOrder::NumaFifo,
            pause: false,
            acquire_cost_ns: 33,
            release_cost_ns: 22,
            handoff_cost_ns: 54,
        }
    }

    /// All ten algorithms, in the paper's Figure 13 order.
    pub fn all() -> Vec<SpinPolicy> {
        vec![
            Self::alock_ls(),
            Self::clh(),
            Self::malth(),
            Self::mcs(),
            Self::partitioned(),
            Self::pthread(),
            Self::ticket(),
            Self::ttas(),
            Self::cna(),
            Self::aqs(),
        ]
    }

    /// Look up a policy by its figure label.
    pub fn by_name(name: &str) -> Option<SpinPolicy> {
        Self::all().into_iter().find(|p| p.name == name)
    }
}

/// Effect of an acquire attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpinEffect {
    /// Lock taken; charge this much time.
    Acquired {
        /// Acquire cost.
        cost_ns: u64,
    },
    /// Contended: the caller must busy-wait with this loop shape until the
    /// engine grants it the lock.
    MustSpin {
        /// The wait loop's code signature.
        sig: SpinSig,
    },
}

/// A spinlock instance.
#[derive(Debug)]
pub struct SpinLock {
    policy: SpinPolicy,
    sig: SpinSig,
    holder: Option<TaskId>,
    /// Waiters in arrival order, with the NUMA node they wait on.
    waiters: Vec<(TaskId, usize)>,
    /// Task the lock has been handed to on release (FIFO orders); it
    /// completes its acquire when it next runs / notices.
    granted: Option<TaskId>,
    /// Statistics.
    pub acquisitions: u64,
    /// Statistics: acquisitions that had to spin first.
    pub contended: u64,
}

impl SpinLock {
    /// Create a lock with the given policy; `salt` differentiates the spin
    /// loop addresses of distinct lock sites.
    pub fn new(policy: SpinPolicy, salt: u64) -> Self {
        let sig = if policy.pause {
            SpinSig::pause_loop(salt)
        } else {
            SpinSig::bare_loop(salt)
        };
        SpinLock {
            policy,
            sig,
            holder: None,
            waiters: Vec::new(),
            granted: None,
            acquisitions: 0,
            contended: 0,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> &SpinPolicy {
        &self.policy
    }

    /// The wait loop's signature.
    pub fn sig(&self) -> SpinSig {
        self.sig
    }

    /// Current holder.
    pub fn holder(&self) -> Option<TaskId> {
        self.holder
    }

    /// Number of tasks currently spinning on this lock.
    pub fn num_waiters(&self) -> usize {
        self.waiters.len()
    }

    /// Attempt to acquire by `tid` waiting on NUMA `node`.
    pub fn acquire(&mut self, tid: TaskId, node: usize) -> SpinEffect {
        debug_assert_ne!(self.holder, Some(tid), "{tid:?} re-acquiring spinlock");
        if self.holder.is_none() && self.granted.is_none() && self.waiters.is_empty() {
            self.holder = Some(tid);
            self.acquisitions += 1;
            SpinEffect::Acquired {
                cost_ns: self.policy.acquire_cost_ns,
            }
        } else {
            self.waiters.push((tid, node));
            SpinEffect::MustSpin { sig: self.sig }
        }
    }

    /// Release by the holder on NUMA `node`. Returns
    /// `(cost_ns, granted_task)`: for FIFO disciplines the next waiter is
    /// chosen here; for barging, `None` is returned and any spinner may
    /// claim the free lock via [`SpinLock::try_claim`].
    pub fn release(&mut self, tid: TaskId, node: usize) -> (u64, Option<TaskId>) {
        debug_assert_eq!(self.holder, Some(tid), "release by non-holder {tid:?}");
        self.holder = None;
        let cost = self.policy.release_cost_ns;
        if self.waiters.is_empty() {
            return (cost, None);
        }
        let next = match self.policy.order {
            GrantOrder::Barge => None,
            GrantOrder::Fifo => Some(0),
            GrantOrder::NumaFifo => {
                // First waiter on the releaser's node, else global FIFO.
                Some(
                    self.waiters
                        .iter()
                        .position(|&(_, n)| n == node)
                        .unwrap_or(0),
                )
            }
        };
        match next {
            Some(idx) => {
                let (w, _) = self.waiters.remove(idx);
                self.granted = Some(w);
                (cost, Some(w))
            }
            None => (cost, None),
        }
    }

    /// A running spinner notices the lock state. Returns `Acquired` cost if
    /// `tid` may take the lock now (it was granted to it, or the lock is
    /// free under barging and `tid` wins).
    pub fn try_claim(&mut self, tid: TaskId) -> Option<u64> {
        if self.granted == Some(tid) {
            self.granted = None;
            self.holder = Some(tid);
            self.acquisitions += 1;
            self.contended += 1;
            return Some(self.policy.handoff_cost_ns);
        }
        if self.policy.order == GrantOrder::Barge && self.holder.is_none() && self.granted.is_none()
        {
            if let Some(pos) = self.waiters.iter().position(|&(w, _)| w == tid) {
                self.waiters.remove(pos);
                self.holder = Some(tid);
                self.acquisitions += 1;
                self.contended += 1;
                return Some(self.policy.handoff_cost_ns);
            }
        }
        None
    }

    /// True if `tid` could claim the lock right now (without mutating).
    pub fn claimable_by(&self, tid: TaskId) -> bool {
        self.granted == Some(tid)
            || (self.policy.order == GrantOrder::Barge
                && self.holder.is_none()
                && self.granted.is_none()
                && self.waiters.iter().any(|&(w, _)| w == tid))
    }

    /// The task a release has designated as next holder (diagnostics).
    pub fn granted(&self) -> Option<TaskId> {
        self.granted
    }

    /// Current waiters in arrival order (diagnostics).
    pub fn waiters(&self) -> Vec<TaskId> {
        self.waiters.iter().map(|&(t, _)| t).collect()
    }

    /// Remove `tid` from the waiting set (task exiting / converting to a
    /// parked wait). Returns true if it was waiting.
    pub fn cancel_wait(&mut self, tid: TaskId) -> bool {
        if self.granted == Some(tid) {
            // Already granted: the caller must claim instead.
            return false;
        }
        match self.waiters.iter().position(|&(w, _)| w == tid) {
            Some(pos) => {
                self.waiters.remove(pos);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_have_unique_names() {
        let all = SpinPolicy::all();
        assert_eq!(all.len(), 10);
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn by_name_finds_policies() {
        assert_eq!(SpinPolicy::by_name("mcs").unwrap().name, "mcs");
        assert!(SpinPolicy::by_name("nope").is_none());
    }

    #[test]
    fn uncontended_acquire_release() {
        let mut l = SpinLock::new(SpinPolicy::ttas(), 1);
        let e = l.acquire(TaskId(0), 0);
        assert!(matches!(e, SpinEffect::Acquired { .. }));
        assert_eq!(l.holder(), Some(TaskId(0)));
        let (cost, next) = l.release(TaskId(0), 0);
        assert!(cost > 0);
        assert!(next.is_none());
        assert_eq!(l.holder(), None);
        assert_eq!(l.acquisitions, 1);
    }

    #[test]
    fn fifo_grant_order() {
        let mut l = SpinLock::new(SpinPolicy::mcs(), 1);
        l.acquire(TaskId(0), 0);
        assert!(matches!(
            l.acquire(TaskId(1), 0),
            SpinEffect::MustSpin { .. }
        ));
        assert!(matches!(
            l.acquire(TaskId(2), 0),
            SpinEffect::MustSpin { .. }
        ));
        let (_, next) = l.release(TaskId(0), 0);
        assert_eq!(next, Some(TaskId(1)), "FIFO grants the first waiter");
        assert!(l.claimable_by(TaskId(1)));
        assert!(!l.claimable_by(TaskId(2)));
        assert!(l.try_claim(TaskId(2)).is_none());
        let cost = l.try_claim(TaskId(1)).expect("granted claim");
        assert_eq!(cost, l.policy().handoff_cost_ns);
        assert_eq!(l.holder(), Some(TaskId(1)));
        assert_eq!(l.contended, 1);
    }

    #[test]
    fn barge_lets_any_spinner_claim() {
        let mut l = SpinLock::new(SpinPolicy::ttas(), 1);
        l.acquire(TaskId(0), 0);
        l.acquire(TaskId(1), 0);
        l.acquire(TaskId(2), 0);
        let (_, next) = l.release(TaskId(0), 0);
        assert!(next.is_none(), "barging has no designated heir");
        // Task 2 (arrived later) can barge in.
        assert!(l.claimable_by(TaskId(2)));
        assert!(l.try_claim(TaskId(2)).is_some());
        // Now task 1 cannot claim.
        assert!(l.try_claim(TaskId(1)).is_none());
        assert_eq!(l.num_waiters(), 1);
    }

    #[test]
    fn numa_fifo_prefers_local_waiters() {
        let mut l = SpinLock::new(SpinPolicy::cna(), 1);
        l.acquire(TaskId(0), 0);
        l.acquire(TaskId(1), 1); // remote node
        l.acquire(TaskId(2), 0); // local node
        let (_, next) = l.release(TaskId(0), 0);
        assert_eq!(next, Some(TaskId(2)), "local waiter preferred");
        // When no local waiter remains, falls back to FIFO.
        l.try_claim(TaskId(2));
        let (_, next) = l.release(TaskId(2), 0);
        assert_eq!(next, Some(TaskId(1)));
    }

    #[test]
    fn pause_flag_flows_into_signature() {
        let l = SpinLock::new(SpinPolicy::pthread(), 3);
        assert!(l.sig().uses_pause);
        let l = SpinLock::new(SpinPolicy::mcs(), 3);
        assert!(!l.sig().uses_pause);
        assert!(l.sig().is_backward());
    }

    #[test]
    fn cancel_wait_removes_waiter() {
        let mut l = SpinLock::new(SpinPolicy::mcs(), 1);
        l.acquire(TaskId(0), 0);
        l.acquire(TaskId(1), 0);
        assert!(l.cancel_wait(TaskId(1)));
        assert!(!l.cancel_wait(TaskId(1)));
        let (_, next) = l.release(TaskId(0), 0);
        assert!(next.is_none());
    }

    #[test]
    fn cancel_of_granted_waiter_fails() {
        let mut l = SpinLock::new(SpinPolicy::mcs(), 1);
        l.acquire(TaskId(0), 0);
        l.acquire(TaskId(1), 0);
        l.release(TaskId(0), 0);
        assert!(!l.cancel_wait(TaskId(1)), "granted waiter must claim");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn double_acquire_panics_in_debug() {
        let mut l = SpinLock::new(SpinPolicy::ttas(), 1);
        l.acquire(TaskId(0), 0);
        l.acquire(TaskId(0), 0);
    }
}
