//! Blocking synchronization primitives built over the futex substrate:
//! the pthread-style mutex, condition variable, barrier, and semaphore —
//! plus the spin-then-park mutexes compared in the paper's §4.4
//! (Mutexee, MCS-TP, and SHFLLOCK).
//!
//! Like the spinlocks, these are pure state machines: they decide *who*
//! should block/wake on *which futex key*, and the engine performs the
//! actual `futex_wait` / `futex_wake` with all the kernel costs attached.

use oversub_task::{FutexKey, SpinSig, TaskId};
use std::collections::VecDeque;

/// Uncontended fast-path cost of a user-space lock/unlock CAS.
pub const FAST_PATH_NS: u64 = 25;

/// Flavour of a blocking mutex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutexKind {
    /// glibc-style futex mutex: failed CAS parks immediately.
    Pthread,
    /// Mutexee [Falsafi et al., ATC'16]: spin briefly, then park.
    Mutexee {
        /// Spin budget before parking.
        spin_ns: u64,
    },
    /// MCS time-published [He et al., HiPC'05]: FIFO queue of spinners
    /// with a timeout that parks the waiter.
    McsTp {
        /// Spin budget before parking.
        spin_ns: u64,
    },
    /// SHFLLOCK [Kashyap et al., SOSP'19]: queue with NUMA-aware
    /// shuffling; waiters spin briefly and park; release prefers waiters
    /// on the releaser's socket.
    Shfllock {
        /// Spin budget before parking.
        spin_ns: u64,
    },
}

impl MutexKind {
    /// Label used in Figure 15.
    pub fn label(&self) -> &'static str {
        match self {
            MutexKind::Pthread => "pthread",
            MutexKind::Mutexee { .. } => "mutexee",
            MutexKind::McsTp { .. } => "mcstp",
            MutexKind::Shfllock { .. } => "shfllock",
        }
    }

    /// Spin budget of the kind's waiting phase (0 for pthread).
    pub fn spin_budget_ns(&self) -> u64 {
        match *self {
            MutexKind::Pthread => 0,
            MutexKind::Mutexee { spin_ns }
            | MutexKind::McsTp { spin_ns }
            | MutexKind::Shfllock { spin_ns } => spin_ns,
        }
    }
}

/// Effect of a mutex acquire attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MutexAcquire {
    /// Fast path: lock taken.
    Acquired {
        /// User-space cost.
        cost_ns: u64,
    },
    /// Contended, park immediately on this futex key.
    Park {
        /// Key to `futex_wait` on.
        futex: FutexKey,
    },
    /// Contended, spin with this signature for up to `spin_ns`, then park.
    SpinThenPark {
        /// Wait-loop shape.
        sig: SpinSig,
        /// Spin budget.
        spin_ns: u64,
        /// Key to park on when the budget runs out.
        futex: FutexKey,
    },
}

/// What the engine must do after a mutex release.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MutexRelease {
    /// No waiters.
    None,
    /// Hand the lock to a currently-spinning waiter (it claims via
    /// [`BlockingMutex::try_claim`] when it notices).
    GrantSpinner(TaskId),
    /// Wake one parked waiter from this futex key; it will retry.
    WakeParked {
        /// Key to `futex_wake(1)`.
        futex: FutexKey,
    },
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum WaiterPhase {
    Spinning,
    Parked,
}

/// A blocking mutex instance.
#[derive(Debug)]
pub struct BlockingMutex {
    kind: MutexKind,
    /// Base futex key (the user-space mutex word).
    futex: FutexKey,
    sig: SpinSig,
    holder: Option<TaskId>,
    /// All contended waiters in arrival order with their phase and node.
    waiters: VecDeque<(TaskId, WaiterPhase, usize)>,
    /// A spinner the release designated (FIFO kinds).
    granted: Option<TaskId>,
    /// Statistics.
    pub acquisitions: u64,
    /// Statistics: acquisitions that ran the slow path.
    pub contended: u64,
}

impl BlockingMutex {
    /// New mutex; `futex` is its user-space word.
    pub fn new(kind: MutexKind, futex: FutexKey) -> Self {
        BlockingMutex {
            kind,
            futex,
            sig: SpinSig::pause_loop(futex.0 ^ 0x5151),
            holder: None,
            waiters: VecDeque::new(),
            granted: None,
            acquisitions: 0,
            contended: 0,
        }
    }

    /// The mutex kind.
    pub fn kind(&self) -> MutexKind {
        self.kind
    }

    /// Current holder.
    pub fn holder(&self) -> Option<TaskId> {
        self.holder
    }

    /// The futex key waiters park on.
    pub fn futex_key(&self) -> FutexKey {
        self.futex
    }

    /// The futex key a specific waiter parks on. The pthread mutex parks
    /// everyone on the mutex word; the queue-based kinds (Mutexee, MCS-TP,
    /// SHFLLOCK) park each waiter on its own queue node so that releases
    /// can wake a *specific* waiter (direct hand-off).
    pub fn futex_key_for(&self, tid: TaskId) -> FutexKey {
        match self.kind {
            MutexKind::Pthread => self.futex,
            _ => FutexKey(self.futex.0 + 64 * (tid.0 as u64 + 1)),
        }
    }

    /// Spin signature of the spin-then-park phase.
    pub fn sig(&self) -> SpinSig {
        self.sig
    }

    /// Number of contended waiters (spinning + parked).
    pub fn num_waiters(&self) -> usize {
        self.waiters.len()
    }

    /// Attempt to acquire.
    pub fn acquire(&mut self, tid: TaskId, node: usize) -> MutexAcquire {
        debug_assert_ne!(self.holder, Some(tid), "{tid:?} re-locking mutex");
        // Direct hand-off: a release may have designated this (parked,
        // now woken) waiter as the next holder.
        if self.granted == Some(tid) {
            self.granted = None;
            self.holder = Some(tid);
            self.acquisitions += 1;
            return MutexAcquire::Acquired {
                cost_ns: FAST_PATH_NS,
            };
        }
        if self.holder.is_none() && self.granted.is_none() && self.waiters.is_empty() {
            self.holder = Some(tid);
            self.acquisitions += 1;
            return MutexAcquire::Acquired {
                cost_ns: FAST_PATH_NS,
            };
        }
        self.contended += 1;
        match self.kind {
            MutexKind::Pthread => {
                self.waiters.push_back((tid, WaiterPhase::Parked, node));
                MutexAcquire::Park {
                    futex: self.futex_key_for(tid),
                }
            }
            MutexKind::Mutexee { spin_ns }
            | MutexKind::McsTp { spin_ns }
            | MutexKind::Shfllock { spin_ns } => {
                self.waiters.push_back((tid, WaiterPhase::Spinning, node));
                MutexAcquire::SpinThenPark {
                    sig: self.sig,
                    spin_ns,
                    futex: self.futex_key_for(tid),
                }
            }
        }
    }

    /// The spin budget of `tid` ran out: it parks on the futex now.
    pub fn note_parked(&mut self, tid: TaskId) {
        if let Some(w) = self.waiters.iter_mut().find(|w| w.0 == tid) {
            w.1 = WaiterPhase::Parked;
        }
    }

    /// A parked waiter woke up and is retrying: it is removed from the
    /// waiter set and must call [`BlockingMutex::acquire`] again (this is
    /// the barging retry loop of real futex mutexes).
    pub fn note_wake_retry(&mut self, tid: TaskId) {
        if let Some(pos) = self.waiters.iter().position(|w| w.0 == tid) {
            self.waiters.remove(pos);
        }
    }

    /// Release by the holder on NUMA `node`.
    pub fn release(&mut self, tid: TaskId, node: usize) -> (u64, MutexRelease) {
        debug_assert_eq!(self.holder, Some(tid), "unlock by non-holder {tid:?}");
        self.holder = None;
        if self.waiters.is_empty() {
            return (FAST_PATH_NS, MutexRelease::None);
        }
        match self.kind {
            MutexKind::Pthread | MutexKind::Mutexee { .. } => {
                // Prefer granting a spinner (mutexee's whole point); fall
                // back to handing off to the first parked waiter.
                let pos = self
                    .waiters
                    .iter()
                    .position(|w| w.1 == WaiterPhase::Spinning)
                    .unwrap_or(0);
                let (w, phase, _) = self.waiters.remove(pos).expect("non-empty");
                self.granted = Some(w);
                match phase {
                    WaiterPhase::Spinning => (FAST_PATH_NS, MutexRelease::GrantSpinner(w)),
                    WaiterPhase::Parked => (
                        FAST_PATH_NS,
                        MutexRelease::WakeParked {
                            futex: self.futex_key_for(w),
                        },
                    ),
                }
            }
            MutexKind::McsTp { .. } => {
                // Strict FIFO: hand off to the head whether it spins or
                // sleeps.
                let (w, phase, _) = self.waiters.pop_front().expect("non-empty");
                self.granted = Some(w);
                match phase {
                    WaiterPhase::Spinning => (FAST_PATH_NS, MutexRelease::GrantSpinner(w)),
                    WaiterPhase::Parked => (
                        FAST_PATH_NS,
                        MutexRelease::WakeParked {
                            futex: self.futex_key_for(w),
                        },
                    ),
                }
            }
            MutexKind::Shfllock { .. } => {
                // Shuffling: prefer a spinner on the releaser's node, then
                // any spinner, then a same-node parked waiter, then the
                // parked head (NUMA-aware wake order).
                let pos = self
                    .waiters
                    .iter()
                    .position(|w| w.1 == WaiterPhase::Spinning && w.2 == node)
                    .or_else(|| {
                        self.waiters
                            .iter()
                            .position(|w| w.1 == WaiterPhase::Spinning)
                    })
                    .or_else(|| self.waiters.iter().position(|w| w.2 == node))
                    .unwrap_or(0);
                let (w, phase, _) = self.waiters.remove(pos).expect("non-empty");
                self.granted = Some(w);
                // Shuffling costs extra queue manipulation.
                match phase {
                    WaiterPhase::Spinning => (FAST_PATH_NS + 60, MutexRelease::GrantSpinner(w)),
                    WaiterPhase::Parked => (
                        FAST_PATH_NS + 60,
                        MutexRelease::WakeParked {
                            futex: self.futex_key_for(w),
                        },
                    ),
                }
            }
        }
    }

    /// A spinning waiter notices the lock: claim if granted to it, or if
    /// the lock is free and barging is possible (pthread/mutexee retry).
    pub fn try_claim(&mut self, tid: TaskId) -> Option<u64> {
        if self.granted == Some(tid) {
            self.granted = None;
            self.holder = Some(tid);
            self.acquisitions += 1;
            return Some(FAST_PATH_NS);
        }
        None
    }

    /// True if `tid` has been granted the lock.
    pub fn claimable_by(&self, tid: TaskId) -> bool {
        self.granted == Some(tid)
    }

    /// FIFO order of parked waiters for this mutex's futex queue — used by
    /// tests to validate agreement with the futex table.
    pub fn parked_waiters(&self) -> Vec<TaskId> {
        self.waiters
            .iter()
            .filter(|w| w.1 == WaiterPhase::Parked)
            .map(|w| w.0)
            .collect()
    }
}

/// A POSIX-style condition variable.
#[derive(Debug)]
pub struct CondVar {
    futex: FutexKey,
    waiters: usize,
}

impl CondVar {
    /// New condition variable parking on `futex`.
    pub fn new(futex: FutexKey) -> Self {
        CondVar { futex, waiters: 0 }
    }

    /// The futex key waiters sleep on.
    pub fn futex_key(&self) -> FutexKey {
        self.futex
    }

    /// Current waiter count.
    pub fn num_waiters(&self) -> usize {
        self.waiters
    }

    /// Begin a wait: the caller must release its mutex and `futex_wait` on
    /// the returned key.
    pub fn wait(&mut self) -> FutexKey {
        self.waiters += 1;
        self.futex
    }

    /// Wake one waiter. Returns how many to wake on the futex.
    pub fn signal(&mut self) -> (FutexKey, usize) {
        let n = usize::from(self.waiters > 0);
        self.waiters -= n;
        (self.futex, n)
    }

    /// Wake all waiters (the paper's group-wakeup stress case).
    pub fn broadcast(&mut self) -> (FutexKey, usize) {
        let n = self.waiters;
        self.waiters = 0;
        (self.futex, n)
    }
}

/// Effect of arriving at a barrier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BarrierEffect {
    /// Not the last arrival: block on the futex key.
    Wait {
        /// Key to `futex_wait` on.
        futex: FutexKey,
    },
    /// Last arrival: wake the other `wake_n` parties and continue.
    ReleaseAll {
        /// Key to `futex_wake` on.
        futex: FutexKey,
        /// Number of blocked parties to wake.
        wake_n: usize,
    },
}

/// A counting barrier over a futex.
#[derive(Debug)]
pub struct Barrier {
    parties: usize,
    arrived: usize,
    generation: u64,
    futex: FutexKey,
}

impl Barrier {
    /// Barrier for `parties` tasks, parking on `futex`.
    pub fn new(parties: usize, futex: FutexKey) -> Self {
        assert!(parties >= 1);
        Barrier {
            parties,
            arrived: 0,
            generation: 0,
            futex,
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Completed generations.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Arrive at the barrier.
    pub fn arrive(&mut self) -> BarrierEffect {
        self.arrived += 1;
        if self.arrived == self.parties {
            let wake_n = self.arrived - 1;
            self.arrived = 0;
            self.generation += 1;
            BarrierEffect::ReleaseAll {
                futex: self.futex,
                wake_n,
            }
        } else {
            BarrierEffect::Wait { futex: self.futex }
        }
    }
}

/// A counting semaphore over a futex.
#[derive(Debug)]
pub struct Semaphore {
    count: i64,
    futex: FutexKey,
}

/// Effect of a semaphore P operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SemEffect {
    /// Token taken.
    Acquired,
    /// Must block on the futex.
    Wait {
        /// Key to `futex_wait` on.
        futex: FutexKey,
    },
}

impl Semaphore {
    /// Semaphore with `initial` tokens, parking on `futex`.
    pub fn new(initial: i64, futex: FutexKey) -> Self {
        Semaphore {
            count: initial,
            futex,
        }
    }

    /// Current token count (negative = waiters).
    pub fn count(&self) -> i64 {
        self.count
    }

    /// P: take a token or block.
    pub fn wait(&mut self) -> SemEffect {
        self.count -= 1;
        if self.count >= 0 {
            SemEffect::Acquired
        } else {
            SemEffect::Wait { futex: self.futex }
        }
    }

    /// V: release a token; returns `(futex, 1)` if a waiter should wake.
    pub fn post(&mut self) -> Option<(FutexKey, usize)> {
        self.count += 1;
        if self.count <= 0 {
            Some((self.futex, 1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u64) -> FutexKey {
        FutexKey(v)
    }

    #[test]
    fn pthread_mutex_uncontended() {
        let mut m = BlockingMutex::new(MutexKind::Pthread, key(0x10));
        let e = m.acquire(TaskId(0), 0);
        assert!(matches!(e, MutexAcquire::Acquired { .. }));
        let (_, r) = m.release(TaskId(0), 0);
        assert_eq!(r, MutexRelease::None);
        assert_eq!(m.acquisitions, 1);
        assert_eq!(m.contended, 0);
    }

    #[test]
    fn pthread_mutex_parks_and_wakes() {
        let mut m = BlockingMutex::new(MutexKind::Pthread, key(0x10));
        m.acquire(TaskId(0), 0);
        let e = m.acquire(TaskId(1), 0);
        assert_eq!(e, MutexAcquire::Park { futex: key(0x10) });
        assert_eq!(m.num_waiters(), 1);
        let (_, r) = m.release(TaskId(0), 0);
        assert_eq!(r, MutexRelease::WakeParked { futex: key(0x10) });
        // The woken task retries.
        m.note_wake_retry(TaskId(1));
        let e = m.acquire(TaskId(1), 0);
        assert!(matches!(e, MutexAcquire::Acquired { .. }));
    }

    #[test]
    fn handoff_blocks_bargers_until_heir_claims() {
        let mut m = BlockingMutex::new(MutexKind::Pthread, key(0x10));
        m.acquire(TaskId(0), 0);
        m.acquire(TaskId(1), 0);
        let (_, r) = m.release(TaskId(0), 0);
        assert_eq!(r, MutexRelease::WakeParked { futex: key(0x10) });
        // Task1 is the designated heir: task2 cannot barge in.
        let e2 = m.acquire(TaskId(2), 0);
        assert_eq!(e2, MutexAcquire::Park { futex: key(0x10) });
        m.note_wake_retry(TaskId(1));
        let e1 = m.acquire(TaskId(1), 0);
        assert!(matches!(e1, MutexAcquire::Acquired { .. }));
        assert_eq!(m.holder(), Some(TaskId(1)));
    }

    #[test]
    fn mutexee_spins_then_parks() {
        let mut m = BlockingMutex::new(MutexKind::Mutexee { spin_ns: 3000 }, key(0x20));
        m.acquire(TaskId(0), 0);
        let e = m.acquire(TaskId(1), 0);
        match e {
            MutexAcquire::SpinThenPark { spin_ns, futex, .. } => {
                assert_eq!(spin_ns, 3000);
                // Queue-based kinds park on per-waiter keys.
                assert_eq!(futex, m.futex_key_for(TaskId(1)));
                assert_ne!(futex, key(0x20));
            }
            other => panic!("expected spin-then-park, got {other:?}"),
        }
        // While still spinning, release grants directly.
        let (_, r) = m.release(TaskId(0), 0);
        assert_eq!(r, MutexRelease::GrantSpinner(TaskId(1)));
        assert!(m.claimable_by(TaskId(1)));
        assert!(m.try_claim(TaskId(1)).is_some());
        assert_eq!(m.holder(), Some(TaskId(1)));
    }

    #[test]
    fn mutexee_wakes_parked_when_no_spinner() {
        let mut m = BlockingMutex::new(MutexKind::Mutexee { spin_ns: 3000 }, key(0x20));
        m.acquire(TaskId(0), 0);
        m.acquire(TaskId(1), 0);
        m.note_parked(TaskId(1)); // spin budget expired
        let (_, r) = m.release(TaskId(0), 0);
        assert_eq!(
            r,
            MutexRelease::WakeParked {
                futex: m.futex_key_for(TaskId(1))
            }
        );
        // The woken waiter claims via the granted fast path.
        m.note_wake_retry(TaskId(1));
        assert!(matches!(
            m.acquire(TaskId(1), 0),
            MutexAcquire::Acquired { .. }
        ));
    }

    #[test]
    fn mcstp_is_fifo_even_when_head_parked() {
        let mut m = BlockingMutex::new(MutexKind::McsTp { spin_ns: 1000 }, key(0x30));
        m.acquire(TaskId(0), 0);
        m.acquire(TaskId(1), 0);
        m.acquire(TaskId(2), 0);
        m.note_parked(TaskId(1)); // head parked, tail still spinning
        let (_, r) = m.release(TaskId(0), 0);
        // FIFO: must wake the parked head, not grant the spinning tail.
        assert_eq!(
            r,
            MutexRelease::WakeParked {
                futex: m.futex_key_for(TaskId(1))
            }
        );
    }

    #[test]
    fn shfllock_prefers_local_spinner() {
        let mut m = BlockingMutex::new(MutexKind::Shfllock { spin_ns: 1000 }, key(0x40));
        m.acquire(TaskId(0), 0);
        m.acquire(TaskId(1), 1); // remote
        m.acquire(TaskId(2), 0); // local
        let (_, r) = m.release(TaskId(0), 0);
        assert_eq!(r, MutexRelease::GrantSpinner(TaskId(2)));
    }

    #[test]
    fn condvar_counts_and_wakes() {
        let mut cv = CondVar::new(key(0x50));
        assert_eq!(cv.wait(), key(0x50));
        cv.wait();
        cv.wait();
        assert_eq!(cv.num_waiters(), 3);
        assert_eq!(cv.signal(), (key(0x50), 1));
        assert_eq!(cv.broadcast(), (key(0x50), 2));
        assert_eq!(cv.num_waiters(), 0);
        assert_eq!(cv.signal(), (key(0x50), 0));
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut b = Barrier::new(3, key(0x60));
        assert_eq!(b.arrive(), BarrierEffect::Wait { futex: key(0x60) });
        assert_eq!(b.arrive(), BarrierEffect::Wait { futex: key(0x60) });
        assert_eq!(
            b.arrive(),
            BarrierEffect::ReleaseAll {
                futex: key(0x60),
                wake_n: 2
            }
        );
        assert_eq!(b.generation(), 1);
        // Reusable for the next generation.
        assert_eq!(b.arrive(), BarrierEffect::Wait { futex: key(0x60) });
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let mut b = Barrier::new(1, key(0x61));
        assert_eq!(
            b.arrive(),
            BarrierEffect::ReleaseAll {
                futex: key(0x61),
                wake_n: 0
            }
        );
    }

    #[test]
    fn semaphore_counts_tokens() {
        let mut s = Semaphore::new(2, key(0x70));
        assert_eq!(s.wait(), SemEffect::Acquired);
        assert_eq!(s.wait(), SemEffect::Acquired);
        assert_eq!(s.wait(), SemEffect::Wait { futex: key(0x70) });
        assert_eq!(s.count(), -1);
        assert_eq!(s.post(), Some((key(0x70), 1)));
        assert_eq!(s.post(), None);
        assert_eq!(s.count(), 1);
    }
}
