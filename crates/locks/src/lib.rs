//! User-level synchronization for the simulated process: blocking
//! primitives over futex, ten spinlock algorithms, spin-then-park locks,
//! and SHFLLOCK.
//!
//! - [`blocking`]: pthread-style mutex / condvar / barrier / semaphore,
//!   plus the Mutexee, MCS-TP, and SHFLLOCK mutexes compared in §4.4.
//! - [`spin`]: the ten pure spinlocks of Figure 13 / Table 2.
//! - [`registry`]: per-process tables of all sync objects and flag words.
//! - [`lockdep`]: lock-order and wait-for graphs over every registered
//!   lock, reporting acquisition-order inversions and live deadlocks.
//!
//! Everything here is a pure state machine emitting effects (who blocks on
//! which futex key, who is granted a lock); the simulation engine in the
//! `oversub` crate interprets those effects against the scheduler, futex
//! table, and hardware model.

pub mod blocking;
pub mod lockdep;
pub mod registry;
pub mod spin;

pub use blocking::{
    Barrier, BarrierEffect, BlockingMutex, CondVar, MutexAcquire, MutexKind, MutexRelease,
    SemEffect, Semaphore, FAST_PATH_NS,
};
pub use lockdep::{LockClass, LockDep, LockDepFinding, LockDepKind, LockKey};
pub use registry::SyncRegistry;
pub use spin::{GrantOrder, SpinEffect, SpinLock, SpinPolicy};
