//! Lockdep for the simulated process: a lock-order graph and a wait-for
//! graph over every registered mutex, spinlock, and semaphore.
//!
//! Modelled on the kernel's lockdep, adapted to the simulator: the engine
//! reports every acquisition *attempt*, completed acquisition, blocking
//! wait, and release. From those four hooks this module maintains
//!
//! 1. a global **lock-order graph** — a directed edge `A -> B` whenever
//!    some task attempted `B` while holding `A`. A cycle means two code
//!    paths acquire the same locks in opposite orders (ABBA or longer),
//!    which can deadlock under the right interleaving even if this run
//!    survived. Edges are recorded at *attempt* time, so a true deadlock
//!    (where the second acquisition never completes) still contributes
//!    the closing edge.
//! 2. a **wait-for graph** — blocked task → requested lock → current
//!    holder(s). A cycle here is an actual deadlock in this run.
//!
//! All state is `BTreeMap`/`Vec`-based and every traversal iterates in
//! sorted key order, so findings are bit-reproducible. The module is
//! strictly observational: it never influences scheduling, accounting, or
//! lock state, which the lockdep on/off golden test pins end to end.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which sync-object table a tracked lock lives in. The registry keeps a
/// dense id space per table, so a bare index is ambiguous without this.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// Blocking mutexes (`SyncRegistry::mutexes`), including the mutex a
    /// condvar wait releases and re-acquires.
    Mutex,
    /// Spinlocks (`SyncRegistry::spinlocks`).
    Spin,
    /// Semaphores (`SyncRegistry::sems`), treated as locks for ordering
    /// purposes; a post by a non-holder releases the oldest holder.
    Sem,
}

/// A lock identity in the order/wait-for graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockKey {
    /// Which table.
    pub class: LockClass,
    /// Index within the table.
    pub index: usize,
}

impl LockKey {
    /// A blocking mutex.
    pub fn mutex(index: usize) -> Self {
        LockKey {
            class: LockClass::Mutex,
            index,
        }
    }

    /// A spinlock.
    pub fn spin(index: usize) -> Self {
        LockKey {
            class: LockClass::Spin,
            index,
        }
    }

    /// A semaphore.
    pub fn sem(index: usize) -> Self {
        LockKey {
            class: LockClass::Sem,
            index,
        }
    }
}

impl fmt::Display for LockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.class {
            LockClass::Mutex => "mutex",
            LockClass::Spin => "spinlock",
            LockClass::Sem => "semaphore",
        };
        write!(f, "{name} {}", self.index)
    }
}

/// What a finding reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockDepKind {
    /// A cycle in the acquisition-order graph: these locks are taken in
    /// conflicting orders somewhere in the workload.
    OrderInversion,
    /// A cycle in the wait-for graph: these tasks are deadlocked now.
    DeadlockCycle,
}

impl LockDepKind {
    /// The diagnostic kind string used in `RunReport.diagnostics`.
    pub fn as_str(&self) -> &'static str {
        match self {
            LockDepKind::OrderInversion => "lock-order-inversion",
            LockDepKind::DeadlockCycle => "deadlock-cycle",
        }
    }
}

/// One lockdep finding, ready to become a structured diagnostic.
#[derive(Clone, Debug)]
pub struct LockDepFinding {
    /// What was detected.
    pub kind: LockDepKind,
    /// The task whose attempt/wait closed the cycle.
    pub task: usize,
    /// The locks on the cycle, in traversal order.
    pub cycle: Vec<LockKey>,
    /// Human-readable description naming every lock and hold site.
    pub detail: String,
}

/// A held lock plus where it was taken (the hold site).
#[derive(Clone, Copy, Debug)]
struct Held {
    key: LockKey,
    since_ns: u64,
}

/// First witness of an order edge `A -> B`.
#[derive(Clone, Copy, Debug)]
struct EdgeSite {
    task: usize,
    at_ns: u64,
}

/// The lockdep state machine. One instance per engine run, sized to the
/// task count.
#[derive(Debug, Default)]
pub struct LockDep {
    /// Per-task acquisition stack (hold sites), in acquisition order.
    held: Vec<Vec<Held>>,
    /// Order graph: `edges[a][b]` exists iff some task attempted `b`
    /// while holding `a`; the value is the first witness.
    edges: BTreeMap<LockKey, BTreeMap<LockKey, EdgeSite>>,
    /// Current holder(s) per lock, in acquisition order (semaphores can
    /// have several).
    owners: BTreeMap<LockKey, Vec<usize>>,
    /// The lock each task is currently blocked or spinning on.
    waiting: Vec<Option<LockKey>>,
    /// Canonicalized order cycles already reported (dedup).
    reported_orders: BTreeSet<Vec<LockKey>>,
    /// Canonicalized wait-for cycles already reported (dedup).
    reported_waits: BTreeSet<Vec<usize>>,
}

impl LockDep {
    /// Fresh state for `tasks` tasks.
    pub fn new(tasks: usize) -> Self {
        LockDep {
            held: vec![Vec::new(); tasks],
            edges: BTreeMap::new(),
            owners: BTreeMap::new(),
            waiting: vec![None; tasks],
            reported_orders: BTreeSet::new(),
            reported_waits: BTreeSet::new(),
        }
    }

    /// `task` is about to try to acquire `key` (outcome unknown). Records
    /// order edges from every lock `task` holds and reports any new
    /// acquisition-order cycle those edges close.
    pub fn on_acquire_attempt(
        &mut self,
        task: usize,
        key: LockKey,
        now_ns: u64,
    ) -> Vec<LockDepFinding> {
        let mut findings = Vec::new();
        let held: Vec<Held> = self.held[task].clone();
        for h in held {
            if h.key == key {
                continue; // re-entrant attempt; not an ordering edge
            }
            let slot = self.edges.entry(h.key).or_default();
            if slot.contains_key(&key) {
                continue; // known edge: any cycle was reported when new
            }
            slot.insert(
                key,
                EdgeSite {
                    task,
                    at_ns: now_ns,
                },
            );
            // The new edge is h.key -> key. A pre-existing path
            // key ->* h.key now closes a cycle.
            if let Some(path) = self.order_path(key, h.key) {
                let mut cycle = path; // key, ..., h.key
                cycle.push(key); // close the loop for display
                if self.note_order_cycle(&cycle) {
                    let detail = self.describe_order_cycle(task, key, h, &cycle);
                    findings.push(LockDepFinding {
                        kind: LockDepKind::OrderInversion,
                        task,
                        cycle,
                        detail,
                    });
                }
            }
        }
        findings
    }

    /// `task` now holds `key` (fast path, spin win, grant, or post-wake
    /// retry success).
    pub fn on_acquired(&mut self, task: usize, key: LockKey, now_ns: u64) {
        self.waiting[task] = None;
        if self.held[task].iter().any(|h| h.key == key) {
            return; // defensive: never double-count a hold
        }
        self.held[task].push(Held {
            key,
            since_ns: now_ns,
        });
        self.owners.entry(key).or_default().push(task);
    }

    /// `task` is now blocked (parked or spinning) on `key`. Reports any
    /// wait-for cycle — an actual deadlock among the current waiters.
    pub fn on_wait(&mut self, task: usize, key: LockKey, _now_ns: u64) -> Vec<LockDepFinding> {
        self.waiting[task] = Some(key);
        let mut findings = Vec::new();
        if let Some(tasks) = self.wait_cycle_from(task) {
            if self.note_wait_cycle(&tasks) {
                let cycle: Vec<LockKey> = tasks.iter().filter_map(|&t| self.waiting[t]).collect();
                let detail = self.describe_wait_cycle(&tasks);
                findings.push(LockDepFinding {
                    kind: LockDepKind::DeadlockCycle,
                    task,
                    cycle,
                    detail,
                });
            }
        }
        findings
    }

    /// `task` released `key`. A semaphore may legitimately be posted by a
    /// non-holder (producer/consumer); the oldest holder is released then.
    pub fn on_release(&mut self, task: usize, key: LockKey) {
        let releaser = if self.held[task].iter().any(|h| h.key == key) {
            task
        } else if let Some(owners) = self.owners.get(&key) {
            match owners.first() {
                Some(&o) => o,
                None => return,
            }
        } else {
            return; // e.g. a semaphore posted above its watermark
        };
        if let Some(pos) = self.held[releaser].iter().position(|h| h.key == key) {
            self.held[releaser].remove(pos);
        }
        if let Some(owners) = self.owners.get_mut(&key) {
            if let Some(pos) = owners.iter().position(|&o| o == releaser) {
                owners.remove(pos);
            }
            if owners.is_empty() {
                self.owners.remove(&key);
            }
        }
    }

    /// One line per blocked task: what it waits on and who holds that —
    /// the watchdog appends this to its no-progress diagnostic so a hang
    /// is attributed instead of opaque. A wait on a lock nobody holds is
    /// the lost-wakeup signature.
    pub fn wait_summary(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (t, w) in self.waiting.iter().enumerate() {
            let Some(key) = w else { continue };
            let holders = self.owners.get(key).cloned().unwrap_or_default();
            if holders.is_empty() {
                lines.push(format!("task {t} waits on {key} (held by nobody)"));
            } else {
                let list: Vec<String> = holders.iter().map(|o| format!("task {o}")).collect();
                lines.push(format!(
                    "task {t} waits on {key} (held by {})",
                    list.join(", ")
                ));
            }
        }
        lines
    }

    /// True if any task is recorded as blocked on a lock.
    pub fn has_waiters(&self) -> bool {
        self.waiting.iter().any(|w| w.is_some())
    }

    /// Number of distinct order edges recorded (test observability).
    pub fn order_edge_count(&self) -> usize {
        self.edges.values().map(|m| m.len()).sum()
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    /// Deterministic DFS: a path `from ->* to` in the order graph,
    /// inclusive of both endpoints.
    fn order_path(&self, from: LockKey, to: LockKey) -> Option<Vec<LockKey>> {
        let mut visited = BTreeSet::new();
        visited.insert(from);
        let mut path = Vec::new();
        self.dfs_path(from, to, &mut visited, &mut path)
    }

    fn dfs_path(
        &self,
        at: LockKey,
        to: LockKey,
        visited: &mut BTreeSet<LockKey>,
        path: &mut Vec<LockKey>,
    ) -> Option<Vec<LockKey>> {
        path.push(at);
        if at == to {
            return Some(path.clone());
        }
        if let Some(next) = self.edges.get(&at) {
            for (&n, _) in next.iter() {
                if visited.insert(n) {
                    if let Some(found) = self.dfs_path(n, to, visited, path) {
                        return Some(found);
                    }
                }
            }
        }
        path.pop();
        None
    }

    /// Follow waiting-task → lock → holder links from `start`; returns
    /// the task cycle if the walk loops. Holders are visited in sorted
    /// order so the first cycle found is deterministic.
    fn wait_cycle_from(&self, start: usize) -> Option<Vec<usize>> {
        let mut chain = vec![start];
        let mut on_chain = BTreeSet::new();
        on_chain.insert(start);
        self.wait_dfs(start, &mut chain, &mut on_chain)
    }

    fn wait_dfs(
        &self,
        at: usize,
        chain: &mut Vec<usize>,
        on_chain: &mut BTreeSet<usize>,
    ) -> Option<Vec<usize>> {
        let key = self.waiting[at]?;
        let mut holders = self.owners.get(&key).cloned().unwrap_or_default();
        holders.sort_unstable();
        for h in holders {
            if h == at {
                continue;
            }
            if on_chain.contains(&h) {
                // Cycle: the suffix of the chain starting at h.
                let pos = chain.iter().position(|&t| t == h)?;
                return Some(chain[pos..].to_vec());
            }
            if self.waiting[h].is_some() {
                chain.push(h);
                on_chain.insert(h);
                if let Some(found) = self.wait_dfs(h, chain, on_chain) {
                    return Some(found);
                }
                on_chain.remove(&h);
                chain.pop();
            }
        }
        None
    }

    /// Record a canonicalized order cycle; false if already reported.
    fn note_order_cycle(&mut self, cycle: &[LockKey]) -> bool {
        self.reported_orders.insert(canonical_cycle(cycle))
    }

    /// Record a canonicalized wait cycle; false if already reported.
    fn note_wait_cycle(&mut self, tasks: &[usize]) -> bool {
        let mut canon = tasks.to_vec();
        canon.sort_unstable();
        self.reported_waits.insert(canon)
    }

    fn describe_order_cycle(
        &self,
        task: usize,
        requested: LockKey,
        holding: Held,
        cycle: &[LockKey],
    ) -> String {
        let chain: Vec<String> = cycle.iter().map(|k| k.to_string()).collect();
        let mut s = format!(
            "acquisition-order cycle: {}; task {task} requests {requested} while holding \
             {} (held since {} ns)",
            chain.join(" -> "),
            holding.key,
            holding.since_ns
        );
        // The cycle runs requested ->* holding.key; its first hop is the
        // previously-established conflicting order.
        if let Some(&next) = cycle.get(1) {
            if let Some(site) = self.edges.get(&requested).and_then(|m| m.get(&next)) {
                s.push_str(&format!(
                    "; conflicting order {requested} -> {next} first seen from task {} at {} ns",
                    site.task, site.at_ns
                ));
            }
        }
        s
    }

    fn describe_wait_cycle(&self, tasks: &[usize]) -> String {
        let mut parts = Vec::new();
        for &t in tasks {
            let Some(key) = self.waiting[t] else { continue };
            let holders = self.owners.get(&key).cloned().unwrap_or_default();
            let list: Vec<String> = holders.iter().map(|o| format!("task {o}")).collect();
            let held_by = if list.is_empty() {
                "nobody".to_string()
            } else {
                list.join(", ")
            };
            parts.push(format!("task {t} waits on {key} held by {held_by}"));
        }
        format!("wait-for cycle: {}", parts.join("; "))
    }
}

/// Rotate a closed cycle (`first == last`) to start at its smallest lock,
/// dropping the duplicated endpoint — a canonical form for deduplication.
fn canonical_cycle(cycle: &[LockKey]) -> Vec<LockKey> {
    let body = if cycle.len() > 1 && cycle.first() == cycle.last() {
        &cycle[..cycle.len() - 1]
    } else {
        cycle
    };
    if body.is_empty() {
        return Vec::new();
    }
    let min_pos = body
        .iter()
        .enumerate()
        .min_by_key(|&(_, k)| *k)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut canon = Vec::with_capacity(body.len());
    canon.extend_from_slice(&body[min_pos..]);
    canon.extend_from_slice(&body[..min_pos]);
    canon
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LockKey = LockKey {
        class: LockClass::Mutex,
        index: 0,
    };
    const B: LockKey = LockKey {
        class: LockClass::Mutex,
        index: 1,
    };
    const C: LockKey = LockKey {
        class: LockClass::Mutex,
        index: 2,
    };

    #[test]
    fn abba_attempt_order_reports_inversion() {
        let mut ld = LockDep::new(2);
        // T0: holds A, attempts B (edge A->B).
        assert!(ld.on_acquire_attempt(0, A, 0).is_empty());
        ld.on_acquired(0, A, 0);
        assert!(ld.on_acquire_attempt(0, B, 10).is_empty());
        // T1: holds B, attempts A (edge B->A closes the cycle).
        ld.on_acquired(1, B, 5);
        let f = ld.on_acquire_attempt(1, A, 12);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, LockDepKind::OrderInversion);
        assert!(f[0].detail.contains("mutex 0") && f[0].detail.contains("mutex 1"));
        // The same inversion is not reported twice.
        assert!(ld.on_acquire_attempt(1, A, 20).is_empty());
    }

    #[test]
    fn three_lock_cycle_is_found() {
        let mut ld = LockDep::new(3);
        ld.on_acquired(0, A, 0);
        assert!(ld.on_acquire_attempt(0, B, 1).is_empty()); // A->B
        ld.on_acquired(1, B, 0);
        assert!(ld.on_acquire_attempt(1, C, 2).is_empty()); // B->C
        ld.on_acquired(2, C, 0);
        let f = ld.on_acquire_attempt(2, A, 3); // C->A closes A->B->C->A
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cycle.len(), 4); // closed loop repeats the start
    }

    #[test]
    fn ordered_acquisition_is_clean() {
        let mut ld = LockDep::new(4);
        for t in 0..4 {
            ld.on_acquired(t, A, 0);
            assert!(ld.on_acquire_attempt(t, B, 1).is_empty());
            ld.on_acquired(t, B, 1);
            assert!(ld.on_acquire_attempt(t, C, 2).is_empty());
            ld.on_acquired(t, C, 2);
            ld.on_release(t, C);
            ld.on_release(t, B);
            ld.on_release(t, A);
        }
        assert_eq!(ld.order_edge_count(), 3); // A->B, A->C, B->C
    }

    #[test]
    fn wait_for_cycle_reports_deadlock() {
        let mut ld = LockDep::new(2);
        ld.on_acquired(0, A, 0);
        ld.on_acquired(1, B, 0);
        assert!(ld.on_wait(0, B, 10).is_empty()); // T0 waits on B (held by T1)
        let f = ld.on_wait(1, A, 12); // T1 waits on A (held by T0): cycle
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, LockDepKind::DeadlockCycle);
        assert!(f[0].detail.contains("task 0") && f[0].detail.contains("task 1"));
        assert!(f[0].detail.contains("mutex 0") && f[0].detail.contains("mutex 1"));
    }

    #[test]
    fn wait_on_free_lock_is_the_lost_wakeup_signature() {
        let mut ld = LockDep::new(2);
        ld.on_acquired(0, A, 0);
        ld.on_wait(1, A, 5);
        ld.on_release(0, A);
        let lines = ld.wait_summary();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("held by nobody"), "{lines:?}");
    }

    #[test]
    fn sem_post_by_non_holder_releases_oldest() {
        let mut ld = LockDep::new(3);
        let s = LockKey::sem(0);
        ld.on_acquired(0, s, 0);
        ld.on_acquired(1, s, 1);
        ld.on_release(2, s); // task 2 posts without holding: frees task 0's hold
        assert_eq!(ld.owners.get(&s).cloned().unwrap(), vec![1]);
        assert!(ld.held[0].is_empty());
    }

    #[test]
    fn release_clears_holds_and_acquire_clears_waiting() {
        let mut ld = LockDep::new(1);
        ld.on_wait(0, A, 1);
        assert!(ld.has_waiters());
        ld.on_acquired(0, A, 2);
        assert!(!ld.has_waiters());
        ld.on_release(0, A);
        assert!(ld.held[0].is_empty());
        assert!(ld.owners.is_empty());
    }
}
