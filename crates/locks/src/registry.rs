//! The registry of user-level synchronization objects in one simulated
//! address space: blocking mutexes, condvars, barriers, semaphores,
//! spinlocks, and raw flag words (custom busy-wait targets).
//!
//! The registry also allocates futex keys (distinct fake user-space
//! addresses) so that distinct objects hash to distinct futex buckets,
//! like distinct lock words in a real process.

use crate::blocking::{Barrier, BlockingMutex, CondVar, MutexKind, Semaphore};
use crate::spin::{SpinLock, SpinPolicy};
use oversub_task::{BarrierId, CondId, FlagId, FutexKey, LockId, SemId, TaskId};

/// All synchronization objects of a simulated process.
#[derive(Default)]
pub struct SyncRegistry {
    /// Blocking (futex-based) mutexes.
    pub mutexes: Vec<BlockingMutex>,
    /// Condition variables.
    pub condvars: Vec<CondVar>,
    /// Barriers.
    pub barriers: Vec<Barrier>,
    /// Semaphores.
    pub sems: Vec<Semaphore>,
    /// Spinlocks.
    pub spinlocks: Vec<SpinLock>,
    /// Flag words for custom busy-waiting.
    flags: Vec<u64>,
    /// Tasks spinning on each flag, with the value they spin against
    /// (`while flag == v, spin`).
    flag_spinners: Vec<Vec<(TaskId, u64)>>,
    /// Flags declared *plain* (non-atomic): loads and stores carry no
    /// release/acquire edge, so the race detector treats them as bare
    /// shared memory rather than synchronization.
    flag_plain: Vec<bool>,
    /// Futex address allocator.
    next_addr: u64,
}

impl SyncRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        SyncRegistry {
            next_addr: 0x7f00_0000_0000,
            ..Default::default()
        }
    }

    /// Allocate a fresh futex key (fake user-space address, cacheline
    /// aligned).
    pub fn alloc_futex(&mut self) -> FutexKey {
        let k = FutexKey(self.next_addr);
        self.next_addr += 64;
        k
    }

    /// Create a blocking mutex of `kind`.
    pub fn create_mutex(&mut self, kind: MutexKind) -> LockId {
        let futex = self.alloc_futex();
        let id = LockId(self.mutexes.len());
        self.mutexes.push(BlockingMutex::new(kind, futex));
        id
    }

    /// Create a condition variable.
    pub fn create_condvar(&mut self) -> CondId {
        let futex = self.alloc_futex();
        let id = CondId(self.condvars.len());
        self.condvars.push(CondVar::new(futex));
        id
    }

    /// Create a barrier for `parties`.
    pub fn create_barrier(&mut self, parties: usize) -> BarrierId {
        let futex = self.alloc_futex();
        let id = BarrierId(self.barriers.len());
        self.barriers.push(Barrier::new(parties, futex));
        id
    }

    /// Create a semaphore with `initial` tokens.
    pub fn create_sem(&mut self, initial: i64) -> SemId {
        let futex = self.alloc_futex();
        let id = SemId(self.sems.len());
        self.sems.push(Semaphore::new(initial, futex));
        id
    }

    /// Create a spinlock with `policy`.
    pub fn create_spinlock(&mut self, policy: SpinPolicy) -> LockId {
        let id = LockId(self.spinlocks.len());
        let salt = self.next_addr;
        self.next_addr += 64;
        self.spinlocks.push(SpinLock::new(policy, salt));
        id
    }

    /// Create a flag word with an initial value. Loads and stores on it
    /// behave like atomics with release/acquire ordering (the detector
    /// draws a happens-before edge from every `flag_set` to every load
    /// it releases or satisfies).
    pub fn create_flag(&mut self, initial: u64) -> FlagId {
        let id = FlagId(self.flags.len());
        self.flags.push(initial);
        self.flag_spinners.push(Vec::new());
        self.flag_plain.push(false);
        id
    }

    /// Create a *plain* (non-atomic) flag word: mechanically identical
    /// to [`create_flag`](Self::create_flag), but its accesses carry no
    /// ordering, so concurrent unsynchronized use is a data race the
    /// detector reports.
    pub fn create_flag_plain(&mut self, initial: u64) -> FlagId {
        let id = self.create_flag(initial);
        self.flag_plain[id.0] = true;
        id
    }

    /// True when `flag` was declared plain (no release/acquire edges).
    pub fn flag_is_plain(&self, flag: FlagId) -> bool {
        self.flag_plain[flag.0]
    }

    /// Read a flag word.
    pub fn flag_get(&self, flag: FlagId) -> u64 {
        self.flags[flag.0]
    }

    /// A task starts busy-waiting on `flag` while it equals `while_eq`.
    /// Returns `true` if the condition already allows it to proceed.
    pub fn flag_spin_begin(&mut self, flag: FlagId, tid: TaskId, while_eq: u64) -> bool {
        if self.flags[flag.0] != while_eq {
            return true;
        }
        self.flag_spinners[flag.0].push((tid, while_eq));
        false
    }

    /// Store `value` into `flag`; returns the tasks whose spin condition is
    /// now satisfied (they stop spinning), in arrival order.
    pub fn flag_set(&mut self, flag: FlagId, value: u64) -> Vec<TaskId> {
        self.flags[flag.0] = value;
        let mut released = Vec::new();
        self.flag_spinners[flag.0].retain(|&(tid, while_eq)| {
            if value != while_eq {
                released.push(tid);
                false
            } else {
                true
            }
        });
        released
    }

    /// Tasks currently spinning on `flag`.
    pub fn flag_spinner_count(&self, flag: FlagId) -> usize {
        self.flag_spinners[flag.0].len()
    }

    /// Remove a task from a flag's spinner set (e.g. exits while spinning).
    pub fn flag_cancel_spin(&mut self, flag: FlagId, tid: TaskId) -> bool {
        let before = self.flag_spinners[flag.0].len();
        self.flag_spinners[flag.0].retain(|&(t, _)| t != tid);
        self.flag_spinners[flag.0].len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn futex_keys_are_distinct_and_aligned() {
        let mut r = SyncRegistry::new();
        let a = r.alloc_futex();
        let b = r.alloc_futex();
        assert_ne!(a, b);
        assert_eq!(a.0 % 64, 0);
        assert_eq!(b.0 - a.0, 64);
    }

    #[test]
    fn object_ids_are_dense_per_type() {
        let mut r = SyncRegistry::new();
        let m0 = r.create_mutex(MutexKind::Pthread);
        let m1 = r.create_mutex(MutexKind::Pthread);
        let s0 = r.create_spinlock(SpinPolicy::ttas());
        assert_eq!(m0, LockId(0));
        assert_eq!(m1, LockId(1));
        assert_eq!(s0, LockId(0), "spinlocks have their own id space");
        let b = r.create_barrier(4);
        assert_eq!(b, BarrierId(0));
        assert_eq!(r.barriers[b.0].parties(), 4);
    }

    #[test]
    fn flag_spin_released_by_set() {
        let mut r = SyncRegistry::new();
        let f = r.create_flag(0);
        assert!(!r.flag_spin_begin(f, TaskId(1), 0), "must spin");
        assert!(!r.flag_spin_begin(f, TaskId(2), 0));
        assert_eq!(r.flag_spinner_count(f), 2);
        let released = r.flag_set(f, 1);
        assert_eq!(released, vec![TaskId(1), TaskId(2)]);
        assert_eq!(r.flag_spinner_count(f), 0);
        assert_eq!(r.flag_get(f), 1);
    }

    #[test]
    fn flag_spin_proceeds_if_already_satisfied() {
        let mut r = SyncRegistry::new();
        let f = r.create_flag(5);
        assert!(r.flag_spin_begin(f, TaskId(1), 0), "5 != 0: no spin");
        assert_eq!(r.flag_spinner_count(f), 0);
    }

    #[test]
    fn flag_set_releases_only_matching_conditions() {
        let mut r = SyncRegistry::new();
        let f = r.create_flag(0);
        r.flag_spin_begin(f, TaskId(1), 0); // spins while == 0
                                            // Setting to 0 again releases nobody.
        assert!(r.flag_set(f, 0).is_empty());
        assert_eq!(r.flag_spinner_count(f), 1);
        assert_eq!(r.flag_set(f, 7), vec![TaskId(1)]);
    }

    #[test]
    fn cancel_spin_removes_task() {
        let mut r = SyncRegistry::new();
        let f = r.create_flag(0);
        r.flag_spin_begin(f, TaskId(1), 0);
        assert!(r.flag_cancel_spin(f, TaskId(1)));
        assert!(!r.flag_cancel_spin(f, TaskId(1)));
    }
}
