//! Property tests of the event queue against a naive sorted-Vec model.
//!
//! The model keeps every scheduled entry as `(time, seq, payload, state)`
//! and pops the minimum `(time, seq)` among pending entries. Both queue
//! flavors — the optimized slab/wheel queue and the classic heap+HashSet
//! reference — must match it exactly: pop order, cancel return values,
//! and the live-event count. Payloads are unique, so payload equality on
//! every pop pins the *exact* global ordering, including FIFO among
//! same-timestamp events scheduled through different paths (one-shot,
//! no-cancel, periodic/wheel).

use oversub_simcore::{EventHandle, EventQueue, SimTime};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Cancellable one-shot at `now + delta`.
    Schedule(u64),
    /// Hot-path one-shot without a cancellation handle.
    ScheduleNocancel(u64),
    /// Periodic-cadence entry (wheel-eligible when near, heap when far).
    SchedulePeriodic(u64),
    /// Declared-cadence entry (FIFO lane when monotone, else fallback).
    /// The index selects from a small set of intervals so several pushes
    /// share a lane and non-monotone pushes exercise the fallback.
    ScheduleCadenced(u64, usize),
    /// Cancel the k-th handle ever returned (modulo how many exist).
    Cancel(usize),
    Pop,
}

/// Cadences for `ScheduleCadenced`: below a wheel bucket, a typical
/// timer interval, and beyond the wheel horizon.
const CADENCES: [u64; 3] = [8_192, 100_000, 40_000_000];

/// Deltas span the wheel's bucket size (2^15 ns) and its full horizon
/// (2^15 ns × 1024 buckets ≈ 33.6 ms) so entries land in the current
/// bucket, later buckets, and the far-future heap fallback.
fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..100_000_000).prop_map(Op::Schedule),
            (0u64..100_000_000).prop_map(Op::ScheduleNocancel),
            (0u64..100_000_000).prop_map(Op::SchedulePeriodic),
            ((0u64..100_000_000), (0usize..CADENCES.len()))
                .prop_map(|(d, i)| Op::ScheduleCadenced(d, i)),
            (0usize..64).prop_map(Op::Cancel),
            Just(Op::Pop),
            Just(Op::Pop),
        ],
        1..200,
    )
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum ModelState {
    Pending,
    Cancelled,
    Popped,
}

struct Model {
    /// One entry per schedule call, in seq (= insertion) order.
    entries: Vec<(u64, u64, ModelState)>, // (time, payload, state)
    /// Indices of entries that came from cancellable `schedule` calls.
    handles: Vec<usize>,
}

impl Model {
    fn new() -> Self {
        Model {
            entries: Vec::new(),
            handles: Vec::new(),
        }
    }

    fn schedule(&mut self, at: u64, payload: u64, cancellable: bool) {
        self.entries.push((at, payload, ModelState::Pending));
        if cancellable {
            self.handles.push(self.entries.len() - 1);
        }
    }

    fn cancel(&mut self, k: usize) -> bool {
        let idx = self.handles[k];
        if self.entries[idx].2 == ModelState::Pending {
            self.entries[idx].2 = ModelState::Cancelled;
            true
        } else {
            false
        }
    }

    /// Minimum (time, seq) pending entry; seq order is entry order.
    fn pop(&mut self) -> Option<(u64, u64)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.2 == ModelState::Pending)
            .min_by_key(|(seq, e)| (e.0, *seq))
            .map(|(seq, _)| seq)?;
        self.entries[best].2 = ModelState::Popped;
        Some((self.entries[best].0, self.entries[best].1))
    }

    fn live(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.2 == ModelState::Pending)
            .count()
    }
}

/// `exact` asserts the slab queue's strengthened contract: exact `len()`
/// at all times and exact `cancel()` return values. The classic queue
/// only promises the seed's weaker one — `len()` is an upper bound until
/// cancelled entries drain past the heap top, and cancelling an
/// already-popped handle may spuriously report success (it cannot tell
/// popped from pending; the slab's generation check can).
fn check_against_model(mut q: EventQueue<u64>, ops: Vec<Op>, exact: bool) {
    let mut model = Model::new();
    let mut handles: Vec<EventHandle> = Vec::new();
    let mut next_payload = 0u64;
    let mut now = 0u64; // last popped time: schedules are now-relative
    for op in ops {
        match op {
            Op::Schedule(d) => {
                let h = q.schedule(SimTime::from_nanos(now + d), next_payload);
                handles.push(h);
                model.schedule(now + d, next_payload, true);
                next_payload += 1;
            }
            Op::ScheduleNocancel(d) => {
                q.schedule_nocancel(SimTime::from_nanos(now + d), next_payload);
                model.schedule(now + d, next_payload, false);
                next_payload += 1;
            }
            Op::SchedulePeriodic(d) => {
                q.schedule_periodic(SimTime::from_nanos(now + d), next_payload);
                model.schedule(now + d, next_payload, false);
                next_payload += 1;
            }
            Op::ScheduleCadenced(d, i) => {
                q.schedule_cadenced(SimTime::from_nanos(now + d), CADENCES[i], next_payload);
                model.schedule(now + d, next_payload, false);
                next_payload += 1;
            }
            Op::Cancel(k) => {
                if !handles.is_empty() {
                    let k = k % handles.len();
                    let got = q.cancel(handles[k]);
                    let want = model.cancel(k);
                    if exact {
                        prop_assert_eq!(got, want, "cancel return value diverged");
                    } else if want {
                        prop_assert!(got, "classic cancel refused a pending event");
                    }
                }
            }
            Op::Pop => {
                let got = q.pop().map(|(t, p)| (t.as_nanos(), p));
                let want = model.pop();
                prop_assert_eq!(got, want, "pop order diverged");
                if let Some((t, _)) = got {
                    now = t;
                }
            }
        }
        if exact {
            prop_assert_eq!(q.len(), model.live(), "live count diverged");
        } else {
            prop_assert!(q.len() >= model.live(), "classic len below live count");
        }
        prop_assert_eq!(q.is_empty(), model.live() == 0);
    }
    // Drain: the tail order must match too.
    loop {
        let got = q.pop().map(|(t, p)| (t.as_nanos(), p));
        let want = model.pop();
        prop_assert_eq!(got, want, "drain order diverged");
        if got.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The optimized slab + timer-wheel queue matches the naive model.
    #[test]
    fn fast_queue_matches_model(ops in arb_ops()) {
        check_against_model(EventQueue::new(), ops, true);
    }

    /// The classic reference queue matches the same model, so both queue
    /// flavors are interchangeable event-for-event.
    #[test]
    fn classic_queue_matches_model(ops in arb_ops()) {
        check_against_model(EventQueue::classic(), ops, false);
    }

    /// Auto-cadence rotation is invisible: a fast queue that re-arms
    /// cadenced timers during the pop (`set_auto_cadence(true)` +
    /// rotation-aware caller) pops the identical `(time, payload)` stream
    /// as a classic queue whose caller re-arms explicitly — the engine's
    /// re-arm-first contract, under which the rotation allocates exactly
    /// the sequence number the explicit re-arm would have.
    #[test]
    fn auto_cadence_rotation_matches_explicit_rearm(
        // (timer id, initial stagger) pairs; ids pick one of CADENCES.
        timers in proptest::collection::vec(
            ((0usize..CADENCES.len()), (0u64..200_000)), 1..24),
        // Interleaved one-shot noise: (delta, count) batches.
        noise in proptest::collection::vec(0u64..300_000, 0..16),
        pops in 32usize..256,
    ) {
        let mut fast = EventQueue::new();
        let mut classic = EventQueue::classic();
        fast.set_auto_cadence(true);
        // Payload encodes the timer's identity: rotation clones it, the
        // explicit path re-schedules it, and one-shot noise gets ids
        // past the timer range.
        for (k, &(i, stagger)) in timers.iter().enumerate() {
            let at = SimTime::from_nanos(CADENCES[i] + stagger);
            fast.schedule_cadenced(at, CADENCES[i], k as u64);
            classic.schedule_cadenced(at, CADENCES[i], k as u64);
        }
        for (j, &d) in noise.iter().enumerate() {
            let p = (timers.len() + j) as u64;
            fast.schedule_nocancel(SimTime::from_nanos(d), p);
            classic.schedule_nocancel(SimTime::from_nanos(d), p);
        }
        for _ in 0..pops {
            let got = fast.pop();
            let want = classic.pop();
            prop_assert_eq!(got, want, "pop streams diverged");
            let Some((t, p)) = got else { break };
            // Engine contract: a popped cadenced timer re-arms first,
            // unless the queue reports it already rotated it.
            if let Some(&(i, _)) = timers.get(p as usize) {
                let at = t + CADENCES[i];
                if !fast.last_pop_rotated() {
                    fast.schedule_cadenced(at, CADENCES[i], p);
                }
                prop_assert!(!classic.last_pop_rotated());
                classic.schedule_cadenced(at, CADENCES[i], p);
            } else {
                // One-shot noise must never be reported as rotated.
                prop_assert!(!fast.last_pop_rotated());
            }
        }
    }
}
