//! The discrete-event queue driving the simulation.
//!
//! Events are `(time, payload)` pairs. Ties on time are broken by insertion
//! order (a monotonically increasing sequence number), which keeps the
//! simulation fully deterministic without requiring payloads to be `Ord`.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
    cancelled: bool,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first,
        // and earliest sequence number among equal times.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority event queue.
///
/// Cancellation is lazy: cancelled entries stay in the heap until popped,
/// tracked through a sorted list of cancelled sequence numbers.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
        }
    }

    /// Schedule `payload` at absolute time `at`. Returns a cancellation
    /// handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
            cancelled: false,
        });
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(handle.0) {
            // The event may have already fired; popping reconciles `live`
            // lazily, so only decrement if it is genuinely outstanding.
            // We cannot cheaply know, so `live` is treated as an upper bound
            // and `is_empty` consults the heap after draining cancellations.
            true
        } else {
            false
        }
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.drain_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.drain_cancelled();
        self.heap.pop().map(|e| {
            self.live = self.live.saturating_sub(1);
            (e.time, e.payload)
        })
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of entries in the heap including not-yet-drained cancellations
    /// (an upper bound on live events).
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    fn drain_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if top.cancelled || self.cancelled.contains(&top.seq) {
                let e = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&e.seq);
                self.live = self.live.saturating_sub(1);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_nanos(1), "x");
        q.schedule(SimTime::from_nanos(2), "y");
        assert!(q.cancel(h1));
        let (_, p) = q.pop().unwrap();
        assert_eq!(p, "y");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_nanos(1), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(99)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_nanos(1), "dead");
        q.schedule(SimTime::from_nanos(5), "live");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 10);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (10, 10));
        q.schedule(SimTime::from_nanos(5), 5);
        q.schedule(SimTime::from_nanos(7), 7);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 7);
        assert!(q.pop().is_none());
    }
}
