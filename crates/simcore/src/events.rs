//! The discrete-event queue driving the simulation.
//!
//! Events are `(time, payload)` pairs. Ties on time are broken by insertion
//! order (a monotonically increasing sequence number), which keeps the
//! simulation fully deterministic without requiring payloads to be `Ord`.
//!
//! Two implementations live behind [`EventQueue`]:
//!
//! - The default **fast** queue: a binary heap for irregular events with
//!   O(1) slot/generation cancellation (no hashing on `peek_time`/`pop`),
//!   plus a bucketed timer wheel ([`WHEEL_BUCKETS`] × [`WHEEL_GRAIN_NS`])
//!   that absorbs strictly periodic ticks scheduled through
//!   [`EventQueue::schedule_periodic`], keeping them out of the comparison
//!   heap entirely.
//! - The **classic** queue ([`EventQueue::classic`]): the original
//!   `BinaryHeap` + `HashSet` lazy-cancellation structure, kept as the
//!   measurement baseline and as the reference model for the golden
//!   determinism test. Both implementations draw sequence numbers the same
//!   way, so they pop the exact same `(time, seq)` order for the same call
//!   sequence.
//!
//! Cancellation in the fast queue is still lazy in the heap (a cancelled
//! entry stays until it surfaces), but the liveness check is a slab index
//! lookup instead of a hash probe, cancel-after-pop is detected exactly
//! via slot generations (the classic structure leaked those seqs forever),
//! and [`EventQueue::len`] is an exact live count, not an upper bound.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Timer-wheel bucket granularity: events within the same 2^15 ns
/// (≈32.8 µs) window share a bucket.
pub const WHEEL_GRAIN_NS: u64 = 1 << WHEEL_SHIFT;
const WHEEL_SHIFT: u32 = 15;
/// Number of wheel buckets; the horizon is `WHEEL_BUCKETS * WHEEL_GRAIN_NS`
/// ≈ 33.6 ms, which covers the periodic BWD timer (100 µs) and balance
/// tick (10 ms) with generous slack. Periodic events beyond the horizon
/// fall back to the heap, so correctness never depends on the sizing.
pub const WHEEL_BUCKETS: usize = 1024;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

impl EventHandle {
    fn fast(slot: u32, gen: u32) -> Self {
        EventHandle(((slot as u64) << 32) | gen as u64)
    }
    fn fast_parts(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

/// Sentinel slot index for heap entries that have no cancellation slot
/// (periodic events that overflowed the wheel horizon).
const NO_SLOT: u32 = u32::MAX;

/// Tie-break key for a sequence number under a permutation salt.
///
/// Salt `0` is the identity: ties break in insertion order, the pinned
/// production behavior. A non-zero salt feeds `seq ^ salt` through the
/// SplitMix64 finalizer — a *bijection* on `u64`, so distinct sequence
/// numbers keep distinct keys (no collisions, still a total order) while
/// equal-time events pop in a salt-dependent pseudorandom permutation of
/// their insertion order.
///
/// The permutation is scoped to a *burst*: the schedule calls made while
/// one popped event is being processed (see `HeapEntry::ord`). Equal-time
/// events from the same burst — a handler fanning out over a woken list,
/// a CPU scan, a spinner set — permute; equal-time events from different
/// bursts keep burst (causal) order. That targets exactly the
/// insertion-order coincidences a handler's iteration order produces,
/// which must be outcome-irrelevant, while cross-handler equal-time order
/// remains the simulation's pinned deterministic scheduling choice. The
/// schedule-robustness certifier runs the same config under several salts
/// and asserts the reports are byte-identical.
fn mix_ord(seq: u64, salt: u64) -> u64 {
    if salt == 0 {
        return seq;
    }
    let mut z = seq ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    /// Tie-break key: `(burst at insert, mix_ord(seq, salt))`. Unsalted
    /// this is `(burst, seq)`, lexicographically the same order as raw
    /// `seq` (bursts are monotone in insertion order), so salt `0` is
    /// bit-for-bit the pinned behavior.
    ord: (u64, u64),
    slot: u32,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.ord == other.ord
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, ord)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.ord.cmp(&self.ord))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    Vacant,
    Pending,
    Cancelled,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    gen: u32,
    state: SlotState,
}

struct WheelEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

/// Bucketed timer wheel for strictly periodic events. Entries are binned
/// by `time >> WHEEL_SHIFT`; the bucket at the cursor is drained into a
/// small sorted run (`current`, descending so the next event is `last()`),
/// from which peeks and pops are O(1).
///
/// An occupancy bitmap (`occ`, one bit per bucket) lets the cursor jump
/// straight to the next non-empty bucket: advancing over an idle stretch
/// costs O(occ words) word scans instead of O(ticks) bucket probes. The
/// jump is sound because every live entry's tick lies in the horizon
/// window `[cur_tick, cur_tick + WHEEL_BUCKETS)` (inserts below the
/// cursor divert to `current`, overflows divert to the heap) and exactly
/// one tick of that window maps to each bucket index — so the nearest
/// occupied bucket in cursor order holds the earliest tick, skipped
/// buckets are provably empty, and a drained bucket always empties whole
/// (no same-index-later-wrap leftovers are possible while earlier ticks
/// remain).
struct Wheel<E> {
    buckets: Vec<Vec<WheelEntry<E>>>,
    /// Occupancy bitmap: bit `b` set iff `buckets[b]` is non-empty.
    occ: [u64; WHEEL_BUCKETS / 64],
    /// Next tick index to drain. The drained tick's events live in
    /// `current`.
    cur_tick: u64,
    /// Events of already-drained ticks, sorted descending by `(time, seq)`.
    current: Vec<WheelEntry<E>>,
    len: usize,
}

fn tick_of(time: SimTime) -> u64 {
    time.as_nanos() >> WHEEL_SHIFT
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            occ: [0; WHEEL_BUCKETS / 64],
            cur_tick: 0,
            current: Vec::new(),
            len: 0,
        }
    }

    /// Insert if the event fits the horizon; on overflow the payload is
    /// handed back so the caller can fall back to the heap.
    ///
    /// Buckets are kept sorted descending by `(time, seq)` at insert time,
    /// so draining a bucket is a plain `mem::take` with no sort.
    fn insert(&mut self, time: SimTime, seq: u64, payload: E) -> Result<(), E> {
        if self.len == 0 {
            // Empty wheel: re-anchor the cursor at the new event's tick so
            // the horizon always starts "now". (All buckets are empty, so
            // `occ` is already zero.)
            self.cur_tick = tick_of(time);
            self.current.clear();
        }
        let t = tick_of(time);
        if t < self.cur_tick {
            // A tick that was already drained (scheduling into the past of
            // the cursor): merge into the sorted run.
            let key = (time, seq);
            let idx = self.current.partition_point(|e| (e.time, e.seq) > key);
            self.current.insert(idx, WheelEntry { time, seq, payload });
        } else if t - self.cur_tick < WHEEL_BUCKETS as u64 {
            let b = (t % WHEEL_BUCKETS as u64) as usize;
            let key = (time, seq);
            let bucket = &mut self.buckets[b];
            let idx = bucket.partition_point(|e| (e.time, e.seq) > key);
            bucket.insert(idx, WheelEntry { time, seq, payload });
            self.occ[b >> 6] |= 1u64 << (b & 63);
        } else {
            return Err(payload);
        }
        self.len += 1;
        Ok(())
    }

    /// Forward distance (in buckets, wrapping) from bucket index `b0` to
    /// the nearest occupied bucket, or `None` if the bitmap is empty.
    #[inline]
    fn next_occupied_distance(&self, b0: usize) -> Option<usize> {
        const WORDS: usize = WHEEL_BUCKETS / 64;
        let w0 = b0 >> 6;
        // Bits at or after `b0` within its own word.
        let first = self.occ[w0] & (!0u64 << (b0 & 63));
        if first != 0 {
            return Some((w0 << 6) + first.trailing_zeros() as usize - b0);
        }
        // Remaining words in cursor order; the wrap back to `w0` checks
        // the bits below `b0` that `first` masked off.
        for i in 1..=WORDS {
            let w = (w0 + i) % WORDS;
            let word = self.occ[w];
            if word != 0 {
                let idx = (w << 6) + word.trailing_zeros() as usize;
                return Some((idx + WHEEL_BUCKETS - b0) % WHEEL_BUCKETS);
            }
        }
        None
    }

    /// `(time, seq)` of the earliest wheel event, jumping the cursor
    /// straight to the next occupied bucket.
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if let Some(e) = self.current.last() {
            return Some((e.time, e.seq));
        }
        if self.len == 0 {
            return None;
        }
        // `current` is empty but entries remain, so some bucket is
        // occupied. Jump to it and drain it whole (see the struct docs
        // for why it cannot hold later-wrap leftovers).
        let b0 = (self.cur_tick % WHEEL_BUCKETS as u64) as usize;
        let d = self.next_occupied_distance(b0)?;
        let b = (b0 + d) % WHEEL_BUCKETS;
        std::mem::swap(&mut self.current, &mut self.buckets[b]);
        self.occ[b >> 6] &= !(1u64 << (b & 63));
        self.cur_tick += d as u64 + 1;
        debug_assert!(!self.current.is_empty(), "occupied bucket was empty");
        self.current.last().map(|e| (e.time, e.seq))
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.peek_key()?;
        let Some(e) = self.current.pop() else {
            debug_assert!(false, "peek_key positioned an entry");
            return None;
        };
        self.len -= 1;
        Some((e.time, e.payload))
    }
}

/// FIFO lane for one strictly-periodic cadence (see
/// [`EventQueue::schedule_cadenced`]). Re-arms of a fixed-interval timer
/// arrive in fire order, and every re-arm lands one interval after its
/// fire time, so within a single cadence the pushed `(time, seq)` keys
/// are monotone non-decreasing: the deque *is* sorted, insert is
/// `push_back`, and the earliest entry is `front`. Pushes that would
/// break monotonicity (the staggered initial arms, fault-injected timer
/// jitter) are rejected by the caller and routed through the wheel
/// instead, so the invariant is checked, never assumed.
struct Lane<E> {
    interval_ns: u64,
    q: std::collections::VecDeque<WheelEntry<E>>,
}

/// Cap on distinct cadences before falling back to the wheel: lanes are
/// scanned linearly on every pop, so this must stay small. Real engines
/// have a handful (mechanism timer, balance, watchdog, fault tick).
const MAX_LANES: usize = 8;

/// The default implementation: slab-cancellation heap + timer wheel +
/// per-cadence FIFO lanes.
struct FastQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    wheel: Wheel<E>,
    lanes: Vec<Lane<E>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    next_seq: u64,
    /// Exact number of live (scheduled, not cancelled, not popped) events.
    live: usize,
    /// Cancelled entries still physically in the heap. Pops skip the
    /// cancelled-top drain scan entirely while this is zero — which for
    /// the engine is always (it retires events by epoch, never by
    /// cancellation).
    cancelled_pending: usize,
    /// Rotate cadenced pops in place (see
    /// [`EventQueue::set_auto_cadence`]).
    auto_cadence: bool,
    /// Whether the most recent `pop` rotated its event (auto re-arm).
    /// Reset by every pop and every schedule call.
    last_pop_rotated: bool,
    /// Hot-lane pop cache: the lane that won the last pop, paired with
    /// the minimum `(time, seq)` over every *other* source (heap, wheel,
    /// remaining lanes) at that moment. While subsequent pushes land
    /// only on the hot lane — the steady state of a tick-dominated run,
    /// where each tick's re-arm goes straight back to its own lane — the
    /// other-source minimum cannot drop, so the next pop decides with a
    /// single key compare instead of a full source scan. Any push to
    /// another source clears it.
    hot: Option<(usize, Option<(SimTime, u64)>)>,
    /// Tie-break permutation salt (see [`mix_ord`]). Non-zero salts also
    /// route periodic/cadenced events straight to the heap: the wheel's
    /// sorted buckets and the lanes' FIFO monotonicity argument are both
    /// stated over raw insertion sequence numbers, so bypassing them
    /// keeps the salted order trivially total at a perf cost only the
    /// certifier pays.
    salt: u64,
    /// Burst counter: incremented on every pop, stamped into each entry's
    /// tie-break key at insert. Scopes the salt permutation to the events
    /// one handler execution scheduled (see [`mix_ord`]).
    burst: u64,
}

impl<E> FastQueue<E> {
    fn new() -> Self {
        FastQueue {
            heap: BinaryHeap::new(),
            wheel: Wheel::new(),
            lanes: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            cancelled_pending: 0,
            auto_cadence: false,
            last_pop_rotated: false,
            hot: None,
            salt: 0,
            burst: 0,
        }
    }

    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize].state = SlotState::Pending;
            slot
        } else {
            let slot = self.slots.len() as u32;
            assert!(slot < NO_SLOT, "slot space exhausted");
            self.slots.push(Slot {
                gen: 0,
                state: SlotState::Pending,
            });
            slot
        }
    }

    fn release_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.state = SlotState::Vacant;
        self.free.push(slot);
    }

    fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.hot = None;
        self.last_pop_rotated = false;
        let slot = self.alloc_slot();
        let gen = self.slots[slot as usize].gen;
        self.heap.push(HeapEntry {
            time: at,
            seq,
            ord: (self.burst, mix_ord(seq, self.salt)),
            slot,
            payload,
        });
        self.live += 1;
        EventHandle::fast(slot, gen)
    }

    /// Schedule without a cancellation slot: the entry can never be
    /// cancelled, so pops skip the slab entirely. This is the engine's
    /// hot path — it retires events by epoch checks, never by handle.
    fn schedule_nocancel(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.hot = None;
        self.last_pop_rotated = false;
        self.heap.push(HeapEntry {
            time: at,
            seq,
            ord: (self.burst, mix_ord(seq, self.salt)),
            slot: NO_SLOT,
            payload,
        });
        self.live += 1;
    }

    fn schedule_periodic(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.hot = None;
        self.last_pop_rotated = false;
        if self.salt != 0 {
            self.heap.push(HeapEntry {
                time: at,
                seq,
                ord: (self.burst, mix_ord(seq, self.salt)),
                slot: NO_SLOT,
                payload,
            });
        } else {
            self.insert_wheel_or_heap(at, seq, payload);
        }
        self.live += 1;
    }

    fn insert_wheel_or_heap(&mut self, at: SimTime, seq: u64, payload: E) {
        debug_assert_eq!(self.salt, 0, "salted queues bypass the wheel");
        match self.wheel.insert(at, seq, payload) {
            Ok(()) => {}
            // Beyond the wheel horizon: fall back to the heap, with no
            // cancellation slot (periodic events are never cancelled).
            Err(payload) => self.heap.push(HeapEntry {
                time: at,
                seq,
                ord: (self.burst, seq),
                slot: NO_SLOT,
                payload,
            }),
        }
    }

    /// [`schedule_periodic`](Self::schedule_periodic) with a declared
    /// cadence: monotone re-arms append to the cadence's FIFO lane in
    /// O(1); anything else (initial staggered arms, jittered re-arms,
    /// cadence overflow) takes the wheel/heap path. Ordering is identical
    /// either way — lanes share the global sequence counter and pops
    /// compare `(time, seq)` across all sources.
    fn schedule_cadenced(&mut self, at: SimTime, interval_ns: u64, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.last_pop_rotated = false;
        self.live += 1;
        if self.salt != 0 {
            self.hot = None;
            self.heap.push(HeapEntry {
                time: at,
                seq,
                ord: (self.burst, mix_ord(seq, self.salt)),
                slot: NO_SLOT,
                payload,
            });
            return;
        }
        let lane_idx = match self
            .lanes
            .iter_mut()
            .position(|l| l.interval_ns == interval_ns)
        {
            Some(i) => i,
            None if self.lanes.len() < MAX_LANES => {
                self.lanes.push(Lane {
                    interval_ns,
                    q: std::collections::VecDeque::new(),
                });
                self.lanes.len() - 1
            }
            None => {
                self.hot = None;
                self.insert_wheel_or_heap(at, seq, payload);
                return;
            }
        };
        // A monotone push to the hot lane cannot lower any other source's
        // minimum, so it leaves the pop cache valid; everything else
        // clears it.
        if self.hot.is_some_and(|(h, _)| h != lane_idx) {
            self.hot = None;
        }
        let lane = &mut self.lanes[lane_idx];
        if lane.q.back().is_none_or(|e| (e.time, e.seq) <= (at, seq)) {
            lane.q.push_back(WheelEntry {
                time: at,
                seq,
                payload,
            });
        } else {
            self.hot = None;
            self.insert_wheel_or_heap(at, seq, payload);
        }
    }

    /// Index and `(time, seq)` key of the lane holding the earliest
    /// front entry, if any lane is non-empty.
    #[inline]
    fn lane_min(&self) -> Option<(usize, (SimTime, u64))> {
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (i, l) in self.lanes.iter().enumerate() {
            if let Some(e) = l.q.front() {
                let k = (e.time, e.seq);
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        best
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        let (slot, gen) = handle.fast_parts();
        let Some(s) = self.slots.get_mut(slot as usize) else {
            return false;
        };
        if s.gen != gen || s.state != SlotState::Pending {
            return false;
        }
        s.state = SlotState::Cancelled;
        self.live -= 1;
        self.cancelled_pending += 1;
        // Cancellation removes an event, so it can only *raise* the
        // cached other-source minimum — a conservative (never unsafely
        // low) bound — and the hot cache stays valid.
        true
    }

    /// Discard cancelled entries sitting on top of the heap, releasing
    /// their slots for reuse. Free when nothing is cancelled.
    fn drain_cancelled(&mut self) {
        while self.cancelled_pending > 0 {
            let Some(top) = self.heap.peek() else { break };
            let slot = top.slot;
            if slot != NO_SLOT && self.slots[slot as usize].state == SlotState::Cancelled {
                self.heap.pop();
                self.release_slot(slot);
                self.cancelled_pending -= 1;
            } else {
                break;
            }
        }
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.drain_cancelled();
        let hk = self.heap.peek().map(|e| (e.time, e.seq));
        let wk = self.wheel.peek_key();
        let lk = self.lane_min().map(|(_, k)| k);
        [hk, wk, lk].into_iter().flatten().min()
    }

    fn pop(&mut self) -> Option<(SimTime, E)>
    where
        E: Clone,
    {
        // A pop starts a new burst: everything scheduled while the popped
        // event is processed shares the next burst stamp (see `mix_ord`).
        self.burst += 1;
        // Hot path: the lane that won the last pop wins again while its
        // front stays below the cached minimum of every other source.
        if let Some((h, om)) = self.hot {
            if let Some(e) = self.lanes[h].q.front() {
                if om.is_none_or(|m| (e.time, e.seq) < m) {
                    return self.pop_lane(h);
                }
            }
            self.hot = None;
        }
        self.last_pop_rotated = false;
        self.drain_cancelled();
        let hk = self.heap.peek().map(|e| (e.time, e.seq));
        let wk = self.wheel.peek_key();
        // Best lane and the runner-up minimum over the *other* lanes
        // (needed to seed the hot cache when a lane wins).
        let mut lk: Option<(usize, (SimTime, u64))> = None;
        let mut lane_rest: Option<(SimTime, u64)> = None;
        for (i, l) in self.lanes.iter().enumerate() {
            if let Some(e) = l.q.front() {
                let k = (e.time, e.seq);
                match lk {
                    Some((_, bk)) if k >= bk => {
                        if lane_rest.is_none_or(|r| k < r) {
                            lane_rest = Some(k);
                        }
                    }
                    _ => {
                        if let Some((_, bk)) = lk {
                            lane_rest = Some(lane_rest.map_or(bk, |r| r.min(bk)));
                        }
                        lk = Some((i, k));
                    }
                }
            }
        }
        // Source of the minimum key: 0 = heap, 1 = wheel, 2 = best lane.
        let mut src = usize::MAX;
        let mut best: Option<(SimTime, u64)> = None;
        if let Some(h) = hk {
            (src, best) = (0, Some(h));
        }
        if let Some(w) = wk {
            if best.is_none_or(|b| w < b) {
                (src, best) = (1, Some(w));
            }
        }
        if let Some((_, l)) = lk {
            if best.is_none_or(|b| l < b) {
                (src, best) = (2, Some(l));
            }
        }
        best?;
        match src {
            0 => {
                self.live -= 1;
                let Some(e) = self.heap.pop() else {
                    debug_assert!(false, "peeked heap entry must pop");
                    self.live += 1;
                    return None;
                };
                if e.slot != NO_SLOT {
                    self.release_slot(e.slot);
                }
                Some((e.time, e.payload))
            }
            1 => {
                self.live -= 1;
                self.wheel.pop()
            }
            _ => {
                let (i, _) = lk?;
                let om = [hk, wk, lane_rest].into_iter().flatten().min();
                self.hot = Some((i, om));
                self.pop_lane(i)
            }
        }
    }

    /// Pop the front of lane `i`; with auto-cadence on, rotate the event
    /// back into the lane one interval later under a fresh sequence
    /// number (the in-queue equivalent of the handler's own re-arm-first
    /// schedule — see [`EventQueue::set_auto_cadence`]).
    fn pop_lane(&mut self, i: usize) -> Option<(SimTime, E)>
    where
        E: Clone,
    {
        let Some(e) = self.lanes[i].q.pop_front() else {
            debug_assert!(false, "pop_lane on empty lane");
            return None;
        };
        if self.auto_cadence {
            let seq = self.next_seq;
            self.next_seq += 1;
            let at = e.time + self.lanes[i].interval_ns;
            let lane = &mut self.lanes[i];
            if lane.q.back().is_none_or(|b| (b.time, b.seq) <= (at, seq)) {
                lane.q.push_back(WheelEntry {
                    time: at,
                    seq,
                    payload: e.payload.clone(),
                });
            } else {
                // Cannot happen for a shared strict cadence (the popped
                // front plus one interval is at or past every pending
                // entry), but fall back safely rather than assume it.
                self.hot = None;
                let p = e.payload.clone();
                self.insert_wheel_or_heap(at, seq, p);
            }
            // live is unchanged: one event left, its re-arm arrived.
            self.last_pop_rotated = true;
        } else {
            self.live -= 1;
            self.last_pop_rotated = false;
        }
        Some((e.time, e.payload))
    }
}

/// The original seed implementation: lazy cancellation through a
/// `HashSet` of cancelled sequence numbers, probed on every peek/pop.
/// Retained verbatim (including its cancel-after-pop leak) as the
/// reference baseline; the engine never cancels events, so reference runs
/// are behaviorally identical to the seed engine.
struct ClassicQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    live: usize,
    /// Tie-break permutation salt (see [`mix_ord`]); cancellation stays
    /// keyed by the raw sequence number either way.
    salt: u64,
    /// Burst counter (see the fast queue's field of the same name).
    burst: u64,
}

impl<E> ClassicQueue<E> {
    fn new() -> Self {
        ClassicQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
            salt: 0,
            burst: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            time: at,
            seq,
            ord: (self.burst, mix_ord(seq, self.salt)),
            slot: NO_SLOT,
            payload,
        });
        self.live += 1;
        EventHandle(seq)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(handle.0)
    }

    fn drain_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                let Some(e) = self.heap.pop() else {
                    debug_assert!(false, "peeked heap entry must pop");
                    break;
                };
                self.cancelled.remove(&e.seq);
                self.live = self.live.saturating_sub(1);
            } else {
                break;
            }
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.drain_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.burst += 1;
        self.drain_cancelled();
        self.heap.pop().map(|e| {
            self.live = self.live.saturating_sub(1);
            (e.time, e.payload)
        })
    }
}

// One queue exists per engine (never arrays of them), so the size gap
// between the lane-carrying fast queue and the bare classic heap is
// irrelevant and boxing would only add a pointer chase to every pop.
#[allow(clippy::large_enum_variant)]
enum Imp<E> {
    Fast(FastQueue<E>),
    Classic(ClassicQueue<E>),
}

/// A deterministic min-priority event queue.
pub struct EventQueue<E> {
    imp: Imp<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue (fast implementation: slab cancellation +
    /// timer wheel).
    pub fn new() -> Self {
        EventQueue {
            imp: Imp::Fast(FastQueue::new()),
        }
    }

    /// Create an empty queue using the pre-overhaul reference
    /// implementation (`BinaryHeap` + `HashSet` lazy cancellation).
    pub fn classic() -> Self {
        EventQueue {
            imp: Imp::Classic(ClassicQueue::new()),
        }
    }

    /// True if this queue uses the reference implementation.
    pub fn is_classic(&self) -> bool {
        matches!(self.imp, Imp::Classic(_))
    }

    /// Set the equal-time tie-break permutation salt (see `mix_ord`).
    /// `0` (the default) is pinned insertion order; non-zero values pop
    /// equal-time events in a salt-dependent deterministic permutation —
    /// the schedule-robustness certifier's knob. Must be called on an
    /// empty queue: entries already pushed keep their old keys, which
    /// would make the heap order inconsistent.
    pub fn set_tiebreak_salt(&mut self, salt: u64) {
        match &mut self.imp {
            Imp::Fast(q) => {
                assert_eq!(q.live, 0, "set_tiebreak_salt on a non-empty queue");
                q.salt = salt;
            }
            Imp::Classic(q) => {
                assert!(q.heap.is_empty(), "set_tiebreak_salt on a non-empty queue");
                q.salt = salt;
            }
        }
    }

    /// Schedule `payload` at absolute time `at`. Returns a cancellation
    /// handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        match &mut self.imp {
            Imp::Fast(q) => q.schedule(at, payload),
            Imp::Classic(q) => q.schedule(at, payload),
        }
    }

    /// Schedule an event that will never be cancelled (no handle). On the
    /// fast queue this skips cancellation-slot bookkeeping entirely, so
    /// the pop path is a pure heap operation; on the classic queue it is
    /// a plain `schedule`. This is the engine's hot path: the simulator
    /// retires stale events with epoch checks, not cancellation.
    pub fn schedule_nocancel(&mut self, at: SimTime, payload: E) {
        match &mut self.imp {
            Imp::Fast(q) => q.schedule_nocancel(at, payload),
            Imp::Classic(q) => {
                q.schedule(at, payload);
            }
        }
    }

    /// Schedule a strictly periodic event (no cancellation handle). On the
    /// fast queue these are routed through the timer wheel, so the
    /// comparison heap holds only irregular events; beyond the wheel
    /// horizon (or on the classic queue) they take the heap path. Ordering
    /// is identical either way: periodic events share the queue's sequence
    /// counter.
    pub fn schedule_periodic(&mut self, at: SimTime, payload: E) {
        match &mut self.imp {
            Imp::Fast(q) => q.schedule_periodic(at, payload),
            Imp::Classic(q) => {
                q.schedule(at, payload);
            }
        }
    }

    /// [`schedule_periodic`](Self::schedule_periodic) with the cadence
    /// declared. On the fast queue, re-arms of a fixed-interval timer fire
    /// in time order and each lands one interval later, so per cadence the
    /// scheduled `(time, seq)` keys are monotone: they append to a FIFO
    /// lane with O(1) insert and O(1) pop, bypassing the wheel's binned
    /// insert entirely. Non-monotone pushes (staggered initial arms,
    /// jittered re-arms) silently fall back to the wheel/heap path, and
    /// the classic queue treats this as a plain `schedule` — the popped
    /// `(time, seq)` order is identical in every case.
    pub fn schedule_cadenced(&mut self, at: SimTime, interval_ns: u64, payload: E) {
        match &mut self.imp {
            Imp::Fast(q) => q.schedule_cadenced(at, interval_ns, payload),
            Imp::Classic(q) => {
                q.schedule(at, payload);
            }
        }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending (not yet popped or cancelled). On the fast queue
    /// this is exact and O(1): cancelling an already-popped event returns
    /// `false` even if its slot has been reused (generation check), and no
    /// state is leaked.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match &mut self.imp {
            Imp::Fast(q) => q.cancel(handle),
            Imp::Classic(q) => q.cancel(handle),
        }
    }

    /// Monotone counter advanced on every `schedule`/`schedule_periodic`
    /// call (it is the queue's internal tie-break sequence). Two reads
    /// returning the same value prove that *no event of any kind* was
    /// scheduled in between, which callers use to detect that two entries
    /// are adjacent among same-time events (see the engine's resched
    /// coalescing).
    pub fn seq_mark(&self) -> u64 {
        match &self.imp {
            Imp::Fast(q) => q.next_seq,
            Imp::Classic(q) => q.next_seq,
        }
    }

    /// `(time, seq)` key of the next live event, if any.
    ///
    /// With a zero tie-break salt the queue's pop order is exactly the
    /// lexicographic order of these keys, so callers running several
    /// queues side by side (the sharded engine's per-shard tick queues)
    /// can merge them into the single-queue pop sequence by comparing
    /// keys. With a non-zero salt the key is still the front event's
    /// identity, but key order no longer equals pop order — the sharded
    /// engine disarms itself in that mode.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match &mut self.imp {
            Imp::Fast(q) => q.peek_key(),
            Imp::Classic(q) => {
                q.drain_cancelled();
                q.heap.peek().map(|e| (e.time, e.seq))
            }
        }
    }

    /// Allocate the next sequence number from this queue's counter
    /// without scheduling anything.
    ///
    /// The sharded engine threads one global counter — this queue's —
    /// through its per-shard tick queues: every shard-side insert first
    /// claims a sequence number here, so each event carries the exact
    /// `(time, seq)` key the single-queue engine would have assigned at
    /// the same point in the run, and [`seq_mark`](Self::seq_mark)
    /// parity (resched coalescing) is preserved.
    pub fn alloc_seq(&mut self) -> u64 {
        match &mut self.imp {
            Imp::Fast(q) => {
                let seq = q.next_seq;
                q.next_seq += 1;
                seq
            }
            Imp::Classic(q) => {
                let seq = q.next_seq;
                q.next_seq += 1;
                seq
            }
        }
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.imp {
            Imp::Fast(q) => q.peek_key().map(|(t, _)| t),
            Imp::Classic(q) => q.peek_time(),
        }
    }

    /// Pop the next live event.
    ///
    /// `E: Clone` feeds auto-cadence rotation (the queue re-arms a popped
    /// cadenced event by cloning its payload one interval later); payloads
    /// are small `Copy` enums in practice.
    pub fn pop(&mut self) -> Option<(SimTime, E)>
    where
        E: Clone,
    {
        match &mut self.imp {
            Imp::Fast(q) => q.pop(),
            Imp::Classic(q) => q.pop(),
        }
    }

    /// Enable (or disable) auto-cadence rotation on the fast queue; no-op
    /// on the classic queue.
    ///
    /// With auto-cadence on, popping a lane event immediately re-schedules
    /// a clone of its payload one lane interval later, under the sequence
    /// number the queue allocates at that instant, and marks the pop via
    /// [`last_pop_rotated`](Self::last_pop_rotated). This is sound only
    /// under the engine's re-arm-first contract: the handler's own re-arm
    /// would be the *first* schedule call after the pop, at exactly
    /// `time + interval`, so the rotation allocates the identical
    /// `(time, seq)` key the handler would have — the handler must then
    /// *skip* its explicit re-arm when `last_pop_rotated()` reports the
    /// queue already did it. Events that fall outside the lanes (initial
    /// staggered arms, jittered re-arms) pop with the flag false and keep
    /// the explicit path.
    pub fn set_auto_cadence(&mut self, on: bool) {
        if let Imp::Fast(q) = &mut self.imp {
            q.auto_cadence = on;
        }
    }

    /// True when the most recent [`pop`](Self::pop) was a cadenced lane
    /// event that the queue already rotated (re-armed) internally — the
    /// caller must skip its explicit re-arm for that event. Always false
    /// on the classic queue.
    pub fn last_pop_rotated(&self) -> bool {
        match &self.imp {
            Imp::Fast(q) => q.last_pop_rotated,
            Imp::Classic(_) => false,
        }
    }

    /// True if no live events remain. Takes `&mut self` because the
    /// classic flavor must drain lazily-cancelled heap tops to answer
    /// exactly (the fast flavor's count is always exact).
    pub fn is_empty(&mut self) -> bool {
        match &mut self.imp {
            Imp::Fast(q) => q.live == 0,
            Imp::Classic(q) => q.peek_time().is_none(),
        }
    }

    /// Number of live events. Exact on the fast queue; on the classic
    /// queue this is the legacy upper bound (heap entries including
    /// not-yet-drained cancellations) — which is also why `is_empty`
    /// needs `&mut self` and trips this lint.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        match &self.imp {
            Imp::Fast(q) => q.live,
            Imp::Classic(q) => q.heap.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_nanos(1), "x");
        q.schedule(SimTime::from_nanos(2), "y");
        assert!(q.cancel(h1));
        let (_, p) = q.pop().unwrap();
        assert_eq!(p, "y");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_nanos(1), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(99)));
        assert!(!q.cancel(EventHandle::fast(7, 0)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_nanos(1), "dead");
        q.schedule(SimTime::from_nanos(5), "live");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 10);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (10, 10));
        q.schedule(SimTime::from_nanos(5), 5);
        q.schedule(SimTime::from_nanos(7), 7);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 7);
        assert!(q.pop().is_none());
    }

    /// Satellite fix: cancelling an already-popped event must return
    /// `false` and must not leak state — even after its slot is reused.
    #[test]
    fn cancel_after_pop_is_false_and_leak_free() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(h), "cancel after pop must be false");
        assert_eq!(q.len(), 0, "no leaked live count");
        // The slot is reused by the next schedule; the stale handle must
        // not be able to cancel the new occupant.
        let h2 = q.schedule(SimTime::from_nanos(2), "b");
        assert!(!q.cancel(h), "stale handle must not hit reused slot");
        assert!(q.cancel(h2));
        assert!(q.pop().is_none());
    }

    /// Satellite fix: `len` is an exact live count, immediately reflecting
    /// cancellations that are still physically in the heap.
    #[test]
    fn len_is_exact_under_cancellation() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        let h3 = q.schedule(SimTime::from_nanos(3), 3);
        assert_eq!(q.len(), 3);
        assert!(q.cancel(h1));
        assert!(q.cancel(h3));
        assert_eq!(q.len(), 1, "exact count, not heap upper bound");
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    /// Periodic (wheel) and irregular (heap) events interleave in exact
    /// global `(time, seq)` order, including ties.
    #[test]
    fn periodic_and_irregular_share_total_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        q.schedule(t, 1);
        q.schedule_periodic(t, 2);
        q.schedule(t, 3);
        q.schedule_periodic(SimTime::from_nanos(50), 0);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    /// Periodic events beyond the wheel horizon fall back to the heap and
    /// still pop in order.
    #[test]
    fn periodic_beyond_horizon_falls_back_to_heap() {
        let mut q = EventQueue::new();
        let horizon = WHEEL_BUCKETS as u64 * WHEEL_GRAIN_NS;
        q.schedule_periodic(SimTime::from_nanos(10), "near");
        q.schedule_periodic(SimTime::from_nanos(10 + 4 * horizon), "far");
        q.schedule(SimTime::from_nanos(20), "mid");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    /// The wheel keeps working across many horizon wraps (re-anchoring on
    /// empty, distinguishing wrapped bucket occupants).
    #[test]
    fn wheel_survives_wraps_and_reanchors() {
        let mut q = EventQueue::new();
        let step = 100_000u64; // 100 µs, the BWD cadence
        let mut now = 0u64;
        let mut popped = 0usize;
        q.schedule_periodic(SimTime::from_nanos(now + step), ());
        while popped < 10_000 {
            let (t, ()) = q.pop().unwrap();
            assert!(t.as_nanos() > now);
            now = t.as_nanos();
            popped += 1;
            q.schedule_periodic(SimTime::from_nanos(now + step), ());
        }
        assert_eq!(q.len(), 1);
    }

    /// Wrap-distinguishing: two periodic events exactly one horizon apart
    /// land in the same bucket but must pop in time order.
    #[test]
    fn same_bucket_different_wrap_pops_in_order() {
        let mut q = EventQueue::new();
        let horizon = WHEEL_BUCKETS as u64 * WHEEL_GRAIN_NS;
        q.schedule_periodic(SimTime::from_nanos(1_000), "first");
        // Pop to anchor the cursor at tick(1_000), then schedule one
        // horizon-minus-one-bucket ahead → same bucket index, later wrap.
        assert_eq!(q.pop().unwrap().1, "first");
        q.schedule_periodic(SimTime::from_nanos(1_000 + WHEEL_GRAIN_NS), "a");
        q.schedule_periodic(
            SimTime::from_nanos(1_000 + WHEEL_GRAIN_NS + horizon - WHEEL_GRAIN_NS),
            "b",
        );
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    /// A non-zero salt permutes equal-time pops but keeps time order,
    /// loses nothing, and is deterministic for a fixed salt.
    #[test]
    fn salt_permutes_ties_but_preserves_time_order() {
        let run = |salt: u64| {
            let mut q = EventQueue::new();
            q.set_tiebreak_salt(salt);
            for i in 0..16 {
                q.schedule(SimTime::from_nanos(5), i);
                q.schedule_periodic(SimTime::from_nanos(9), 100 + i);
                q.schedule_cadenced(SimTime::from_nanos(9), 4, 200 + i);
            }
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some((t, p)) = q.pop() {
                assert!(t >= last, "salt must never reorder across times");
                last = t;
                out.push(p);
            }
            out
        };
        let base = run(0);
        let salted = run(0x5eed);
        assert_eq!(base, run(0));
        assert_eq!(salted, run(0x5eed), "fixed salt is deterministic");
        assert_ne!(base, salted, "salt must actually permute ties");
        let (mut a, mut b) = (base.clone(), salted.clone());
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "same event multiset under any salt");
    }

    /// The salt permutation is burst-scoped: equal-time events scheduled
    /// while *different* popped events were being processed keep their
    /// burst (causal) order even under a salt.
    #[test]
    fn salt_preserves_cross_burst_order() {
        let mut q = EventQueue::new();
        q.set_tiebreak_salt(0xABCD);
        q.schedule(SimTime::from_nanos(1), 0);
        // Burst 0: a tie group at t=5.
        for i in 10..14 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        assert_eq!(q.pop().unwrap().1, 0);
        // Burst 1 (after one pop): another tie group at t=5.
        for i in 20..24 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert!(
            order[..4].iter().all(|p| *p < 14) && order[4..].iter().all(|p| *p >= 20),
            "cross-burst ties must keep burst order: {order:?}"
        );
    }

    /// Salted classic and fast queues still pop identically (they share
    /// the sequence counter and the mix).
    #[test]
    fn salted_classic_matches_salted_fast() {
        let mut fast = EventQueue::new();
        let mut classic = EventQueue::classic();
        fast.set_tiebreak_salt(7);
        classic.set_tiebreak_salt(7);
        for i in 0..24 {
            let t = SimTime::from_nanos((i % 3) as u64);
            if i % 2 == 0 {
                fast.schedule(t, i);
                classic.schedule(t, i);
            } else {
                fast.schedule_cadenced(t, 10, i);
                classic.schedule_cadenced(t, 10, i);
            }
        }
        loop {
            let (a, b) = (fast.pop(), classic.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The classic queue pops the same order as the fast queue for the
    /// same schedule sequence.
    #[test]
    fn classic_matches_fast_order() {
        let mut fast = EventQueue::new();
        let mut classic = EventQueue::classic();
        assert!(classic.is_classic() && !fast.is_classic());
        let times = [30u64, 10, 10, 99, 5, 10, 70, 5];
        for (i, &t) in times.iter().enumerate() {
            if i % 2 == 0 {
                fast.schedule(SimTime::from_nanos(t), i);
                classic.schedule(SimTime::from_nanos(t), i);
            } else {
                fast.schedule_periodic(SimTime::from_nanos(t), i);
                classic.schedule_periodic(SimTime::from_nanos(t), i);
            }
        }
        loop {
            let (a, b) = (fast.pop(), classic.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
