//! Deterministic ordered worker pool for embarrassingly parallel jobs.
//!
//! Experiment arms, chaos cells, and bench reps are self-contained: each
//! simulation owns its seed substream ([`crate::SimRng::fork`]) and
//! produces a [`RunReport`](../metrics) that depends only on its inputs.
//! That makes a batch of runs safe to execute on any number of host
//! threads **as long as the results are merged back in submission
//! order** — which is exactly what [`run_ordered`] guarantees.
//!
//! The pool is intentionally tiny: jobs are boxed `FnOnce` closures, a
//! shared atomic cursor hands out job indices, and each worker writes its
//! result into the slot matching the job's submission index. With
//! `workers <= 1` (or a single job) the pool degenerates to a plain
//! in-order loop on the calling thread — byte-for-byte the sequential
//! code path, no threads spawned.
//!
//! Wall-clock reads (`Instant::now`) here are host-side bookkeeping for
//! [`PoolStats`] utilization only; they never feed simulation state, so
//! determinism is unaffected (see the scoped detlint allow).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A pool job: any sendable one-shot closure producing a sendable result.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// A captured panic from one pool job (see [`run_ordered_caught`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the job that panicked.
    pub index: usize,
    /// Best-effort panic message, downcast from the payload.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job {} panicked: {}", self.index, self.message)
    }
}

/// Downcast a panic payload into a printable message. Panic payloads are
/// almost always `&str` or `String`; anything else gets a placeholder so
/// the error stays structured instead of aborting the batch.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Host-side execution statistics for one [`run_ordered`] batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of jobs executed in this batch.
    pub jobs: usize,
    /// Number of worker threads actually used (1 = inline sequential).
    pub workers: usize,
    /// Wall-clock time of the whole batch, nanoseconds.
    pub wall_ns: u64,
    /// Sum of per-job execution times across all workers, nanoseconds.
    pub busy_ns: u64,
}

impl PoolStats {
    /// Worker utilization in milli-units (1000 = every worker busy for the
    /// entire batch). Sequential batches are ~1000 by construction.
    pub fn utilization_milli(&self) -> u64 {
        let denom = (self.wall_ns as u128) * (self.workers as u128);
        if denom == 0 {
            return 0;
        }
        ((self.busy_ns as u128) * 1000 / denom) as u64
    }

    /// Merge another batch's stats into this accumulator. `workers` keeps
    /// the maximum seen, so utilization stays meaningful across batches
    /// run with the same jobs knob.
    pub fn absorb(&mut self, other: &PoolStats) {
        self.jobs += other.jobs;
        self.workers = self.workers.max(other.workers);
        self.wall_ns += other.wall_ns;
        self.busy_ns += other.busy_ns;
    }
}

/// Run `jobs` on up to `workers` scoped threads and return the results in
/// **submission order**, plus batch statistics.
///
/// Determinism contract: the result vector is independent of `workers`,
/// of OS scheduling, and of job completion order. Each job must be
/// self-contained (no shared mutable state with other jobs); under that
/// contract `run_ordered(jobs, n)` and `run_ordered(jobs, 1)` return
/// identical vectors.
pub fn run_ordered<T: Send>(jobs: Vec<Job<'_, T>>, workers: usize) -> (Vec<T>, PoolStats) {
    let (results, stats) = run_ordered_caught(jobs, workers);
    let results: Vec<T> = results
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("{p}")))
        .collect();
    (results, stats)
}

/// [`run_ordered`] with per-job panic isolation: a panicking job yields
/// `Err(JobPanic)` in its submission-order slot instead of tearing down
/// the whole batch, and every other job still runs to completion.
///
/// The determinism contract extends to faults: which slots hold `Err`,
/// and each `JobPanic`'s index and message, are independent of `workers`
/// and of OS scheduling.
pub fn run_ordered_caught<T: Send>(
    jobs: Vec<Job<'_, T>>,
    workers: usize,
) -> (Vec<Result<T, JobPanic>>, PoolStats) {
    let n = jobs.len();
    let t0 = Instant::now();

    let run_one = |i: usize, job: Job<'_, T>| -> Result<T, JobPanic> {
        catch_unwind(AssertUnwindSafe(job)).map_err(|payload| JobPanic {
            index: i,
            message: panic_message(payload),
        })
    };

    if workers <= 1 || n <= 1 {
        // Inline path: exactly the legacy sequential loop.
        let results: Vec<Result<T, JobPanic>> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| run_one(i, job))
            .collect();
        let wall_ns = t0.elapsed().as_nanos() as u64;
        return (
            results,
            PoolStats {
                jobs: n,
                workers: 1,
                wall_ns,
                busy_ns: wall_ns,
            },
        );
    }

    let workers = workers.min(n);
    // Each job sits in its own slot so workers can take them by index
    // without holding a queue lock while running.
    let slots: Vec<Mutex<Option<Job<'_, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let outputs: Vec<Mutex<Option<Result<T, JobPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let busy = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .take();
                if let Some(job) = job {
                    let j0 = Instant::now();
                    let out = run_one(i, job);
                    busy.fetch_add(j0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    *outputs[i]
                        .lock()
                        .unwrap_or_else(|poison| poison.into_inner()) = Some(out);
                }
            });
        }
    });

    let results: Vec<Result<T, JobPanic>> = outputs
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
                .unwrap_or_else(|| panic!("pool job {i} produced no result"))
        })
        .collect();

    (
        results,
        PoolStats {
            jobs: n,
            workers,
            wall_ns: t0.elapsed().as_nanos() as u64,
            busy_ns: busy.load(Ordering::Relaxed),
        },
    )
}

// The pool tests spawn OS threads and read host wall-clocks
// (`Instant::now`), which need `-Zmiri-disable-isolation`; the pool never
// touches simulation state, so miri skips it.
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;

    fn square_jobs(n: usize) -> Vec<Job<'static, usize>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Job<'static, usize>)
            .collect()
    }

    #[test]
    fn results_are_in_submission_order() {
        for workers in [1, 2, 3, 8, 64] {
            let (results, stats) = run_ordered(square_jobs(37), workers);
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.jobs, 37);
            assert!(stats.workers <= 37);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (seq, seq_stats) = run_ordered(square_jobs(100), 1);
        let (par, _) = run_ordered(square_jobs(100), 4);
        assert_eq!(seq, par);
        assert_eq!(seq_stats.workers, 1);
    }

    #[test]
    fn empty_and_single_job_batches() {
        let (empty, stats) = run_ordered(Vec::<Job<'_, u32>>::new(), 8);
        assert!(empty.is_empty());
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.workers, 1); // inline path

        let one: Vec<Job<'_, u32>> = vec![Box::new(|| 7)];
        let (res, stats) = run_ordered(one, 8);
        assert_eq!(res, vec![7]);
        assert_eq!(stats.workers, 1); // single job never spawns threads
    }

    #[test]
    fn workers_clamped_to_job_count() {
        let (res, stats) = run_ordered(square_jobs(3), 16);
        assert_eq!(res, vec![0, 1, 4]);
        assert!(stats.workers <= 3);
    }

    /// Jobs where every third one panics — for the isolation tests.
    fn faulty_jobs(n: usize) -> Vec<Job<'static, usize>> {
        (0..n)
            .map(|i| {
                Box::new(move || {
                    if i % 3 == 2 {
                        panic!("job {i} exploded");
                    }
                    i * i
                }) as Job<'static, usize>
            })
            .collect()
    }

    #[test]
    fn panicking_jobs_are_isolated_and_deterministic() {
        // Silence the default panic hook for the intentional panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut runs = Vec::new();
        for workers in [1, 2, 4, 8] {
            let (results, stats) = run_ordered_caught(faulty_jobs(20), workers);
            assert_eq!(stats.jobs, 20);
            runs.push(results);
        }
        std::panic::set_hook(prev);

        // Every worker count produces the identical result vector.
        for r in &runs[1..] {
            assert_eq!(r, &runs[0]);
        }
        for (i, r) in runs[0].iter().enumerate() {
            if i % 3 == 2 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, i);
                assert_eq!(p.message, format!("job {i} exploded"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * i);
            }
        }
    }

    #[test]
    fn run_ordered_reraises_the_first_panic() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(|| run_ordered(faulty_jobs(6), 2));
        std::panic::set_hook(prev);
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("pool job 2 panicked"), "got: {msg}");
    }

    #[test]
    fn stats_accumulate() {
        let (_, a) = run_ordered(square_jobs(5), 2);
        let (_, b) = run_ordered(square_jobs(7), 2);
        let mut acc = PoolStats::default();
        acc.absorb(&a);
        acc.absorb(&b);
        assert_eq!(acc.jobs, 12);
        assert_eq!(acc.wall_ns, a.wall_ns + b.wall_ns);
        assert!(acc.utilization_milli() <= 1100);
    }
}
