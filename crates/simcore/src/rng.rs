//! Deterministic pseudo-random number generation for the simulator.
//!
//! Every run owns a single [`SimRng`] seeded from the run configuration, so
//! identical configurations replay identically. The generator is
//! xoshiro256** (public domain construction by Blackman & Vigna) seeded via
//! SplitMix64 — small, fast, and with no external state.

/// A deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent stream from this generator, keyed by `stream`.
    ///
    /// Used to give each task / component its own deterministic substream so
    /// that adding consumers does not perturb unrelated draws.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the stream id into fresh seed material rather than jumping,
        // which is simpler and adequate for simulation purposes.
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be non-zero");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for open-loop arrival processes (e.g. the mutilate-style
    /// memcached client).
    #[inline]
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0).
        let u = 1.0 - self.gen_f64();
        -mean * u.ln()
    }

    /// A value in `[lo, hi]` drawn uniformly; `lo <= hi` required.
    #[inline]
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.gen_range(hi - lo + 1)
    }

    /// Normal-ish jitter: multiply `value` by a factor uniform in
    /// `[1-frac, 1+frac]`. Keeps workloads from being artificially in
    /// lockstep while staying deterministic.
    #[inline]
    pub fn jitter(&mut self, value: u64, frac: f64) -> u64 {
        if value == 0 || frac <= 0.0 {
            return value;
        }
        let f = 1.0 + frac * (2.0 * self.gen_f64() - 1.0);
        (value as f64 * f).max(0.0) as u64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let base = SimRng::new(7);
        let mut f1 = base.fork(1);
        let mut f1b = base.fork(1);
        let mut f2 = base.fork(2);
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f1b.next_u64());
        }
        let mut f1 = base.fork(1);
        let same = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k+ statistical iterations; too slow under miri")]
    fn gen_range_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let v = r.gen_range(17);
            assert!(v < 17);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k+ statistical iterations; too slow under miri")]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k+ statistical iterations; too slow under miri")]
    fn gen_exp_has_roughly_right_mean() {
        let mut r = SimRng::new(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen_exp(100.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "exponential mean off: {mean}");
    }

    #[test]
    fn jitter_brackets_value() {
        let mut r = SimRng::new(13);
        for _ in 0..1_000 {
            let v = r.jitter(1_000, 0.1);
            assert!((900..=1100).contains(&v), "jitter out of range: {v}");
        }
        assert_eq!(r.jitter(0, 0.5), 0);
        assert_eq!(r.jitter(123, 0.0), 123);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(21);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
