//! Simulated serialized resources — the model of *kernel-internal* locks.
//!
//! The paper attributes much of the vanilla futex wakeup cost to contention
//! on the futex hash-bucket lock and on per-core runqueue locks. We model a
//! kernel lock as a resource that grants exclusive time windows: a request
//! arriving at `t` for `hold` nanoseconds is granted at
//! `max(t, previous_release) + transfer_cost(waiters)`, so concurrent
//! critical sections serialize and the cost of each hand-off grows mildly
//! with the number of threads piled on the lock (cacheline ping-pong).

use crate::time::SimTime;

/// Model parameters for a [`KernelLock`].
#[derive(Clone, Copy, Debug)]
pub struct KernelLockParams {
    /// Cost of an uncontended acquire+release pair (lock prefix, fences).
    pub base_cost_ns: u64,
    /// Extra hand-off cost per already-queued waiter (cacheline transfer,
    /// queueing). Saturates at `max_contention_waiters`.
    pub per_waiter_ns: u64,
    /// Contention cost stops growing beyond this many waiters.
    pub max_contention_waiters: u64,
}

impl Default for KernelLockParams {
    fn default() -> Self {
        // Uncontended atomic RMW ~20ns; each extra contender adds roughly a
        // cross-core cacheline transfer (~40ns), flattening past 16 waiters.
        KernelLockParams {
            base_cost_ns: 20,
            per_waiter_ns: 40,
            max_contention_waiters: 16,
        }
    }
}

/// A serialized kernel resource (spinlock-protected critical section).
#[derive(Clone, Debug)]
pub struct KernelLock {
    params: KernelLockParams,
    /// Virtual time at which the most recently granted section releases.
    next_free: SimTime,
    /// Number of grants whose sections end after `now` the last time we were
    /// asked — approximated by counting grants with release > request time.
    pending: Vec<SimTime>,
    /// Statistics.
    acquisitions: u64,
    contended_acquisitions: u64,
    total_wait_ns: u64,
}

/// Result of requesting a critical section on a [`KernelLock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// When the critical section begins (lock acquired).
    pub start: SimTime,
    /// When the critical section ends (lock released).
    pub end: SimTime,
    /// Nanoseconds spent waiting for the lock (start - request).
    pub waited_ns: u64,
}

impl KernelLock {
    /// Create a lock with the given cost model.
    pub fn new(params: KernelLockParams) -> Self {
        KernelLock {
            params,
            next_free: SimTime::ZERO,
            pending: Vec::new(),
            acquisitions: 0,
            contended_acquisitions: 0,
            total_wait_ns: 0,
        }
    }

    /// Request an exclusive section of `hold_ns` starting no earlier than
    /// `now`. Returns the granted window.
    pub fn acquire(&mut self, now: SimTime, hold_ns: u64) -> Grant {
        // Retire completed sections from the pending set.
        self.pending.retain(|&end| end > now);
        let waiters = self
            .pending
            .len()
            .min(self.params.max_contention_waiters as usize) as u64;

        let transfer = self.params.base_cost_ns + waiters * self.params.per_waiter_ns;
        let start = now.max_of(self.next_free) + transfer;
        let end = start + hold_ns;
        self.next_free = end;
        self.pending.push(end);

        let waited = start - now;
        self.acquisitions += 1;
        if waited > transfer {
            self.contended_acquisitions += 1;
        }
        self.total_wait_ns += waited;
        Grant {
            start,
            end,
            waited_ns: waited,
        }
    }

    /// Total acquisitions granted.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Acquisitions that had to wait behind another holder.
    pub fn contended_acquisitions(&self) -> u64 {
        self.contended_acquisitions
    }

    /// Sum of nanoseconds spent waiting across all acquisitions.
    pub fn total_wait_ns(&self) -> u64 {
        self.total_wait_ns
    }

    /// Time at which the lock next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Reset statistics (not the timeline).
    pub fn reset_stats(&mut self) {
        self.acquisitions = 0;
        self.contended_acquisitions = 0;
        self.total_wait_ns = 0;
    }
}

impl Default for KernelLock {
    fn default() -> Self {
        KernelLock::new(KernelLockParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> KernelLockParams {
        KernelLockParams {
            base_cost_ns: 10,
            per_waiter_ns: 5,
            max_contention_waiters: 4,
        }
    }

    #[test]
    fn uncontended_acquire_costs_base() {
        let mut l = KernelLock::new(params());
        let g = l.acquire(SimTime::from_nanos(100), 50);
        assert_eq!(g.start.as_nanos(), 110);
        assert_eq!(g.end.as_nanos(), 160);
        assert_eq!(g.waited_ns, 10);
    }

    #[test]
    fn concurrent_requests_serialize() {
        let mut l = KernelLock::new(params());
        let t = SimTime::from_nanos(0);
        let g1 = l.acquire(t, 100);
        let g2 = l.acquire(t, 100);
        let g3 = l.acquire(t, 100);
        assert!(g2.start >= g1.end);
        assert!(g3.start >= g2.end);
        // Later requests see more waiters, so hand-off cost grows.
        assert!(g2.waited_ns > g1.waited_ns);
        assert!(g3.waited_ns > g2.waited_ns);
    }

    #[test]
    fn contention_cost_saturates() {
        let mut l = KernelLock::new(params());
        let t = SimTime::ZERO;
        let mut grants = Vec::new();
        for _ in 0..10 {
            grants.push(l.acquire(t, 10));
        }
        // Hand-off gaps should stop growing once waiters cap at 4.
        let gap = |i: usize| grants[i].start - grants[i - 1].end;
        assert_eq!(gap(6), gap(9));
    }

    #[test]
    fn idle_lock_forgets_contention() {
        let mut l = KernelLock::new(params());
        let g1 = l.acquire(SimTime::ZERO, 10);
        let _ = l.acquire(SimTime::ZERO, 10);
        // Much later, the lock is free again: base cost only.
        let late = SimTime::from_micros(10);
        let g = l.acquire(late, 10);
        assert_eq!(g.waited_ns, 10);
        assert!(g.start > g1.end);
    }

    #[test]
    fn stats_track_acquisitions() {
        let mut l = KernelLock::new(params());
        l.acquire(SimTime::ZERO, 100);
        l.acquire(SimTime::ZERO, 100);
        assert_eq!(l.acquisitions(), 2);
        assert_eq!(l.contended_acquisitions(), 1);
        assert!(l.total_wait_ns() > 0);
        l.reset_stats();
        assert_eq!(l.acquisitions(), 0);
    }
}
