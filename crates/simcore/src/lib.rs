//! Deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the thread-oversubscription study: a
//! virtual clock ([`SimTime`]), a deterministic event queue
//! ([`EventQueue`]), a seeded random stream ([`SimRng`]), and a model of
//! serialized kernel resources ([`KernelLock`]).
//!
//! Nothing here knows about threads or scheduling; higher layers (the
//! `oversub-sched` and `oversub-ksync` crates) build the OS model on top.

pub mod events;
pub mod pool;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod time;
pub mod vclock;

pub use events::{EventHandle, EventQueue};
pub use pool::{JobPanic, PoolStats};
pub use resource::{Grant, KernelLock, KernelLockParams};
pub use rng::SimRng;
pub use shard::{with_shards, ShardSession, ShardStats};
pub use time::{SimTime, MICROS, MILLIS, NANOS, SECS};
pub use vclock::VClock;

// Property tests run hundreds of cases and use proptest's file-backed
// failure persistence — both prohibitive under miri, which covers the
// deterministic unit tests instead.
#[cfg(all(test, not(miri)))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in non-decreasing time order, regardless of the
        /// insertion order.
        #[test]
        fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
        }

        /// Equal-time events preserve insertion order (determinism).
        #[test]
        fn event_queue_fifo_on_ties(n in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_nanos(42), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        }

        /// Kernel-lock grants never overlap and never start before request.
        #[test]
        fn kernel_lock_grants_are_disjoint(
            reqs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..100)
        ) {
            let mut sorted = reqs.clone();
            sorted.sort();
            let mut lock = KernelLock::default();
            let mut prev_end = SimTime::ZERO;
            for (t, hold) in sorted {
                let g = lock.acquire(SimTime::from_nanos(t), hold);
                prop_assert!(g.start.as_nanos() >= t);
                prop_assert!(g.start >= prev_end);
                prop_assert_eq!(g.end.as_nanos(), g.start.as_nanos() + hold);
                prev_end = g.end;
            }
        }

        /// RNG range draws are always within bounds.
        #[test]
        fn rng_range_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut rng = SimRng::new(seed);
            for _ in 0..100 {
                prop_assert!(rng.gen_range(bound) < bound);
            }
        }
    }
}
