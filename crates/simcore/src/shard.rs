//! Persistent shard workers for the intra-run parallel engine.
//!
//! [`pool`](crate::pool) parallelizes *across* runs: each job is a whole
//! simulation, so scoped threads spawned per batch are cheap. Intra-run
//! sharding has the opposite shape — one run issues *many thousands* of
//! tiny lookahead windows, each a few microseconds of work, so spawning
//! (or even re-borrowing into) threads per window would dominate. This
//! module keeps one worker thread per shard alive for the whole run and
//! drives them with a generation-counted condvar handshake: the
//! coordinator publishes a window context, bumps the generation, every
//! worker runs the same `window_fn` against its own chunk, and the
//! coordinator blocks until all workers check in.
//!
//! Safety model (no `unsafe` anywhere): each shard's mutable state lives
//! in a `Mutex<C>` chunk. During a phase, worker *i* holds chunk *i*'s
//! lock; between phases the coordinator may lock any chunk (workers are
//! parked). The shared read-only window context is published as an
//! `Arc<X>` under the control mutex. Shard 0's chunk is executed inline
//! on the coordinator thread, so `shards = 1` spawns no threads at all.
//!
//! Wall-clock reads (`Instant::now`) are host-side bookkeeping for
//! [`ShardStats`] only; they never feed simulation state (see the scoped
//! detlint allow).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::pool::JobPanic;

/// Host-side execution statistics for one sharded run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of phases driven through the worker handshake (inline
    /// single-shard windows bypass it and are not counted here).
    pub phases: u64,
    /// Nanoseconds the coordinator spent blocked at the end-of-phase
    /// barrier after finishing its own (shard 0) slice — the visible
    /// cost of lookahead imbalance between shards.
    pub barrier_wait_ns: u64,
    /// Worker threads spawned (shard count minus one).
    pub workers: usize,
}

struct CtlState<X> {
    generation: u64,
    phase: u8,
    /// Opaque per-phase argument (the engine packs a `(time, seq)`
    /// lookahead cut into it).
    aux: u128,
    ctx: Option<Arc<X>>,
    /// Workers that have not yet finished the current generation.
    remaining: usize,
    shutdown: bool,
    panic: Option<JobPanic>,
}

struct Ctl<X> {
    state: Mutex<CtlState<X>>,
    /// Workers wait here for a new generation.
    work_cv: Condvar,
    /// The coordinator waits here for `remaining == 0`.
    done_cv: Condvar,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Handle the coordinator uses inside [`with_shards`] to drive phases
/// and to inspect chunks between phases.
pub struct ShardSession<'a, C: Send, X: Send + Sync> {
    chunks: &'a [Mutex<C>],
    ctl: &'a Ctl<X>,
    window_fn: &'a (dyn Fn(u8, u128, usize, &mut C, &X) + Sync),
    /// Spawned worker count (`chunks.len() - 1`).
    workers: usize,
    /// Statistics accumulated across the session (read them after
    /// [`with_shards`] returns).
    stats: ShardStats,
}

impl<C: Send, X: Send + Sync> ShardSession<'_, C, X> {
    /// Number of shards (chunks), including shard 0 run inline.
    pub fn shards(&self) -> usize {
        self.chunks.len()
    }

    /// Lock shard `i`'s chunk for coordinator-side access. Only call
    /// between phases: during a phase the owning worker holds the lock
    /// and this would block until the phase ends.
    pub fn chunk(&self, i: usize) -> MutexGuard<'_, C> {
        lock_ignore_poison(&self.chunks[i])
    }

    /// Statistics accumulated so far (final values are also returned by
    /// [`with_shards`]).
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Publish the read-only context the next phases run against.
    pub fn set_ctx(&mut self, ctx: X) {
        lock_ignore_poison(&self.ctl.state).ctx = Some(Arc::new(ctx));
    }

    /// Run `window_fn(phase, aux, i, chunk_i, ctx)` on every shard —
    /// workers for shards `1..n`, inline for shard 0 — and block until
    /// all have finished. Requires a prior [`set_ctx`](Self::set_ctx).
    pub fn run_phase(&mut self, phase: u8, aux: u128) {
        let t0 = Instant::now();
        let ctx = {
            let mut st = lock_ignore_poison(&self.ctl.state);
            let Some(ctx) = st.ctx.clone() else {
                debug_assert!(false, "run_phase before set_ctx");
                return;
            };
            st.generation += 1;
            st.phase = phase;
            st.aux = aux;
            st.remaining = self.workers;
            self.ctl.work_cv.notify_all();
            ctx
        };
        {
            let mut c0 = lock_ignore_poison(&self.chunks[0]);
            (self.window_fn)(phase, aux, 0, &mut c0, &ctx);
        }
        let own_ns = t0.elapsed().as_nanos() as u64;
        let mut st = lock_ignore_poison(&self.ctl.state);
        while st.remaining > 0 {
            st = self
                .ctl
                .done_cv
                .wait(st)
                .unwrap_or_else(|poison| poison.into_inner());
        }
        let panicked = st.panic.take();
        drop(st);
        self.stats.phases += 1;
        self.stats.barrier_wait_ns += (t0.elapsed().as_nanos() as u64).saturating_sub(own_ns);
        if let Some(p) = panicked {
            // Re-raise on the coordinator so the run fails loudly; the
            // with_shards wrapper has already arranged worker shutdown.
            panic!("{p}");
        }
    }
}

/// Run `body` with a persistent worker thread per chunk beyond the
/// first. `body` drives phases via the [`ShardSession`]; when it
/// returns, workers are shut down and the chunks are handed back along
/// with the session's [`ShardStats`].
///
/// Determinism contract: `window_fn` receives disjoint `&mut C` chunks
/// and a shared `&X` context, so for chunk-local state the outcome is
/// independent of worker scheduling; a single chunk runs entirely
/// inline on the caller's thread.
pub fn with_shards<C, X, R>(
    chunks: Vec<C>,
    window_fn: impl Fn(u8, u128, usize, &mut C, &X) + Sync,
    body: impl FnOnce(&mut ShardSession<'_, C, X>) -> R,
) -> (Vec<C>, R, ShardStats)
where
    C: Send,
    X: Send + Sync,
{
    let n = chunks.len();
    let workers = n.saturating_sub(1);
    let chunks: Vec<Mutex<C>> = chunks.into_iter().map(Mutex::new).collect();
    let ctl = Ctl {
        state: Mutex::new(CtlState {
            generation: 0,
            phase: 0,
            aux: 0,
            ctx: None,
            remaining: 0,
            shutdown: false,
            panic: None,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };
    let window_fn_ref: &(dyn Fn(u8, u128, usize, &mut C, &X) + Sync) = &window_fn;

    let (out, stats) = std::thread::scope(|scope| {
        for (i, chunk) in chunks.iter().enumerate().skip(1) {
            let ctl = &ctl;
            scope.spawn(move || {
                let mut seen = 0u64;
                loop {
                    let (phase, aux, ctx) = {
                        let mut st = lock_ignore_poison(&ctl.state);
                        while !st.shutdown && st.generation == seen {
                            st = ctl
                                .work_cv
                                .wait(st)
                                .unwrap_or_else(|poison| poison.into_inner());
                        }
                        if st.shutdown {
                            return;
                        }
                        seen = st.generation;
                        (st.phase, st.aux, st.ctx.clone())
                    };
                    if let Some(ctx) = ctx {
                        let mut c = lock_ignore_poison(chunk);
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            window_fn_ref(phase, aux, i, &mut c, &ctx);
                        }));
                        if let Err(payload) = r {
                            let msg = crate::pool::panic_message(payload);
                            let mut st = lock_ignore_poison(&ctl.state);
                            if st.panic.is_none() {
                                st.panic = Some(JobPanic {
                                    index: i,
                                    message: msg,
                                });
                            }
                        }
                    }
                    let mut st = lock_ignore_poison(&ctl.state);
                    st.remaining = st.remaining.saturating_sub(1);
                    if st.remaining == 0 {
                        ctl.done_cv.notify_all();
                    }
                }
            });
        }

        let mut session = ShardSession {
            chunks: &chunks,
            ctl: &ctl,
            window_fn: window_fn_ref,
            workers,
            stats: ShardStats {
                workers,
                ..ShardStats::default()
            },
        };
        // Catch body panics so workers are always told to shut down —
        // otherwise scope join would deadlock on the parked condvar.
        let out = catch_unwind(AssertUnwindSafe(|| body(&mut session)));
        let stats = session.stats;
        {
            let mut st = lock_ignore_poison(&ctl.state);
            st.shutdown = true;
            ctl.work_cv.notify_all();
        }
        (out, stats)
    });

    let out = match out {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    let chunks = chunks
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|poison| poison.into_inner()))
        .collect();
    (chunks, out, stats)
}

// Shard-executor tests spawn OS threads and read host wall-clocks, which
// need `-Zmiri-disable-isolation`; the executor never touches simulation
// state, so miri skips it (same policy as the pool).
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;

    /// Each chunk sums `base * multiplier` per phase; deterministic in
    /// the number of phases regardless of scheduling.
    #[derive(Debug, PartialEq, Eq)]
    struct Acc {
        base: u64,
        total: u64,
    }

    fn run(n: usize, phases: u64) -> (Vec<Acc>, ShardStats) {
        let chunks: Vec<Acc> = (0..n as u64)
            .map(|i| Acc {
                base: i + 1,
                total: 0,
            })
            .collect();
        let (chunks, _, stats) = with_shards(
            chunks,
            |phase, aux, _idx, c: &mut Acc, mult: &u64| {
                c.total += c.base * *mult * (phase as u64) + aux as u64;
            },
            |session| {
                session.set_ctx(10u64);
                for _ in 0..phases {
                    session.run_phase(1, 0);
                    session.run_phase(2, 3);
                }
            },
        );
        (chunks, stats)
    }

    #[test]
    fn all_shards_run_every_phase() {
        for n in [1, 2, 4, 7] {
            let (chunks, stats) = run(n, 5);
            for (i, c) in chunks.iter().enumerate() {
                // Per round: phase1 adds base*10, phase2 adds base*20 + 3.
                let base = i as u64 + 1;
                assert_eq!(c.total, 5 * (base * 10 + base * 20 + 3), "shard {i}");
            }
            assert_eq!(stats.phases, 10);
            assert_eq!(stats.workers, n - 1);
        }
    }

    #[test]
    fn single_shard_spawns_no_workers() {
        let (chunks, stats) = run(1, 3);
        assert_eq!(chunks.len(), 1);
        assert_eq!(stats.workers, 0);
    }

    #[test]
    fn coordinator_can_inspect_chunks_between_phases() {
        let chunks = vec![0u64, 0, 0];
        let (chunks, picked, _) = with_shards(
            chunks,
            |_phase, _aux, idx, c: &mut u64, add: &u64| *c += (idx as u64 + 1) * add,
            |session| {
                session.set_ctx(100u64);
                session.run_phase(1, 0);
                let mid: Vec<u64> = (0..session.shards()).map(|i| *session.chunk(i)).collect();
                session.run_phase(1, 0);
                mid
            },
        );
        assert_eq!(picked, vec![100, 200, 300]);
        assert_eq!(chunks, vec![200, 400, 600]);
    }

    #[test]
    fn worker_panic_reaches_coordinator() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(|| {
            with_shards(
                vec![0u8, 1],
                |_p, _a, idx, _c: &mut u8, _x: &()| {
                    if idx == 1 {
                        panic!("shard exploded");
                    }
                },
                |session| {
                    session.set_ctx(());
                    session.run_phase(1, 0);
                },
            )
        });
        std::panic::set_hook(prev);
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("shard exploded"), "got: {msg}");
    }
}
