//! Dense vector clocks for happens-before tracking.
//!
//! A [`VClock`] maps a fixed set of logical actors (simulated tasks) to
//! monotone counters. Two events are ordered by happens-before iff the
//! clock captured at the earlier one is `<=` component-wise than the
//! clock captured at the later one. The race detector in the `oversub`
//! crate keeps one clock per task (an SoA column) plus one per sync
//! object; joins happen only at modeled release/acquire boundaries, so
//! the clocks are exact for the simulated program — there is no epoch
//! compression and no approximation.
//!
//! Clocks are plain dense `Vec<u64>` columns: simulated task counts are
//! small (tens to hundreds), joins are O(n) memcpy-speed loops, and a
//! detector that is off keeps every clock at length zero so the column
//! costs nothing.

/// A dense vector clock over `len()` actors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// An empty clock (zero actors). Used as the disarmed placeholder.
    pub const fn empty() -> Self {
        VClock(Vec::new())
    }

    /// A zeroed clock over `n` actors.
    pub fn zeroed(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Number of actors this clock tracks.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the clock tracks zero actors (detector disarmed).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Advance actor `i`'s own component by one.
    pub fn tick(&mut self, i: usize) {
        self.0[i] += 1;
    }

    /// Component `i` of the clock.
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// Pointwise maximum with `other`, growing to the larger length.
    pub fn join(&mut self, other: &VClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(other.0.iter()) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// True when `self` happens-before-or-equals `other`: every
    /// component of `self` is `<=` the matching component of `other`
    /// (missing components read as zero).
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &a)| a <= other.get(i))
    }

    /// Render as `{0:3, 2:1}` listing only non-zero components — the
    /// provenance format used in `data-race` diagnostics.
    pub fn provenance(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (i, &v) in self.0.iter().enumerate() {
            if v == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            out.push_str(&format!("{i}:{v}"));
            first = false;
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_le() {
        let mut a = VClock::zeroed(3);
        let mut b = VClock::zeroed(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn le_handles_length_mismatch() {
        let mut short = VClock::zeroed(1);
        short.tick(0);
        let mut long = VClock::zeroed(4);
        long.tick(0);
        long.tick(3);
        assert!(short.le(&long));
        assert!(!long.le(&short));
        let mut grown = short.clone();
        grown.join(&long);
        assert_eq!(grown.len(), 4);
        assert_eq!(grown.get(3), 1);
    }

    #[test]
    fn provenance_lists_nonzero_components() {
        let mut c = VClock::zeroed(4);
        c.tick(0);
        c.tick(2);
        c.tick(2);
        assert_eq!(c.provenance(), "{0:1, 2:2}");
        assert_eq!(VClock::empty().provenance(), "{}");
    }
}
