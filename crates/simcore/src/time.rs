//! Virtual time for the discrete-event simulation.
//!
//! All simulation time is expressed in nanoseconds of *virtual* time held in
//! a [`SimTime`]. Nothing in the simulator ever reads a wall clock; this is
//! what makes runs deterministic and replayable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One nanosecond of virtual time.
pub const NANOS: u64 = 1;
/// One microsecond of virtual time.
pub const MICROS: u64 = 1_000;
/// One millisecond of virtual time.
pub const MILLIS: u64 = 1_000_000;
/// One second of virtual time.
pub const SECS: u64 = 1_000_000_000;

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is a transparent wrapper over `u64`; arithmetic saturates on
/// overflow so that "arbitrarily large" sentinel values (used e.g. for the
/// virtual-blocking vruntime trick) remain safe to add to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far in the future; used as "never".
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * MICROS)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MILLIS)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * SECS)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / MICROS
    }

    /// Whole milliseconds since simulation start.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / MILLIS
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECS as f64
    }

    /// Saturating difference `self - earlier`, zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Saturating addition of a nanosecond delta.
    #[inline]
    pub fn saturating_add(self, delta: u64) -> SimTime {
        SimTime(self.0.saturating_add(delta))
    }

    /// The later of two times.
    #[inline]
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "never")
        } else if ns >= SECS {
            write!(f, "{:.3}s", ns as f64 / SECS as f64)
        } else if ns >= MILLIS {
            write!(f, "{:.3}ms", ns as f64 / MILLIS as f64)
        } else if ns >= MICROS {
            write!(f, "{:.3}us", ns as f64 / MICROS as f64)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::NEVER;
        assert_eq!(t + 100, SimTime::NEVER);
        assert_eq!(SimTime::ZERO.saturating_since(SimTime::from_secs(1)), 0);
    }

    #[test]
    fn subtraction_is_saturating_delta() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a - b, 6_000);
        assert_eq!(b - a, 0);
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max_of(b), b);
        assert_eq!(b.max_of(a), b);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimTime::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(4).to_string(), "4.000s");
        assert_eq!(SimTime::NEVER.to_string(), "never");
    }
}
