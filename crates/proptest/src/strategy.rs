//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Something that can generate values of one type from a random stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies of a common value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1, 0);
        for _ in 0..256 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::new(2, 0);
        let s = (0u64..10, 0usize..3).prop_map(|(a, b)| a as usize + b);
        for _ in 0..64 {
            assert!(s.generate(&mut rng) < 13);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::new(3, 0);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
