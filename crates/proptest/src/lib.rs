//! A small, dependency-free property-testing shim exposing the subset of
//! the `proptest` crate API used by this workspace.
//!
//! The workspace must build hermetically (no network access, no registry
//! cache), so instead of the real `proptest` we provide a compatible
//! in-tree implementation: deterministic pseudo-random case generation
//! driven by a per-test seed, the `proptest!` / `prop_oneof!` /
//! `prop_assert!` macros, range/tuple/collection strategies, and
//! `prop_map`. Shrinking is intentionally not implemented — failures
//! report the failing generated inputs via normal `assert!` panics.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Derive a stable 64-bit seed from a test name (FNV-1a).
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(expr)]` header followed by test functions whose
/// arguments are drawn from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::new(__seed, __case as u64);
                $crate::__proptest_bind!(__rng, $($args)*);
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $x:ident in $s:expr $(, $($rest:tt)*)?) => {
        let mut $x = $crate::strategy::Strategy::generate(&$s, &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $x:ident in $s:expr $(, $($rest:tt)*)?) => {
        let $x = $crate::strategy::Strategy::generate(&$s, &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert within a property body (no shrinking: plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}
