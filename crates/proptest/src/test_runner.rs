//! Case configuration and the deterministic RNG driving generation.

/// How many cases a `proptest!` block runs per test.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case random stream (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(test seed, case index)` pair.
    pub fn new(seed: u64, case: u64) -> Self {
        // Decorrelate the per-case streams.
        let mut rng = TestRng {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style widening multiply; bias is negligible for test gen.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7, 3);
        let mut b = TestRng::new(7, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_differ() {
        let mut a = TestRng::new(7, 0);
        let mut b = TestRng::new(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::new(1, 1);
        for bound in [1u64, 2, 3, 10, 1_000_000] {
            for _ in 0..64 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = TestRng::new(2, 2);
        for _ in 0..64 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
