//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// A `Vec` of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start).max(1) as u64;
        let n = self.size.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeMap` with between `size.start` and `size.end - 1` entries
/// (distinct keys; the key strategy's domain must be large enough to
/// reach the minimum size).
pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start).max(1) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut map = BTreeMap::new();
        // Keys may collide; keep drawing until the target size is reached
        // (bounded, in case the key domain is smaller than the target).
        let mut attempts = 0usize;
        while map.len() < target && attempts < 64 * (target + 1) {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
            attempts += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let s = vec(0u64..100, 2..7);
        let mut rng = TestRng::new(9, 0);
        for _ in 0..128 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn btree_map_respects_min_size() {
        let s = btree_map(0usize..8, 0u64..10, 1..8);
        let mut rng = TestRng::new(11, 0);
        for _ in 0..128 {
            let m = s.generate(&mut rng);
            assert!(!m.is_empty() && m.len() < 8);
            assert!(m.keys().all(|&k| k < 8));
        }
    }
}
