//! Actions — the units of behaviour a simulated program emits.
//!
//! A [`crate::Program`] is a resumable state machine: each time the previous
//! action completes, the kernel asks it for the next [`Action`]. Actions are
//! intentionally coarse (a compute phase, a whole array traversal, one
//! synchronization operation) so that simulating a multi-second parallel
//! program costs milliseconds of host time.

use crate::ids::{BarrierId, CondId, EpollFd, FlagId, LockId, SemId};
use oversub_hw::AccessPattern;

/// Static description of a spin loop's code shape, used to feed the LBR and
/// to decide whether hardware pause-loop exiting (PLE) can see it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpinSig {
    /// Address of the loop's backward conditional branch.
    pub branch_from: u64,
    /// Loop head address (must be `< branch_from` for a backward branch).
    pub branch_to: u64,
    /// Nanoseconds one loop iteration takes (a few cycles).
    pub iter_ns: u64,
    /// Instructions retired per iteration.
    pub instr_per_iter: u64,
    /// Whether the loop body executes PAUSE/NOP — detectable by Intel PLE /
    /// AMD PF when running in a vCPU.
    pub uses_pause: bool,
}

impl SpinSig {
    /// A typical pthread-style spin loop with PAUSE (Figure 6, left).
    pub fn pause_loop(salt: u64) -> SpinSig {
        let head = 0x40_1000 + salt * 0x100;
        SpinSig {
            branch_from: head + 0x18,
            branch_to: head,
            iter_ns: 3,
            instr_per_iter: 4,
            uses_pause: true,
        }
    }

    /// A bare test-loop without PAUSE, like the `lu` benchmark's
    /// `while (!flag[k]) {}` (Figure 6, right). Invisible to PLE.
    pub fn bare_loop(salt: u64) -> SpinSig {
        let head = 0x48_0000 + salt * 0x100;
        SpinSig {
            branch_from: head + 0x0C,
            branch_to: head,
            iter_ns: 2,
            instr_per_iter: 3,
            uses_pause: false,
        }
    }

    /// Sanity: the signature encodes a backward branch.
    pub fn is_backward(&self) -> bool {
        self.branch_to < self.branch_from
    }
}

/// A synchronization operation against a kernel- or user-level object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SyncOp {
    /// Acquire a blocking (futex-based) mutex.
    MutexLock(LockId),
    /// Release a blocking mutex.
    MutexUnlock(LockId),
    /// Wait on a barrier; all parties must arrive before any proceeds.
    BarrierWait(BarrierId),
    /// Block on a condition variable, releasing `mutex` while waiting and
    /// re-acquiring it before returning.
    CondWait {
        /// Condition variable to sleep on.
        cond: CondId,
        /// Mutex released during the wait.
        mutex: LockId,
    },
    /// Wake one waiter of a condition variable.
    CondSignal(CondId),
    /// Wake all waiters of a condition variable.
    CondBroadcast(CondId),
    /// Semaphore P operation.
    SemWait(SemId),
    /// Semaphore V operation.
    SemPost(SemId),
    /// Acquire a registered spinlock (algorithm chosen at registration).
    SpinAcquire(LockId),
    /// Release a registered spinlock.
    SpinRelease(LockId),
    /// Busy-wait until the flag's value differs from `while_eq`
    /// (`while (flag == while_eq) spin;`) — user-customized spinning.
    FlagSpinWhileEq {
        /// Flag word to poll.
        flag: FlagId,
        /// Value that keeps the loop spinning.
        while_eq: u64,
        /// Code shape of the loop.
        sig: SpinSig,
    },
    /// Store a value to a flag word (releases flag spinners).
    FlagSet {
        /// Flag word to store to.
        flag: FlagId,
        /// New value.
        value: u64,
    },
    /// Block in `epoll_wait` until events are posted on this instance.
    EpollWait(EpollFd),
    /// Post `count` events to an epoll instance (e.g. packets arriving),
    /// waking blocked waiters.
    EpollPost(EpollFd, u32),
}

/// One unit of simulated program behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Pure computation touching only registers / L1: `ns` nanoseconds.
    Compute {
        /// Duration of the phase at full speed.
        ns: u64,
    },
    /// A priced memory traversal over this task's working set.
    MemTraversal {
        /// Access pattern.
        pattern: AccessPattern,
        /// Size of the working set being walked (bytes).
        ws_bytes: u64,
        /// Number of element accesses.
        elems: u64,
    },
    /// One atomic read-modify-write on a cacheline shared by all threads
    /// (Figure 2b's `__sync_fetch_and_add`). Cost grows with the number of
    /// *cores* actively hitting the line.
    AtomicRmw {
        /// Identifies the contended cacheline.
        line: u64,
    },
    /// A synchronization operation.
    Sync(SyncOp),
    /// Voluntarily yield the CPU (sched_yield).
    Yield,
    /// Sleep for `ns` outside the CPU (I/O, timer); not a futex sleep.
    IoWait {
        /// Duration off-CPU.
        ns: u64,
    },
    /// A *bounded* tight loop that is NOT synchronization — e.g. a delay
    /// loop or a convergence test. Runs for `ns`, but its LBR footprint is
    /// identical to a spin loop: this is what causes BWD false positives.
    TightLoop {
        /// Total loop duration.
        ns: u64,
        /// Code shape.
        sig: SpinSig,
    },
    /// Terminate this thread.
    Exit,
}

impl Action {
    /// Convenience: a compute phase of `us` microseconds.
    pub fn compute_us(us: u64) -> Action {
        Action::Compute { ns: us * 1_000 }
    }

    /// True if the action can block in the kernel.
    pub fn may_block(&self) -> bool {
        matches!(
            self,
            Action::Sync(
                SyncOp::MutexLock(_)
                    | SyncOp::BarrierWait(_)
                    | SyncOp::CondWait { .. }
                    | SyncOp::SemWait(_)
                    | SyncOp::EpollWait(_)
            ) | Action::IoWait { .. }
        )
    }

    /// True if the action can busy-wait.
    pub fn may_spin(&self) -> bool {
        matches!(
            self,
            Action::Sync(SyncOp::SpinAcquire(_) | SyncOp::FlagSpinWhileEq { .. })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_signatures_are_backward_branches() {
        assert!(SpinSig::pause_loop(0).is_backward());
        assert!(SpinSig::bare_loop(7).is_backward());
    }

    #[test]
    fn pause_visibility_differs() {
        assert!(SpinSig::pause_loop(0).uses_pause);
        assert!(!SpinSig::bare_loop(0).uses_pause);
    }

    #[test]
    fn distinct_salts_make_distinct_addresses() {
        let a = SpinSig::bare_loop(1);
        let b = SpinSig::bare_loop(2);
        assert_ne!(a.branch_from, b.branch_from);
    }

    #[test]
    fn blocking_classification() {
        assert!(Action::Sync(SyncOp::MutexLock(LockId(0))).may_block());
        assert!(Action::Sync(SyncOp::BarrierWait(BarrierId(0))).may_block());
        assert!(Action::IoWait { ns: 5 }.may_block());
        assert!(!Action::Compute { ns: 5 }.may_block());
        assert!(!Action::Sync(SyncOp::SpinAcquire(LockId(0))).may_block());
    }

    #[test]
    fn spinning_classification() {
        assert!(Action::Sync(SyncOp::SpinAcquire(LockId(0))).may_spin());
        assert!(Action::Sync(SyncOp::FlagSpinWhileEq {
            flag: FlagId(0),
            while_eq: 0,
            sig: SpinSig::bare_loop(0)
        })
        .may_spin());
        assert!(!Action::Sync(SyncOp::MutexLock(LockId(0))).may_spin());
    }

    #[test]
    fn compute_us_converts() {
        assert_eq!(Action::compute_us(3), Action::Compute { ns: 3000 });
    }
}
