//! Newtype identifiers shared across the simulated kernel.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub usize);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A simulated thread.
    TaskId,
    "T"
);
id_type!(
    /// A user-level lock object (blocking mutex or spinlock instance).
    LockId,
    "L"
);
id_type!(
    /// A barrier object.
    BarrierId,
    "B"
);
id_type!(
    /// A condition variable.
    CondId,
    "CV"
);
id_type!(
    /// A counting semaphore.
    SemId,
    "S"
);
id_type!(
    /// An epoll instance (event fd set).
    EpollFd,
    "EP"
);
id_type!(
    /// A shared user-space flag word (custom busy-wait target).
    FlagId,
    "F"
);

/// A futex key: the user-space address a futex word lives at. Futexes hash
/// into buckets by this key, exactly like the kernel's
/// `futex_hash_bucket` table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FutexKey(pub u64);

impl fmt::Debug for FutexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "futex@{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", TaskId(3)), "T3");
        assert_eq!(format!("{:?}", LockId(1)), "L1");
        assert_eq!(format!("{}", BarrierId(0)), "B0");
        assert_eq!(format!("{:?}", FutexKey(0x10)), "futex@0x10");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(TaskId(1));
        s.insert(TaskId(1));
        s.insert(TaskId(2));
        assert_eq!(s.len(), 2);
        assert!(TaskId(1) < TaskId(2));
    }
}
