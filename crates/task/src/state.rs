//! The task control block of the simulated kernel.

use crate::ids::TaskId;
use crate::program::Program;
use oversub_hw::CpuId;
use oversub_simcore::SimTime;

/// Gross run state of a task, mirroring the kernel's task states.
///
/// Virtual blocking deliberately does *not* introduce a new state: a
/// VB-blocked task stays `Runnable` on its runqueue with
/// [`Task::vb_blocked`] set, which is the entire point of the mechanism.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// On a CPU runqueue, waiting to run.
    Runnable,
    /// Currently executing on a CPU.
    Running,
    /// Asleep in the kernel (futex wait, epoll wait, I/O) — off runqueue
    /// (`TASK_INTERRUPTIBLE`).
    Sleeping,
    /// Finished.
    Exited,
}

/// Per-task accounting, aggregated into run reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskStats {
    /// Nanoseconds spent executing useful work.
    pub exec_ns: u64,
    /// Nanoseconds spent busy-waiting (spinning).
    pub spin_ns: u64,
    /// Nanoseconds asleep in the kernel.
    pub sleep_ns: u64,
    /// Nanoseconds runnable but waiting for a CPU.
    pub wait_ns: u64,
    /// Voluntary context switches (blocked / yielded).
    pub nvcsw: u64,
    /// Involuntary context switches (preempted / slice expired).
    pub nivcsw: u64,
    /// Migrations within a NUMA node.
    pub migrations_local: u64,
    /// Migrations across NUMA nodes.
    pub migrations_remote: u64,
    /// Number of kernel wakeups of this task.
    pub wakeups: u64,
    /// Total latency from wake request to first subsequent run.
    pub wakeup_latency_ns: u64,
    /// Times this task was descheduled by busy-waiting detection.
    pub bwd_deschedules: u64,
}

/// A simulated thread: scheduling state plus its driving [`Program`].
pub struct Task {
    /// Identity (index into the kernel's task table).
    pub id: TaskId,
    /// The program generating this task's actions.
    pub program: Box<dyn Program>,
    /// Current gross state.
    pub state: TaskState,
    /// CFS virtual runtime in nanoseconds (weight-adjusted).
    pub vruntime: u64,
    /// CFS load weight (1024 = nice 0).
    pub weight: u32,
    /// Virtual-blocking flag: the paper's per-thread `thread_state`.
    /// Set => skipped by the scheduler while staying on the runqueue.
    pub vb_blocked: bool,
    /// The true vruntime saved while the task is parked at the runqueue
    /// tail under virtual blocking; restored on wake.
    pub vb_saved_vruntime: Option<u64>,
    /// BWD skip flag: when set, the scheduler runs every other task on the
    /// core at least once before this one runs again.
    pub bwd_skip: bool,
    /// CPU this task last ran on (affinity hint for wakeups).
    pub last_cpu: CpuId,
    /// Hard pin, if any (the "32T(pinned)" arm of Figure 11).
    pub pinned: Option<CpuId>,
    /// Allowed-CPU bitmask (cpuset); bit `i` set = CPU `i` allowed.
    pub allowed: u64,
    /// Bytes of cache-resident working set, for pollution / migration cost.
    pub footprint_bytes: u64,
    /// Whether this task's memory accesses are random (true) or
    /// streaming (false); decides the shape of its context-switch cache
    /// penalty. Most workloads are random-ish, the default.
    pub random_access: bool,
    /// Per-task address salt so LBR streams differ between tasks.
    pub addr_salt: u64,
    /// Time this task last became runnable (for wait-time accounting).
    pub runnable_since: SimTime,
    /// Time of the wake request pending first run (wakeup latency).
    pub wake_requested_at: Option<SimTime>,
    /// Accounting.
    pub stats: TaskStats,
}

impl Task {
    /// Create a task in the `Runnable` state on `cpu`'s queue.
    pub fn new(id: TaskId, program: Box<dyn Program>, cpu: CpuId) -> Self {
        Task {
            id,
            program,
            state: TaskState::Runnable,
            vruntime: 0,
            weight: 1024,
            vb_blocked: false,
            vb_saved_vruntime: None,
            bwd_skip: false,
            last_cpu: cpu,
            pinned: None,
            allowed: u64::MAX,
            footprint_bytes: 0,
            random_access: true,
            addr_salt: id.0 as u64 + 1,
            runnable_since: SimTime::ZERO,
            wake_requested_at: None,
            stats: TaskStats::default(),
        }
    }

    /// True if the scheduler may pick this task: runnable and not parked by
    /// virtual blocking.
    #[inline]
    pub fn schedulable(&self) -> bool {
        self.state == TaskState::Runnable && !self.vb_blocked
    }

    /// Enter virtual blocking: save the true vruntime and park at the tail.
    /// `tail_vruntime` should exceed every live vruntime on the queue.
    pub fn vb_park(&mut self, tail_vruntime: u64) {
        debug_assert!(!self.vb_blocked, "double vb_park");
        self.vb_saved_vruntime = Some(self.vruntime);
        self.vruntime = tail_vruntime;
        self.vb_blocked = true;
    }

    /// Leave virtual blocking: restore the true vruntime.
    pub fn vb_unpark(&mut self) {
        debug_assert!(self.vb_blocked, "vb_unpark while not parked");
        self.vb_blocked = false;
        if let Some(v) = self.vb_saved_vruntime.take() {
            self.vruntime = v;
        }
    }

    /// True if the task may run on `cpu`.
    #[inline]
    pub fn allows(&self, cpu: CpuId) -> bool {
        cpu.0 < 64 && self.allowed & (1 << cpu.0) != 0
    }

    /// Record that the task was woken at `now` (for wakeup-latency stats).
    pub fn note_wake_request(&mut self, now: SimTime) {
        self.stats.wakeups += 1;
        self.wake_requested_at = Some(now);
    }

    /// Record that the task started running at `now`, closing any pending
    /// wakeup-latency measurement.
    pub fn note_run_start(&mut self, now: SimTime) {
        if let Some(w) = self.wake_requested_at.take() {
            self.stats.wakeup_latency_ns += now.saturating_since(w);
        }
        self.stats.wait_ns += now.saturating_since(self.runnable_since);
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("vruntime", &self.vruntime)
            .field("vb_blocked", &self.vb_blocked)
            .field("bwd_skip", &self.bwd_skip)
            .field("last_cpu", &self.last_cpu)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgCtx, Program};
    use crate::Action;

    struct Nop;
    impl Program for Nop {
        fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
            Action::Exit
        }
    }

    fn task() -> Task {
        Task::new(TaskId(0), Box::new(Nop), CpuId(0))
    }

    #[test]
    fn new_task_is_schedulable() {
        let t = task();
        assert_eq!(t.state, TaskState::Runnable);
        assert!(t.schedulable());
        assert_eq!(t.weight, 1024);
    }

    #[test]
    fn vb_park_hides_task_and_saves_vruntime() {
        let mut t = task();
        t.vruntime = 123_456;
        t.vb_park(u64::MAX / 2);
        assert!(!t.schedulable());
        assert_eq!(t.vruntime, u64::MAX / 2);
        t.vb_unpark();
        assert!(t.schedulable());
        assert_eq!(t.vruntime, 123_456);
    }

    #[test]
    fn sleeping_task_is_not_schedulable() {
        let mut t = task();
        t.state = TaskState::Sleeping;
        assert!(!t.schedulable());
    }

    #[test]
    fn wakeup_latency_accounting() {
        let mut t = task();
        t.note_wake_request(SimTime::from_nanos(100));
        t.runnable_since = SimTime::from_nanos(100);
        t.note_run_start(SimTime::from_nanos(600));
        assert_eq!(t.stats.wakeups, 1);
        assert_eq!(t.stats.wakeup_latency_ns, 500);
        assert_eq!(t.stats.wait_ns, 500);
        // Second run start without a wake does not add latency.
        t.runnable_since = SimTime::from_nanos(600);
        t.note_run_start(SimTime::from_nanos(700));
        assert_eq!(t.stats.wakeup_latency_ns, 500);
        assert_eq!(t.stats.wait_ns, 600);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn double_park_panics_in_debug() {
        let mut t = task();
        t.vb_park(10);
        t.vb_park(10);
    }
}
