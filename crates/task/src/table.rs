//! The struct-of-arrays task table: the kernel's hot task state laid out
//! as dense parallel columns indexed by [`TaskId`].
//!
//! The scheduler's inner loops (pick, wake, stop, balance) each touch one
//! or two fields of many tasks; chasing a `Vec<Task>` of ~200-byte structs
//! drags a full cache line per field read. Splitting the table into
//! columns keeps each loop's working set to the columns it actually reads:
//! a vruntime compare touches only `vruntime`, an eligibility check only
//! `state`/`vb_blocked`/`bwd_skip` (one byte each, 64 tasks per line).
//!
//! Layout rules:
//! - Every column has exactly `len()` entries; `TaskId(i)` indexes row `i`
//!   of every column. Rows are never removed or reordered — `spawn` is the
//!   only growth point, so indices are stable for the life of a run.
//! - Hot columns (scheduler-touched) come first; cold per-task state
//!   (programs, memory shape, accounting) lives in its own columns and is
//!   only touched at event boundaries.
//!
//! The legacy [`Task`] struct remains as the spawn record and as the
//! naive per-task-struct oracle for the table's model-based tests.

use crate::ids::TaskId;
use crate::program::Program;
use crate::state::{Task, TaskState, TaskStats};
use oversub_hw::CpuId;
use oversub_simcore::{SimTime, VClock};

/// Struct-of-arrays task state. See the module docs for layout rules.
///
/// Columns are public by design: data-oriented call sites borrow exactly
/// the columns they need (often several disjointly at once), which a
/// method-only facade would forbid under the borrow checker.
#[derive(Default)]
pub struct TaskTable {
    // --- hot columns: read by pick / wake / stop / balance loops ---
    /// Gross run state ([`TaskState`]).
    pub state: Vec<TaskState>,
    /// CFS virtual runtime in nanoseconds (weight-adjusted).
    pub vruntime: Vec<u64>,
    /// CFS load weight (1024 = nice 0).
    pub weight: Vec<u32>,
    /// Virtual-blocking flag: the paper's per-thread `thread_state`.
    pub vb_blocked: Vec<bool>,
    /// Park slot: true vruntime saved while VB-parked at the queue tail.
    pub vb_saved_vruntime: Vec<Option<u64>>,
    /// BWD skip flag.
    pub bwd_skip: Vec<bool>,
    /// CPU the task last ran on (wake affinity hint).
    pub last_cpu: Vec<CpuId>,
    /// Hard pin, if any.
    pub pinned: Vec<Option<CpuId>>,
    /// Allowed-CPU bitmask (cpuset); bit `i` set = CPU `i` allowed.
    pub allowed: Vec<u64>,
    /// Time the task last became runnable (wait-time accounting).
    pub runnable_since: Vec<SimTime>,
    /// Pending wake request awaiting first run (wakeup latency).
    pub wake_requested_at: Vec<Option<SimTime>>,

    // --- cold columns: touched at event boundaries only ---
    /// The driving programs.
    pub programs: Vec<Box<dyn Program>>,
    /// Cache-resident working set in bytes.
    pub footprint_bytes: Vec<u64>,
    /// Random (true) vs streaming (false) access pattern.
    pub random_access: Vec<bool>,
    /// Per-task address salt for LBR stream diversity.
    pub addr_salt: Vec<u64>,
    /// Per-task accounting.
    pub stats: Vec<TaskStats>,
    /// Happens-before vector clock for the race detector. Disarmed runs
    /// keep every row at [`VClock::empty`] (a zero-length clock, i.e. a
    /// dangling `Vec`), so the column costs one pointer-sized push per
    /// spawn and nothing thereafter. The engine zero-fills the rows to
    /// task-count length only when `RunConfig::with_race_detector()` is
    /// set.
    pub race_clock: Vec<VClock>,

    /// True while the sharded engine has a lookahead window open. The
    /// columns stay global under sharding, but between sync points they
    /// are owned by the windows' frozen classification: the central
    /// mutators debug-assert the flag is clear (quiet ticks never touch
    /// task state, so any write here during a window is an engine bug).
    parallel_window: bool,
}

impl TaskTable {
    /// Empty table.
    pub fn new() -> Self {
        TaskTable::default()
    }

    /// Number of tasks. Every column has exactly this many rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no tasks have been spawned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// All task ids, in spawn (= index) order.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.len()).map(TaskId)
    }

    /// Mark a sharded-engine lookahead window open (`on = true`) or
    /// closed. While open, the central mutators debug-assert they are
    /// not called (columns are frozen between window sync points).
    pub fn set_parallel_window(&mut self, on: bool) {
        self.parallel_window = on;
    }

    /// Debug-mode ownership assert for the sharded engine (see
    /// [`set_parallel_window`](Self::set_parallel_window)).
    #[inline]
    fn assert_window_closed(&self) {
        debug_assert!(
            !self.parallel_window,
            "task table mutated inside an open lookahead window"
        );
    }

    /// Append a task built from a spawn record. The record's `id` must be
    /// the next free row (ids are dense and stable).
    pub fn push(&mut self, task: Task) -> TaskId {
        self.assert_window_closed();
        debug_assert_eq!(task.id.0, self.len(), "non-dense task id {:?}", task.id);
        let id = TaskId(self.len());
        self.state.push(task.state);
        self.vruntime.push(task.vruntime);
        self.weight.push(task.weight);
        self.vb_blocked.push(task.vb_blocked);
        self.vb_saved_vruntime.push(task.vb_saved_vruntime);
        self.bwd_skip.push(task.bwd_skip);
        self.last_cpu.push(task.last_cpu);
        self.pinned.push(task.pinned);
        self.allowed.push(task.allowed);
        self.runnable_since.push(task.runnable_since);
        self.wake_requested_at.push(task.wake_requested_at);
        self.programs.push(task.program);
        self.footprint_bytes.push(task.footprint_bytes);
        self.random_access.push(task.random_access);
        self.addr_salt.push(task.addr_salt);
        self.stats.push(task.stats);
        self.race_clock.push(VClock::empty());
        id
    }

    /// True if the scheduler may pick `tid`: runnable and not VB-parked.
    #[inline]
    pub fn schedulable(&self, tid: TaskId) -> bool {
        self.state[tid.0] == TaskState::Runnable && !self.vb_blocked[tid.0]
    }

    /// True if `tid` may run on `cpu`.
    #[inline]
    pub fn allows(&self, tid: TaskId, cpu: CpuId) -> bool {
        cpu.0 < 64 && self.allowed[tid.0] & (1 << cpu.0) != 0
    }

    /// Enter virtual blocking: save the true vruntime and park at the tail.
    pub fn vb_park(&mut self, tid: TaskId, tail_vruntime: u64) {
        self.assert_window_closed();
        debug_assert!(!self.vb_blocked[tid.0], "double vb_park of {tid:?}");
        self.vb_saved_vruntime[tid.0] = Some(self.vruntime[tid.0]);
        self.vruntime[tid.0] = tail_vruntime;
        self.vb_blocked[tid.0] = true;
    }

    /// Leave virtual blocking: restore the true vruntime.
    pub fn vb_unpark(&mut self, tid: TaskId) {
        self.assert_window_closed();
        debug_assert!(self.vb_blocked[tid.0], "vb_unpark of unparked {tid:?}");
        self.vb_blocked[tid.0] = false;
        if let Some(v) = self.vb_saved_vruntime[tid.0].take() {
            self.vruntime[tid.0] = v;
        }
    }

    /// Record a wake request at `now` (wakeup-latency stats).
    pub fn note_wake_request(&mut self, tid: TaskId, now: SimTime) {
        self.assert_window_closed();
        self.stats[tid.0].wakeups += 1;
        self.wake_requested_at[tid.0] = Some(now);
    }

    /// Record a run start at `now`, closing any pending wakeup-latency
    /// measurement and the runnable wait.
    pub fn note_run_start(&mut self, tid: TaskId, now: SimTime) {
        if let Some(w) = self.wake_requested_at[tid.0].take() {
            self.stats[tid.0].wakeup_latency_ns += now.saturating_since(w);
        }
        self.stats[tid.0].wait_ns += now.saturating_since(self.runnable_since[tid.0]);
    }

    /// The driving program of `tid` (cold column; the borrow is disjoint
    /// from every other column).
    #[inline]
    pub fn program_mut(&mut self, tid: TaskId) -> &mut dyn Program {
        &mut *self.programs[tid.0]
    }
}

impl std::fmt::Debug for TaskTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskTable")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgCtx, Program};
    use crate::Action;

    struct Nop;
    impl Program for Nop {
        fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
            Action::Exit
        }
    }

    fn table(n: usize) -> TaskTable {
        let mut tt = TaskTable::new();
        for i in 0..n {
            tt.push(Task::new(TaskId(i), Box::new(Nop), CpuId(0)));
        }
        tt
    }

    #[test]
    fn push_keeps_columns_parallel() {
        let tt = table(3);
        assert_eq!(tt.len(), 3);
        assert_eq!(tt.vruntime.len(), 3);
        assert_eq!(tt.programs.len(), 3);
        assert_eq!(tt.race_clock.len(), 3);
        assert!(
            tt.race_clock[0].is_empty(),
            "clocks are disarmed by default"
        );
        assert_eq!(tt.addr_salt[2], 3, "salt = id + 1");
        assert!(tt.schedulable(TaskId(1)));
    }

    #[test]
    fn vb_round_trip_matches_struct_semantics() {
        let mut tt = table(1);
        tt.vruntime[0] = 123_456;
        tt.vb_park(TaskId(0), u64::MAX / 2);
        assert!(!tt.schedulable(TaskId(0)));
        assert_eq!(tt.vruntime[0], u64::MAX / 2);
        tt.vb_unpark(TaskId(0));
        assert!(tt.schedulable(TaskId(0)));
        assert_eq!(tt.vruntime[0], 123_456);
    }

    #[test]
    fn wakeup_latency_accounting_matches_struct() {
        let mut tt = table(1);
        tt.note_wake_request(TaskId(0), SimTime::from_nanos(100));
        tt.runnable_since[0] = SimTime::from_nanos(100);
        tt.note_run_start(TaskId(0), SimTime::from_nanos(600));
        assert_eq!(tt.stats[0].wakeups, 1);
        assert_eq!(tt.stats[0].wakeup_latency_ns, 500);
        assert_eq!(tt.stats[0].wait_ns, 500);
    }

    #[test]
    fn allows_matches_struct_semantics() {
        let mut tt = table(1);
        assert!(tt.allows(TaskId(0), CpuId(5)));
        assert!(!tt.allows(TaskId(0), CpuId(64)));
        tt.allowed[0] = 0b10;
        assert!(tt.allows(TaskId(0), CpuId(1)));
        assert!(!tt.allows(TaskId(0), CpuId(0)));
    }
}
