//! The [`Program`] trait — how workloads drive simulated threads.

use crate::action::Action;
use crate::ids::TaskId;
use oversub_simcore::{SimRng, SimTime};

/// Context handed to a program when the kernel asks for its next action.
pub struct ProgCtx<'a> {
    /// The asking task.
    pub task: TaskId,
    /// Current virtual time.
    pub now: SimTime,
    /// This task's deterministic random stream.
    pub rng: &'a mut SimRng,
}

/// A resumable simulated program.
///
/// The kernel calls [`Program::next`] each time the previous action
/// completes. Programs are state machines; shared workload state (queues,
/// counters, phase indicators) lives in `Rc<RefCell<...>>` captured by the
/// per-thread program values — the simulation itself is single-threaded, so
/// this is sound and keeps programs trivially deterministic.
pub trait Program {
    /// Produce the next action. Returning [`Action::Exit`] ends the task.
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action;

    /// Optional human-readable name for traces.
    fn name(&self) -> &str {
        "program"
    }
}

/// A program built from a closure — convenient for tests and
/// microbenchmarks.
pub struct FnProgram<F: FnMut(&mut ProgCtx<'_>) -> Action> {
    f: F,
    name: &'static str,
}

impl<F: FnMut(&mut ProgCtx<'_>) -> Action> FnProgram<F> {
    /// Wrap a closure as a program.
    pub fn new(name: &'static str, f: F) -> Self {
        FnProgram { f, name }
    }
}

impl<F: FnMut(&mut ProgCtx<'_>) -> Action> Program for FnProgram<F> {
    fn next(&mut self, ctx: &mut ProgCtx<'_>) -> Action {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// A program that replays a fixed list of actions, then exits.
pub struct ScriptProgram {
    script: Vec<Action>,
    pos: usize,
    /// Number of times to replay the whole script (1 = once).
    repeats: usize,
    done_repeats: usize,
}

impl ScriptProgram {
    /// Play `script` once.
    pub fn once(script: Vec<Action>) -> Self {
        ScriptProgram {
            script,
            pos: 0,
            repeats: 1,
            done_repeats: 0,
        }
    }

    /// Play `script` `repeats` times.
    pub fn looped(script: Vec<Action>, repeats: usize) -> Self {
        assert!(repeats >= 1);
        ScriptProgram {
            script,
            pos: 0,
            repeats,
            done_repeats: 0,
        }
    }
}

impl Program for ScriptProgram {
    fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
        if self.pos >= self.script.len() {
            self.done_repeats += 1;
            if self.done_repeats >= self.repeats {
                return Action::Exit;
            }
            self.pos = 0;
        }
        if self.script.is_empty() {
            return Action::Exit;
        }
        let a = self.script[self.pos];
        self.pos += 1;
        a
    }

    fn name(&self) -> &str {
        "script"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_fixture(rng: &mut SimRng) -> ProgCtx<'_> {
        ProgCtx {
            task: TaskId(0),
            now: SimTime::ZERO,
            rng,
        }
    }

    #[test]
    fn fn_program_delegates() {
        let mut rng = SimRng::new(1);
        let mut p = FnProgram::new("t", |_| Action::Compute { ns: 7 });
        let mut ctx = ctx_fixture(&mut rng);
        assert_eq!(p.next(&mut ctx), Action::Compute { ns: 7 });
        assert_eq!(p.name(), "t");
    }

    #[test]
    fn script_plays_once_then_exits() {
        let mut rng = SimRng::new(1);
        let mut p = ScriptProgram::once(vec![Action::Compute { ns: 1 }, Action::Compute { ns: 2 }]);
        let mut ctx = ctx_fixture(&mut rng);
        assert_eq!(p.next(&mut ctx), Action::Compute { ns: 1 });
        assert_eq!(p.next(&mut ctx), Action::Compute { ns: 2 });
        assert_eq!(p.next(&mut ctx), Action::Exit);
        assert_eq!(p.next(&mut ctx), Action::Exit);
    }

    #[test]
    fn script_loops_n_times() {
        let mut rng = SimRng::new(1);
        let mut p = ScriptProgram::looped(vec![Action::Yield], 3);
        let mut ctx = ctx_fixture(&mut rng);
        for _ in 0..3 {
            assert_eq!(p.next(&mut ctx), Action::Yield);
        }
        assert_eq!(p.next(&mut ctx), Action::Exit);
    }

    #[test]
    fn empty_script_exits_immediately() {
        let mut rng = SimRng::new(1);
        let mut p = ScriptProgram::once(vec![]);
        let mut ctx = ctx_fixture(&mut rng);
        assert_eq!(p.next(&mut ctx), Action::Exit);
    }
}
