//! Task and program model for the simulated kernel.
//!
//! - [`ids`]: the newtype identifiers shared across the OS model.
//! - [`action`]: the [`Action`] vocabulary programs emit — compute phases,
//!   priced memory traversals, synchronization ops, spin loops.
//! - [`state`]: the task control block ([`Task`]) with CFS fields and the
//!   virtual-blocking / BWD flags the paper adds to `task_struct`.
//! - [`program`]: the [`Program`] trait workloads implement.

pub mod action;
pub mod ids;
pub mod program;
pub mod state;
pub mod table;

pub use action::{Action, SpinSig, SyncOp};
pub use ids::{BarrierId, CondId, EpollFd, FlagId, FutexKey, LockId, SemId, TaskId};
pub use program::{FnProgram, ProgCtx, Program, ScriptProgram};
pub use state::{Task, TaskState, TaskStats};
pub use table::TaskTable;
