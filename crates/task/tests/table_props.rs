//! Model-based property tests of the struct-of-arrays [`TaskTable`]
//! against the legacy per-task [`Task`] struct as a naive oracle.
//!
//! Every mutation the scheduler performs on the table — spawn, VB
//! park/unpark, wake-request and run-start accounting, and the direct
//! column writes the engine issues (state flips, vruntime updates, skip
//! flags, affinity edits) — is applied in lockstep to a `Vec<Task>`.
//! After each op the observable predicates (`schedulable`, `allows`)
//! must agree, and at the end every column must equal the corresponding
//! struct field row-for-row. This pins the SoA transpose exactly: a
//! column accidentally skipped in `push`, cross-wired in an accessor, or
//! diverging in VB save/restore order fails within a handful of cases.

use oversub_hw::CpuId;
use oversub_simcore::SimTime;
use oversub_task::program::{ProgCtx, Program};
use oversub_task::{Action, Task, TaskId, TaskState, TaskTable};
use proptest::prelude::*;

struct Nop;
impl Program for Nop {
    fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
        Action::Exit
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Append a fresh task whose home CPU is `cpu % 64`.
    Spawn(usize),
    /// `vb_park(t, tail_vruntime)` — skipped (on both) if already parked.
    VbPark(usize, u64),
    /// `vb_unpark(t)` — skipped if not parked.
    VbUnpark(usize),
    /// `note_wake_request(t, now)`.
    WakeRequest(usize, u64),
    /// `note_run_start(t, now)`.
    RunStart(usize, u64),
    /// Direct column writes, as the scheduler/engine issue them.
    SetState(usize, u8),
    SetVruntime(usize, u64),
    SetWeight(usize, u32),
    SetBwdSkip(usize, bool),
    SetAllowed(usize, u64),
    SetPinned(usize, Option<usize>),
    SetRunnableSince(usize, u64),
    SetLastCpu(usize, usize),
    /// Observable predicates, compared between table and oracle.
    CheckSchedulable(usize),
    CheckAllows(usize, usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let t = 0usize..32;
    proptest::collection::vec(
        prop_oneof![
            (0usize..64).prop_map(Op::Spawn),
            (t.clone(), any::<u64>()).prop_map(|(a, b)| Op::VbPark(a, b)),
            t.clone().prop_map(Op::VbUnpark),
            (t.clone(), 0u64..1 << 40).prop_map(|(a, b)| Op::WakeRequest(a, b)),
            (t.clone(), 0u64..1 << 40).prop_map(|(a, b)| Op::RunStart(a, b)),
            (t.clone(), 0u8..4).prop_map(|(a, b)| Op::SetState(a, b)),
            (t.clone(), any::<u64>()).prop_map(|(a, b)| Op::SetVruntime(a, b)),
            (t.clone(), 1u32..1 << 20).prop_map(|(a, b)| Op::SetWeight(a, b)),
            (t.clone(), any::<bool>()).prop_map(|(a, b)| Op::SetBwdSkip(a, b)),
            (t.clone(), any::<u64>()).prop_map(|(a, b)| Op::SetAllowed(a, b)),
            (
                t.clone(),
                prop_oneof![Just(None), (0usize..80).prop_map(Some)]
            )
                .prop_map(|(a, b)| Op::SetPinned(a, b)),
            (t.clone(), 0u64..1 << 40).prop_map(|(a, b)| Op::SetRunnableSince(a, b)),
            (t.clone(), 0usize..80).prop_map(|(a, b)| Op::SetLastCpu(a, b)),
            t.clone().prop_map(Op::CheckSchedulable),
            (t, 0usize..80).prop_map(|(a, b)| Op::CheckAllows(a, b)),
        ],
        1..200,
    )
}

fn states() -> [TaskState; 4] {
    [
        TaskState::Runnable,
        TaskState::Running,
        TaskState::Sleeping,
        TaskState::Exited,
    ]
}

/// Compare every column of the table against the oracle structs.
fn assert_columns_match(tt: &TaskTable, oracle: &[Task]) {
    prop_assert_eq!(tt.len(), oracle.len());
    for (i, t) in oracle.iter().enumerate() {
        prop_assert_eq!(tt.state[i], t.state, "state[{}]", i);
        prop_assert_eq!(tt.vruntime[i], t.vruntime, "vruntime[{}]", i);
        prop_assert_eq!(tt.weight[i], t.weight, "weight[{}]", i);
        prop_assert_eq!(tt.vb_blocked[i], t.vb_blocked, "vb_blocked[{}]", i);
        prop_assert_eq!(
            tt.vb_saved_vruntime[i],
            t.vb_saved_vruntime,
            "vb_saved_vruntime[{}]",
            i
        );
        prop_assert_eq!(tt.bwd_skip[i], t.bwd_skip, "bwd_skip[{}]", i);
        prop_assert_eq!(tt.last_cpu[i], t.last_cpu, "last_cpu[{}]", i);
        prop_assert_eq!(tt.pinned[i], t.pinned, "pinned[{}]", i);
        prop_assert_eq!(tt.allowed[i], t.allowed, "allowed[{}]", i);
        prop_assert_eq!(
            tt.runnable_since[i],
            t.runnable_since,
            "runnable_since[{}]",
            i
        );
        prop_assert_eq!(
            tt.wake_requested_at[i],
            t.wake_requested_at,
            "wake_requested_at[{}]",
            i
        );
        prop_assert_eq!(tt.footprint_bytes[i], t.footprint_bytes, "footprint[{}]", i);
        prop_assert_eq!(tt.random_access[i], t.random_access, "random_access[{}]", i);
        prop_assert_eq!(tt.addr_salt[i], t.addr_salt, "addr_salt[{}]", i);
        let (s, o) = (&tt.stats[i], &t.stats);
        prop_assert_eq!(s.wakeups, o.wakeups, "stats.wakeups[{}]", i);
        prop_assert_eq!(
            s.wakeup_latency_ns,
            o.wakeup_latency_ns,
            "stats.wakeup_latency_ns[{}]",
            i
        );
        prop_assert_eq!(s.wait_ns, o.wait_ns, "stats.wait_ns[{}]", i);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn table_matches_per_task_struct_oracle(ops in arb_ops()) {
        let mut tt = TaskTable::new();
        let mut oracle: Vec<Task> = Vec::new();
        for op in ops {
            // Resolve the task operand modulo the current population;
            // ops arriving before the first spawn are skipped.
            let pick = |k: usize| if oracle.is_empty() { None } else { Some(k % oracle.len()) };
            match op {
                Op::Spawn(cpu) => {
                    let id = TaskId(oracle.len());
                    tt.push(Task::new(id, Box::new(Nop), CpuId(cpu % 64)));
                    oracle.push(Task::new(id, Box::new(Nop), CpuId(cpu % 64)));
                }
                Op::VbPark(k, tail) => {
                    if let Some(i) = pick(k) {
                        if !oracle[i].vb_blocked {
                            tt.vb_park(TaskId(i), tail);
                            oracle[i].vb_park(tail);
                        }
                    }
                }
                Op::VbUnpark(k) => {
                    if let Some(i) = pick(k) {
                        if oracle[i].vb_blocked {
                            tt.vb_unpark(TaskId(i));
                            oracle[i].vb_unpark();
                        }
                    }
                }
                Op::WakeRequest(k, now) => {
                    if let Some(i) = pick(k) {
                        tt.note_wake_request(TaskId(i), SimTime::from_nanos(now));
                        oracle[i].note_wake_request(SimTime::from_nanos(now));
                    }
                }
                Op::RunStart(k, now) => {
                    if let Some(i) = pick(k) {
                        tt.note_run_start(TaskId(i), SimTime::from_nanos(now));
                        oracle[i].note_run_start(SimTime::from_nanos(now));
                    }
                }
                Op::SetState(k, s) => {
                    if let Some(i) = pick(k) {
                        tt.state[i] = states()[s as usize];
                        oracle[i].state = states()[s as usize];
                    }
                }
                Op::SetVruntime(k, v) => {
                    if let Some(i) = pick(k) {
                        tt.vruntime[i] = v;
                        oracle[i].vruntime = v;
                    }
                }
                Op::SetWeight(k, w) => {
                    if let Some(i) = pick(k) {
                        tt.weight[i] = w;
                        oracle[i].weight = w;
                    }
                }
                Op::SetBwdSkip(k, b) => {
                    if let Some(i) = pick(k) {
                        tt.bwd_skip[i] = b;
                        oracle[i].bwd_skip = b;
                    }
                }
                Op::SetAllowed(k, m) => {
                    if let Some(i) = pick(k) {
                        tt.allowed[i] = m;
                        oracle[i].allowed = m;
                    }
                }
                Op::SetPinned(k, c) => {
                    if let Some(i) = pick(k) {
                        tt.pinned[i] = c.map(CpuId);
                        oracle[i].pinned = c.map(CpuId);
                    }
                }
                Op::SetRunnableSince(k, now) => {
                    if let Some(i) = pick(k) {
                        tt.runnable_since[i] = SimTime::from_nanos(now);
                        oracle[i].runnable_since = SimTime::from_nanos(now);
                    }
                }
                Op::SetLastCpu(k, c) => {
                    if let Some(i) = pick(k) {
                        tt.last_cpu[i] = CpuId(c);
                        oracle[i].last_cpu = CpuId(c);
                    }
                }
                Op::CheckSchedulable(k) => {
                    if let Some(i) = pick(k) {
                        prop_assert_eq!(
                            tt.schedulable(TaskId(i)),
                            oracle[i].schedulable(),
                            "schedulable({}) diverged", i
                        );
                    }
                }
                Op::CheckAllows(k, c) => {
                    if let Some(i) = pick(k) {
                        prop_assert_eq!(
                            tt.allows(TaskId(i), CpuId(c)),
                            oracle[i].allows(CpuId(c)),
                            "allows({}, {}) diverged", i, c
                        );
                    }
                }
            }
        }
        assert_columns_match(&tt, &oracle);
    }
}
