//! `detlint` — determinism lint pass for the simulator workspace.
//!
//! Usage:
//!
//! ```text
//! cargo run -p analysis --bin detlint              # human-readable report
//! cargo run -p analysis --bin detlint -- --check   # exit non-zero on findings
//! cargo run -p analysis --bin detlint -- --json    # stable JSON report
//! cargo run -p analysis --bin detlint -- --root P  # scan workspace at P
//! ```
//!
//! Exit codes: 0 clean, 1 violations or stale allow entries, 2 usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::{find_workspace_root, parse_allowlist, scan_workspace, RULESET_VERSION};

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("detlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("detlint [--check] [--json] [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("detlint: could not locate the workspace root (no Cargo.toml + crates/)");
        return ExitCode::from(2);
    };

    let allow_path = root.join("detlint.toml");
    let allows = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("detlint: cannot read {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match parse_allowlist(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("detlint: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let report = match scan_workspace(&root, &allows) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!(
            "detlint {} — scanned {} files, {} violation(s), {} allowed, {} stale allow(s)",
            RULESET_VERSION,
            report.files_scanned,
            report.violations.len(),
            report.allowed.len(),
            report.unused_allows.len()
        );
        for v in &report.violations {
            println!("  {v}");
        }
        for v in &report.allowed {
            println!(
                "  (allowed) {v}\n            reason: {}",
                v.allowed_by.as_deref().unwrap_or("")
            );
        }
        for a in &report.unused_allows {
            println!(
                "  stale allow entry: rule {} path {} pattern `{}` matched nothing",
                a.rule, a.path, a.pattern
            );
        }
    }

    if check && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
