//! Determinism lints for the simulator workspace (`detlint`).
//!
//! The repo's value rests on bit-reproducible runs; nothing in `cargo
//! test` stops a contributor from reintroducing a default-hasher
//! `HashMap` whose iteration order leaks into simulation state, a
//! wall-clock read, or a panic on an engine path that was deliberately
//! converted to graceful degradation. This crate is a small, hermetic
//! (no external dependencies) workspace scanner enforcing seven rules:
//!
//! | rule | what it flags | where |
//! |------|---------------|-------|
//! | D1 | `HashMap` / `HashSet` (iteration order can reach sim state) | sim crates |
//! | D2 | wall-clock / ambient entropy (`Instant::now`, `SystemTime`, `thread_rng`, …) | everywhere except `bench` / `criterion` |
//! | D3 | `unwrap` / `expect` / `panic!` / `unreachable!` on engine hot paths | `oversub/src/engine/*`, `oversub/src/exec.rs`, `oversub/src/mechanism/*`, `task/src/state.rs`, `task/src/table.rs`, `sched/src/rq.rs`, `metrics/src/digest.rs` |
//! | D4 | mutable / public statics and `thread_local!` (state escaping seeding) | everywhere |
//! | D5 | ad-hoc host threads (`thread::spawn` / `thread::scope` / `thread::Builder`) | everywhere except `simcore/src/pool.rs` and `bench` / `criterion` |
//! | D6 | `SimRng::new` outside the engine root (RNG provenance: one seeded root per run, streams derived by `fork`) | sim crates except `simcore` |
//! | D7 | `min_by` / `max_by` / `min_by_key` / `max_by_key` (first-wins tie-break makes the pick iteration-order-dependent) | sim crates |
//!
//! Violations can be suppressed with a justified entry in `detlint.toml`
//! (rule + path + pattern + reason); unused entries are themselves
//! failures in `--check` mode so the allowlist never rots. The scanner is
//! token-based over comment- and string-stripped source (the repo bans
//! external crates, so a `syn` AST pass is not an option) with
//! `#[cfg(test)]` regions skipped — test code may use hash maps freely.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use oversub_metrics::json::{obj, JsonValue};

/// Version stamp of the rule set, printed by `detlint` and recorded in
/// bench JSON headers so artifacts say which invariants were in force.
/// Bump when a rule is added, removed, or materially changed.
pub const RULESET_VERSION: &str = "detlint-v6";

/// Crates whose containers can reach simulation state: a nondeterministic
/// iteration order here can change scheduling decisions and break the
/// golden bit-identity tests.
const SIM_CRATES: &[&str] = &[
    "simcore",
    "sched",
    "ksync",
    "locks",
    "oversub",
    "bwd",
    "workloads",
    "task",
];

/// Crates allowed to read wall clocks (they measure the host, not the
/// simulation).
const TIME_EXEMPT_CRATES: &[&str] = &["bench", "criterion"];

/// The only library files allowed to create host threads (D5): the
/// deterministic worker pool every parallel code path must go through,
/// and the shard executor that runs intra-run lookahead windows on
/// persistent workers with deterministic k-way merge folds (detlint-v6).
const HOST_THREAD_FILES: &[&str] = &["crates/simcore/src/pool.rs", "crates/simcore/src/shard.rs"];

/// One lint rule: id, searched tokens, and a description.
struct Rule {
    id: &'static str,
    tokens: &'static [&'static str],
    message: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        id: "D1",
        tokens: &["HashMap", "HashSet"],
        message: "default-hasher container in a sim crate; iteration order can reach \
                  simulation state — use BTreeMap/BTreeSet or sorted iteration, or add a \
                  justified allow entry",
    },
    Rule {
        id: "D2",
        tokens: &[
            "Instant::now",
            "SystemTime",
            "thread_rng",
            "rand::random",
            "getrandom",
            "RandomState",
        ],
        message: "wall-clock or ambient-entropy source outside bench/criterion; all \
                  simulator randomness must flow from the seeded SimRng",
    },
    Rule {
        id: "D3",
        tokens: &[
            ".unwrap(",
            ".expect(",
            "panic!(",
            "unreachable!(",
            "todo!(",
            "unimplemented!(",
        ],
        message: "panicking construct on an engine hot path; these paths degrade \
                  gracefully via structured diagnostics — return or push_diagnostic \
                  instead",
    },
    Rule {
        id: "D4",
        tokens: &["static mut", "thread_local!", "pub static"],
        message: "mutable or public static state escapes per-run seeding; thread run \
                  state through the engine so every run starts identical",
    },
    Rule {
        id: "D5",
        tokens: &["thread::spawn", "thread::scope", "thread::Builder"],
        message: "ad-hoc host thread outside the deterministic worker pool; route \
                  parallel work through simcore::pool / oversub::sweep so results \
                  merge in submission order and stay byte-identical at any jobs \
                  count",
    },
    Rule {
        id: "D6",
        tokens: &["SimRng::new("],
        message: "root RNG constructed outside the engine; every run has exactly one \
                  seeded root (Engine::try_new) and all other streams derive from it \
                  via fork, so two constructions of the same seed cannot silently \
                  correlate — take a forked stream instead, or add a justified allow \
                  entry",
    },
    Rule {
        id: "D7",
        tokens: &["min_by(", "max_by(", "min_by_key(", "max_by_key("],
        message: "first-wins extremum over an iterator: on ties the pick depends on \
                  iteration order, which the schedule-robustness certifier permutes — \
                  select with an order-independent total key (tuple with a stable \
                  index) or justify why ties are impossible",
    },
];

/// Is `crate_name` subject to `rule` for a file at `rel_path`?
fn rule_applies(rule: &Rule, crate_name: &str, rel_path: &str) -> bool {
    match rule.id {
        "D1" => SIM_CRATES.contains(&crate_name),
        "D2" => !TIME_EXEMPT_CRATES.contains(&crate_name),
        "D3" => {
            rel_path.starts_with("crates/oversub/src/engine/")
                // Mechanism hooks run inside the engine's event loop —
                // a panic there takes down the whole run (detlint-v4).
                || rel_path.starts_with("crates/oversub/src/mechanism/")
                || rel_path == "crates/oversub/src/exec.rs"
                // Per-event hot state: the task columns and the runqueue
                // are touched on every pick/stop/wake, so they degrade
                // via diagnostics like the engine proper (detlint-v3).
                || rel_path == "crates/task/src/state.rs"
                || rel_path == "crates/task/src/table.rs"
                || rel_path == "crates/sched/src/rq.rs"
                // The exact latency digest records on every request
                // completion and merges on the sweep pool's join path
                // (detlint-v4).
                || rel_path == "crates/metrics/src/digest.rs"
        }
        "D4" => true,
        "D5" => !HOST_THREAD_FILES.contains(&rel_path) && !TIME_EXEMPT_CRATES.contains(&crate_name),
        // simcore is exempt from D6: it defines SimRng, and its doc
        // examples and helpers are the construction reference.
        "D6" => SIM_CRATES.contains(&crate_name) && crate_name != "simcore",
        "D7" => SIM_CRATES.contains(&crate_name),
        _ => false,
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule id (`D1`..`D7`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The offending (stripped) source line, trimmed.
    pub excerpt: String,
    /// The rule's message.
    pub message: &'static str,
    /// The allow entry's reason, when suppressed.
    pub allowed_by: Option<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: `{}`",
            self.file, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// One `[[allow]]` entry from `detlint.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative path (exact match).
    pub path: String,
    /// Substring the offending line must contain.
    pub pattern: String,
    /// Why this use is sound. Required — an allow without a justification
    /// is rejected at parse time.
    pub reason: String,
}

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Violations not covered by an allow entry.
    pub violations: Vec<Violation>,
    /// Violations matched (and suppressed) by an allow entry.
    pub allowed: Vec<Violation>,
    /// Allow entries that matched nothing — stale, and a `--check`
    /// failure so the allowlist cannot rot.
    pub unused_allows: Vec<AllowEntry>,
}

impl ScanReport {
    /// True when `--check` should exit zero.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unused_allows.is_empty()
    }

    /// Stable JSON form (sorted scan order; key order fixed).
    pub fn to_json(&self) -> JsonValue {
        let viol = |v: &Violation| {
            obj(vec![
                ("rule", JsonValue::Str(v.rule.to_string())),
                ("file", JsonValue::Str(v.file.clone())),
                ("line", JsonValue::UInt(v.line as u128)),
                ("excerpt", JsonValue::Str(v.excerpt.clone())),
                (
                    "allowed_by",
                    match &v.allowed_by {
                        Some(r) => JsonValue::Str(r.clone()),
                        None => JsonValue::Null,
                    },
                ),
            ])
        };
        obj(vec![
            ("ruleset", JsonValue::Str(RULESET_VERSION.to_string())),
            ("files_scanned", JsonValue::UInt(self.files_scanned as u128)),
            (
                "violations",
                JsonValue::Array(self.violations.iter().map(viol).collect()),
            ),
            (
                "allowed",
                JsonValue::Array(self.allowed.iter().map(viol).collect()),
            ),
            (
                "unused_allows",
                JsonValue::Array(
                    self.unused_allows
                        .iter()
                        .map(|a| {
                            obj(vec![
                                ("rule", JsonValue::Str(a.rule.clone())),
                                ("path", JsonValue::Str(a.path.clone())),
                                ("pattern", JsonValue::Str(a.pattern.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// Allowlist (minimal TOML subset: `[[allow]]` tables of string pairs)
// ---------------------------------------------------------------------

/// Parse `detlint.toml`. Only the subset the allowlist needs is accepted:
/// comments, blank lines, `[[allow]]` headers, and `key = "value"` string
/// pairs with keys `rule`/`path`/`pattern`/`reason`.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    let mut cur: Option<[Option<String>; 4]> = None;
    let finish =
        |slot: Option<[Option<String>; 4]>, entries: &mut Vec<AllowEntry>| -> Result<(), String> {
            let Some([rule, path, pattern, reason]) = slot else {
                return Ok(());
            };
            let entry = AllowEntry {
                rule: rule.ok_or("allow entry missing `rule`")?,
                path: path.ok_or("allow entry missing `path`")?,
                pattern: pattern.ok_or("allow entry missing `pattern`")?,
                reason: reason.ok_or("allow entry missing `reason`")?,
            };
            if !RULES.iter().any(|r| r.id == entry.rule) {
                return Err(format!("allow entry names unknown rule `{}`", entry.rule));
            }
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "allow entry for {}:{} has an empty reason — every allow must be justified",
                    entry.rule, entry.path
                ));
            }
            entries.push(entry);
            Ok(())
        };
    for (i, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(cur.take(), &mut entries)?;
            cur = Some([None, None, None, None]);
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(format!("detlint.toml line {}: unrecognized syntax", i + 1));
        };
        let key = k.trim();
        let val = v.trim();
        let unq = val
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("detlint.toml line {}: value must be a quoted string", i + 1))?;
        let slot = cur
            .as_mut()
            .ok_or_else(|| format!("detlint.toml line {}: key outside [[allow]]", i + 1))?;
        let idx = match key {
            "rule" => 0,
            "path" => 1,
            "pattern" => 2,
            "reason" => 3,
            other => {
                return Err(format!(
                    "detlint.toml line {}: unknown key `{other}`",
                    i + 1
                ))
            }
        };
        slot[idx] = Some(unq.to_string());
    }
    finish(cur.take(), &mut entries)?;
    Ok(entries)
}

/// Drop a `#`-to-end-of-line comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

// ---------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------

/// Blank out comments and string literals, preserving line structure, so
/// token matching cannot fire on prose or on rule names quoted in
/// messages. Handles nested block comments and `r"…"` / `r#"…"#` raw
/// strings; character literals are left alone (no rule token fits in
/// one, and lifetimes share the quote).
pub fn strip_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (any hash count).
        if c == 'r' && matches!(b.get(i + 1), Some(&'"') | Some(&'#')) {
            let mut j = i + 1;
            let mut hashes = 0;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                j += 1;
                'raw: while j < b.len() {
                    if b[j] == '"' {
                        let mut k = j + 1;
                        let mut h = 0;
                        while h < hashes && b.get(k) == Some(&'#') {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            j = k;
                            break 'raw;
                        }
                    }
                    if b[j] == '\n' {
                        out.push('\n');
                    }
                    j += 1;
                }
                out.push(' ');
                i = j;
                continue;
            }
        }
        // Ordinary string literal.
        if c == '"' {
            i += 1;
            while i < b.len() {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        out.push('\n');
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.push(' ');
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Per-line flags for `#[cfg(test)]` regions: the attribute line, then
/// the following item's braces. Test code is exempt from every rule.
pub fn test_region_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut li = 0;
    while li < lines.len() {
        if !lines[li].contains("#[cfg(test)]") {
            li += 1;
            continue;
        }
        mask[li] = true;
        // Find the opening brace of the annotated item, then match it.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut lj = li;
        'outer: while lj < lines.len() {
            mask[lj] = true;
            for c in lines[lj].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
                if opened && depth == 0 {
                    break 'outer;
                }
            }
            lj += 1;
        }
        li = lj + 1;
    }
    mask
}

// ---------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------

/// Scan one file's content. `crate_name` decides which rules apply;
/// `rel_path` is recorded in findings and matched against the allowlist.
pub fn scan_source(crate_name: &str, rel_path: &str, src: &str) -> Vec<Violation> {
    let stripped = strip_source(src);
    let mask = test_region_mask(&stripped);
    let mut out = Vec::new();
    for rule in RULES {
        if !rule_applies(rule, crate_name, rel_path) {
            continue;
        }
        for (ln, line) in stripped.lines().enumerate() {
            if mask.get(ln).copied().unwrap_or(false) {
                continue;
            }
            if rule.tokens.iter().any(|t| line.contains(t)) {
                out.push(Violation {
                    rule: rule.id,
                    file: rel_path.to_string(),
                    line: ln + 1,
                    excerpt: line.trim().to_string(),
                    message: rule.message,
                    allowed_by: None,
                });
            }
        }
    }
    out
}

/// Walk `crates/*/src` (plus the root package's `src/`) under `root`,
/// scan every `.rs` file, and split findings by the allowlist.
pub fn scan_workspace(root: &Path, allows: &[AllowEntry]) -> io::Result<ScanReport> {
    let mut files: Vec<(String, PathBuf)> = Vec::new(); // (crate name, path)
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect_rs(&dir.join("src"), &name, &mut files)?;
    }
    collect_rs(&root.join("src"), "thread-oversub", &mut files)?;
    files.sort();

    let mut report = ScanReport::default();
    let mut used = vec![false; allows.len()];
    for (crate_name, path) in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        report.files_scanned += 1;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        for mut v in scan_source(crate_name, &rel, &src) {
            let hit = allows.iter().enumerate().find(|(_, a)| {
                a.rule == v.rule && a.path == v.file && v.excerpt.contains(&a.pattern)
            });
            match hit {
                Some((idx, a)) => {
                    used[idx] = true;
                    v.allowed_by = Some(a.reason.clone());
                    report.allowed.push(v);
                }
                None => report.violations.push(v),
            }
        }
    }
    for (i, a) in allows.iter().enumerate() {
        if !used[i] {
            report.unused_allows.push(a.clone());
        }
    }
    Ok(report)
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, crate_name: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, crate_name, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push((crate_name.to_string(), p));
        }
    }
    Ok(())
}

/// Locate the workspace root: `$CARGO_MANIFEST_DIR/../..` when run via
/// cargo, else walk up from the current directory to the first directory
/// holding both `Cargo.toml` and `crates/`.
pub fn find_workspace_root() -> Option<PathBuf> {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("crates").is_dir() {
                return Some(root.to_path_buf());
            }
        }
    }
    let mut cur = std::env::current_dir().ok()?;
    loop {
        if cur.join("Cargo.toml").is_file() && cur.join("crates").is_dir() {
            return Some(cur);
        }
        if !cur.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let src = "let a = 1; // HashMap in a comment\nlet b = \"HashMap\"; /* HashMap\nHashMap */ let c = 2;\n";
        let s = strip_source(src);
        assert!(!s.contains("HashMap"), "{s}");
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn stripper_handles_raw_strings_and_nesting() {
        let src =
            "let r = r#\"Instant::now\"#;\n/* outer /* inner */ still comment */ let x = 1;\n";
        let s = strip_source(src);
        assert!(!s.contains("Instant::now"));
        assert!(s.contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\nfn g() {}\n";
        let v = scan_source("sched", "crates/sched/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn d1_fires_only_in_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan_source("sched", "crates/sched/src/x.rs", src).len(), 1);
        assert!(scan_source("metrics", "crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn d2_exempts_bench_and_criterion() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(scan_source("sched", "crates/sched/src/x.rs", src).len(), 1);
        assert!(scan_source("bench", "crates/bench/src/x.rs", src).is_empty());
        assert!(scan_source("criterion", "crates/criterion/src/x.rs", src).is_empty());
    }

    #[test]
    fn d3_scopes_to_engine_hot_paths() {
        let src = "x.unwrap();\n";
        assert_eq!(
            scan_source("oversub", "crates/oversub/src/engine/events.rs", src).len(),
            1
        );
        assert_eq!(
            scan_source("oversub", "crates/oversub/src/exec.rs", src).len(),
            1
        );
        assert!(scan_source("oversub", "crates/oversub/src/config.rs", src).is_empty());
        // Per-event hot state outside the engine crate is covered too.
        assert_eq!(
            scan_source("task", "crates/task/src/state.rs", src).len(),
            1
        );
        assert_eq!(
            scan_source("task", "crates/task/src/table.rs", src).len(),
            1
        );
        assert_eq!(scan_source("sched", "crates/sched/src/rq.rs", src).len(), 1);
        // detlint-v4: mechanism hooks and the exact latency digest run on
        // per-event / per-request paths.
        assert_eq!(
            scan_source("oversub", "crates/oversub/src/mechanism/neighbour.rs", src).len(),
            1
        );
        assert_eq!(
            scan_source("metrics", "crates/metrics/src/digest.rs", src).len(),
            1
        );
        assert!(scan_source("metrics", "crates/metrics/src/hist.rs", src).is_empty());
        assert!(scan_source("task", "crates/task/src/program.rs", src).is_empty());
        // unwrap_or_else is not the panicking form.
        assert!(scan_source(
            "oversub",
            "crates/oversub/src/exec.rs",
            "x.unwrap_or_else(|| 3);\n"
        )
        .is_empty());
    }

    #[test]
    fn d5_confines_host_threads_to_the_pool() {
        let src = "std::thread::spawn(|| {});\n";
        // Fires in sim and support crates alike…
        assert_eq!(
            scan_source("oversub", "crates/oversub/src/sweep.rs", src).len(),
            1
        );
        assert_eq!(
            scan_source("metrics", "crates/metrics/src/x.rs", src).len(),
            1
        );
        // …but not in the pool itself or the host-measuring crates.
        assert!(scan_source("simcore", "crates/simcore/src/pool.rs", src).is_empty());
        assert!(scan_source("bench", "crates/bench/src/bin/x.rs", src).is_empty());
        assert!(scan_source("criterion", "crates/criterion/src/x.rs", src).is_empty());
        // Scoped spawns and named builders are the same hazard.
        assert_eq!(
            scan_source(
                "sched",
                "crates/sched/src/x.rs",
                "std::thread::scope(|s| {});\n"
            )
            .len(),
            1
        );
        assert_eq!(
            scan_source(
                "sched",
                "crates/sched/src/x.rs",
                "thread::Builder::new();\n"
            )
            .len(),
            1
        );
        // available_parallelism is a read, not a thread, and stays legal.
        assert!(scan_source(
            "oversub",
            "crates/oversub/src/sweep.rs",
            "std::thread::available_parallelism();\n"
        )
        .is_empty());
    }

    #[test]
    fn d6_confines_root_rng_to_sim_crates_outside_simcore() {
        let src = "let rng = SimRng::new(seed);\n";
        // Fires in sim crates that should fork from the engine's root…
        assert_eq!(
            scan_source("oversub", "crates/oversub/src/faults.rs", src).len(),
            1
        );
        assert_eq!(
            scan_source("workloads", "crates/workloads/src/admission.rs", src).len(),
            1
        );
        // …but not in simcore (the defining crate) or non-sim crates.
        assert!(scan_source("simcore", "crates/simcore/src/rng.rs", src).is_empty());
        assert!(scan_source("bench", "crates/bench/src/x.rs", src).is_empty());
        assert!(scan_source("analysis", "crates/analysis/src/lib.rs", src).is_empty());
        // Forked streams are the sanctioned derivation.
        assert!(scan_source(
            "oversub",
            "crates/oversub/src/faults.rs",
            "let s = base.fork(STREAM);\n"
        )
        .is_empty());
    }

    #[test]
    fn d7_flags_first_wins_extrema_in_sim_crates() {
        for call in [
            "xs.iter().min_by_key(|x| x.t);\n",
            "xs.iter().max_by_key(|x| x.t);\n",
            "xs.iter().min_by(|a, b| a.cmp(b));\n",
            "xs.iter().max_by(|a, b| a.cmp(b));\n",
        ] {
            assert_eq!(
                scan_source("sched", "crates/sched/src/x.rs", call).len(),
                1,
                "{call}"
            );
        }
        // Non-sim crates may select freely (their outputs are host-side).
        assert!(scan_source(
            "metrics",
            "crates/metrics/src/x.rs",
            "xs.iter().min_by_key(|x| x.t);\n"
        )
        .is_empty());
        // Plain min()/max() on totally ordered keys are not flagged.
        assert!(scan_source("sched", "crates/sched/src/x.rs", "xs.iter().min();\n").is_empty());
    }

    #[test]
    fn d4_flags_statics_everywhere() {
        let src = "static mut COUNTER: u64 = 0;\n";
        assert_eq!(
            scan_source("metrics", "crates/metrics/src/x.rs", src).len(),
            1
        );
    }

    #[test]
    fn allowlist_round_trip() {
        let toml = r##"
# a comment
[[allow]]
rule = "D1"
path = "crates/simcore/src/events.rs"  # trailing comment
pattern = "HashSet"
reason = "probe-only set; never iterated"
"##;
        let entries = parse_allowlist(toml).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "D1");
        assert_eq!(entries[0].pattern, "HashSet");
    }

    #[test]
    fn allowlist_rejects_missing_reason_and_unknown_rules() {
        assert!(
            parse_allowlist("[[allow]]\nrule = \"D1\"\npath = \"p\"\npattern = \"x\"\n").is_err()
        );
        assert!(parse_allowlist(
            "[[allow]]\nrule = \"D9\"\npath = \"p\"\npattern = \"x\"\nreason = \"r\"\n"
        )
        .is_err());
        assert!(parse_allowlist("rule = \"D1\"\n").is_err());
    }

    #[test]
    fn report_json_is_stable() {
        let mut r = ScanReport {
            files_scanned: 2,
            ..ScanReport::default()
        };
        r.violations.push(Violation {
            rule: "D1",
            file: "crates/sched/src/x.rs".into(),
            line: 3,
            excerpt: "use std::collections::HashMap;".into(),
            message: "m",
            allowed_by: None,
        });
        let a = r.to_json().to_string_compact();
        let b = r.to_json().to_string_compact();
        assert_eq!(a, b);
        assert!(a.contains("\"ruleset\":\"detlint-v6\""));
        assert!(!r.is_clean());
    }
}
