// D3 clean: hot paths degrade via structured fallbacks, not panics.
pub fn pick(xs: &[u64]) -> u64 {
    let first = xs.first().copied().unwrap_or_default();
    first.max(1)
}
