// D5 clean: parallelism goes through the deterministic pool; reading
// the host's parallelism is a query, not a thread.
pub fn width() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
