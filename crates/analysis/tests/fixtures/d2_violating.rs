// D2 fixture: ambient time and entropy in simulation code.
pub fn stamp() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
