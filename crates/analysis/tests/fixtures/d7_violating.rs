// D7 fixture: first-wins extrema depend on iteration order at ties.
pub fn best(xs: &[(u64, u64)]) -> Option<&(u64, u64)> {
    xs.iter().min_by_key(|&&(_, cost)| cost)
}
