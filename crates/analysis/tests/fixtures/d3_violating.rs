// D3 fixture: panicking constructs on an engine hot path.
pub fn pick(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap();
    if *first == 0 {
        panic!("zero");
    }
    *first
}
