// D6 clean: streams derive from the engine's root by fork, so equal
// seeds can never silently correlate across subsystems.
pub fn jitter(base: &SimRng) -> u64 {
    let mut rng = base.fork(JITTER_STREAM);
    rng.next_u64()
}
