// D4 clean: run state threads through the engine; constants are fine.
const LIMIT: u64 = 8;

pub struct Counters {
    pub hits: u64,
}

pub fn bump(c: &mut Counters) {
    if c.hits < LIMIT {
        c.hits += 1;
    }
}
