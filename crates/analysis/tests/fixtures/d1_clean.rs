// D1 clean: ordered containers keep iteration deterministic.
// "HashMap" in this comment and the string below must not fire.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u64]) -> usize {
    let label = "not a HashMap";
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    for &x in xs {
        seen.insert(x);
        *m.entry(x).or_insert(0) += 1;
    }
    let _ = label;
    seen.len()
}

#[cfg(test)]
mod tests {
    // Test code may hash freely; the mask must cover this.
    use std::collections::HashMap;

    #[test]
    fn hashed() {
        let _m: HashMap<u8, u8> = HashMap::new();
    }
}
