// D5 shard-executor confinement, violating side: the identical worker
// spawn placed in any OTHER simcore module fires D5 — parallel work
// must route through `simcore::pool` or `simcore::shard`, never grow a
// third thread-creation site.
pub fn spawn_workers(n: usize) -> Vec<std::thread::JoinHandle<()>> {
    (1..n)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("lane-{i}"))
                .spawn(move || {})
                .unwrap_or_else(|e| panic!("spawn lane worker {i}: {e}"))
        })
        .collect()
}
