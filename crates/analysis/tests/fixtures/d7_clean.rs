// D7 clean: a total key (cost, then stable index) makes the pick
// independent of iteration order even when costs tie.
pub fn best(xs: &[(u64, u64)]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .map(|(i, &(_, cost))| (cost, i))
        .min()
        .map(|(_, i)| i)
}
