// D5 shard-executor confinement, clean side: persistent named workers
// spawned the way `simcore::shard` does. Sanctioned ONLY at
// `crates/simcore/src/shard.rs` (see HOST_THREAD_FILES) — the executor
// owns the workers for the whole run and folds results in shard order,
// so determinism is preserved by construction.
pub fn spawn_workers(n: usize) -> Vec<std::thread::JoinHandle<()>> {
    (1..n)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("shard-{i}"))
                .spawn(move || {})
                .unwrap_or_else(|e| panic!("spawn shard worker {i}: {e}"))
        })
        .collect()
}
