// D5 fixture: ad-hoc host thread outside the worker pool.
pub fn fan_out() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
