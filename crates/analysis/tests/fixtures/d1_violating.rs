// D1 fixture: default-hasher containers in a sim crate.
use std::collections::HashMap;

pub fn tally(xs: &[u64]) -> usize {
    let mut seen: std::collections::HashSet<u64> = Default::default();
    let mut m: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *m.entry(x).or_insert(0) += 1;
    }
    seen.len()
}
