// D4 fixture: mutable global state escapes per-run seeding.
static mut HITS: u64 = 0;

thread_local! {
    static LOCAL: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}
