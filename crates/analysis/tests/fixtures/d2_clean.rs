// D2 clean: time comes from the simulation clock, randomness from the
// seeded stream the caller passes down.
pub fn stamp(now_ns: u64, jitter: u64) -> u64 {
    now_ns + jitter
}
