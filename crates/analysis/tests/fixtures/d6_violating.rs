// D6 fixture: a second root RNG constructed away from the engine.
pub fn jitter(seed: u64) -> u64 {
    let mut rng = SimRng::new(seed);
    rng.next_u64()
}
