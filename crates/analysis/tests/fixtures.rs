//! Fixture corpus for the detlint rules (introduced with detlint-v5;
//! the D5 shard-executor confinement pair landed with detlint-v6).
//!
//! Every rule D1–D7 has a violating and a clean fixture under
//! `tests/fixtures/`. The violating snippet must fire exactly the
//! expected findings at a path where the rule applies; the clean snippet
//! shows the sanctioned idiom and must stay silent. On top of the
//! per-rule checks, the full corpus is snapshot-tested: the human
//! (`Display`) rendering and the stable JSON form are compared byte for
//! byte against checked-in goldens, so any change to rule messages,
//! finding layout, or the report schema is a reviewed diff, not an
//! accident. Regenerate the goldens with `DETLINT_BLESS=1 cargo test -p
//! analysis --test fixtures`.

use analysis::{scan_source, ScanReport, Violation, RULESET_VERSION};
use std::fs;
use std::path::PathBuf;

/// Rule id → (crate, workspace-relative path) where the rule applies.
const RULE_SITES: &[(&str, &str, &str)] = &[
    ("D1", "sched", "crates/sched/src/fixture.rs"),
    ("D2", "sched", "crates/sched/src/fixture.rs"),
    ("D3", "oversub", "crates/oversub/src/engine/fixture.rs"),
    ("D4", "metrics", "crates/metrics/src/fixture.rs"),
    ("D5", "sched", "crates/sched/src/fixture.rs"),
    ("D6", "oversub", "crates/oversub/src/engine/fixture.rs"),
    ("D7", "locks", "crates/locks/src/fixture.rs"),
];

/// Findings each violating fixture must produce (rule fired, count).
const EXPECTED_COUNTS: &[(&str, usize)] = &[
    ("D1", 3),
    ("D2", 1),
    ("D3", 2),
    ("D4", 2),
    ("D5", 1),
    ("D6", 1),
    ("D7", 1),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read_fixture(name: &str) -> String {
    let p = fixture_dir().join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("fixture {}: {e}", p.display()))
}

fn site(rule: &str) -> (&'static str, &'static str) {
    RULE_SITES
        .iter()
        .find(|(r, _, _)| *r == rule)
        .map(|&(_, c, p)| (c, p))
        .unwrap_or_else(|| panic!("no site for rule {rule}"))
}

/// Scan one fixture at its rule's site, keeping only that rule's findings
/// (a fixture placed on an engine path may incidentally satisfy other
/// rules' applicability, but must not trip them — asserted separately).
fn scan_fixture(rule: &str, name: &str) -> Vec<Violation> {
    let (crate_name, rel_path) = site(rule);
    scan_source(crate_name, rel_path, &read_fixture(name))
}

#[test]
fn violating_fixtures_fire_exactly_their_rule() {
    for &(rule, count) in EXPECTED_COUNTS {
        let name = format!("{}_violating.rs", rule.to_lowercase());
        let found = scan_fixture(rule, &name);
        let of_rule = found.iter().filter(|v| v.rule == rule).count();
        assert_eq!(
            of_rule, count,
            "{name}: expected {count} {rule} findings, got {found:?}"
        );
        assert_eq!(
            of_rule,
            found.len(),
            "{name}: fixture tripped foreign rules: {found:?}"
        );
    }
}

/// D5 confinement (detlint-v6): host-thread creation is sanctioned at
/// exactly two library files — the deterministic worker pool and the
/// intra-run shard executor. The same worker-spawn snippet must be
/// silent at the shard executor's path and fire D5 anywhere else in the
/// crate.
#[test]
fn d5_confinement_permits_only_the_pool_and_shard_executor() {
    for path in ["crates/simcore/src/pool.rs", "crates/simcore/src/shard.rs"] {
        let found = scan_source("simcore", path, &read_fixture("d5_shard_clean.rs"));
        let fired = found.iter().filter(|v| v.rule == "D5").count();
        assert_eq!(
            fired, 0,
            "{path}: sanctioned spawn site tripped D5: {found:?}"
        );
    }
    let found = scan_source(
        "simcore",
        "crates/simcore/src/lanes.rs",
        &read_fixture("d5_shard_violating.rs"),
    );
    let fired = found.iter().filter(|v| v.rule == "D5").count();
    assert_eq!(
        fired, 1,
        "unsanctioned spawn site must fire D5 exactly once: {found:?}"
    );
}

#[test]
fn clean_fixtures_stay_silent() {
    for &(rule, _) in EXPECTED_COUNTS {
        let name = format!("{}_clean.rs", rule.to_lowercase());
        let found = scan_fixture(rule, &name);
        assert!(found.is_empty(), "{name}: false positives {found:?}");
    }
}

/// Build the corpus-wide report in fixture order: deterministic input for
/// the snapshots below.
fn corpus_report() -> ScanReport {
    let mut report = ScanReport::default();
    for &(rule, _) in EXPECTED_COUNTS {
        for kind in ["violating", "clean"] {
            let name = format!("{}_{kind}.rs", rule.to_lowercase());
            report.files_scanned += 1;
            report.violations.extend(scan_fixture(rule, &name));
        }
    }
    report
}

fn check_snapshot(name: &str, rendered: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("DETLINT_BLESS").is_some() {
        fs::write(&path, rendered).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let golden = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with DETLINT_BLESS=1", name));
    assert_eq!(
        golden, rendered,
        "snapshot {name} drifted; if intentional, re-bless with DETLINT_BLESS=1"
    );
}

#[test]
fn human_output_matches_snapshot() {
    let report = corpus_report();
    let mut out = String::new();
    out.push_str(&format!("ruleset {RULESET_VERSION}\n"));
    for v in &report.violations {
        out.push_str(&format!("{v}\n"));
    }
    check_snapshot("expected_human.txt", &out);
}

#[test]
fn json_output_matches_snapshot() {
    let report = corpus_report();
    let mut out = report.to_json().to_string_compact();
    out.push('\n');
    // The stable JSON is itself stable across calls.
    assert_eq!(out.trim_end(), report.to_json().to_string_compact());
    check_snapshot("expected_json.txt", &out);
}
