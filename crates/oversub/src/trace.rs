//! Execution tracing: an optional per-run timeline of scheduling events.
//!
//! Enable with [`crate::RunConfig::traced`]; the engine then records one
//! [`TraceEvent`] per scheduling transition (bounded by
//! [`TraceLog::CAPACITY`] — the newest events win). The log renders as a
//! readable timeline and is the intended first stop when a workload
//! misbehaves.

use oversub_simcore::SimTime;
use oversub_task::TaskId;
use std::collections::VecDeque;

/// One scheduling transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Task started running on the CPU.
    Run,
    /// Task left the CPU voluntarily (block / yield / exit).
    Stop,
    /// Task was preempted.
    Preempt,
    /// Task went to sleep in the kernel.
    Sleep,
    /// Task parked under virtual blocking.
    VbPark,
    /// Task was woken (kernel wakeup or VB flag clear).
    Wake,
    /// Task was migrated to this CPU.
    Migrate,
    /// BWD descheduled the task as a spinner.
    BwdDeschedule,
    /// PLE exited the task's spin loop.
    PleExit,
}

impl TraceKind {
    /// Short label for the timeline.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Run => "run",
            TraceKind::Stop => "stop",
            TraceKind::Preempt => "preempt",
            TraceKind::Sleep => "sleep",
            TraceKind::VbPark => "vb-park",
            TraceKind::Wake => "wake",
            TraceKind::Migrate => "migrate",
            TraceKind::BwdDeschedule => "bwd",
            TraceKind::PleExit => "ple",
        }
    }
}

/// One timeline entry.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// When.
    pub at: SimTime,
    /// Which CPU.
    pub cpu: usize,
    /// Which task.
    pub task: TaskId,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded scheduling-event log.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    enabled: bool,
}

impl TraceLog {
    /// Maximum retained events (newest win).
    pub const CAPACITY: usize = 65_536;

    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// An enabled log.
    pub fn enabled() -> Self {
        TraceLog {
            enabled: true,
            ..TraceLog::default()
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, at: SimTime, cpu: usize, task: TaskId, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= Self::CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            cpu,
            task,
            kind,
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the newest `limit` events as a timeline.
    pub fn render_tail(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let skip = self.events.len().saturating_sub(limit);
        for e in self.events.iter().skip(skip) {
            let _ = writeln!(
                out,
                "{:>14}  cpu{:<2} {:>4}  {}",
                e.at.to_string(),
                e.cpu,
                e.task.to_string(),
                e.kind.label()
            );
        }
        out
    }

    /// Per-task event counts of a given kind (handy in tests: e.g. how many
    /// times was T3 BWD-descheduled?).
    pub fn count(&self, task: TaskId, kind: TraceKind) -> usize {
        self.events
            .iter()
            .filter(|e| e.task == task && e.kind == kind)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut l = TraceLog::disabled();
        l.record(SimTime::ZERO, 0, TaskId(0), TraceKind::Run);
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut l = TraceLog::enabled();
        l.record(SimTime::from_nanos(1), 0, TaskId(0), TraceKind::Run);
        l.record(SimTime::from_nanos(2), 0, TaskId(0), TraceKind::Preempt);
        l.record(SimTime::from_nanos(3), 1, TaskId(1), TraceKind::Wake);
        assert_eq!(l.len(), 3);
        let kinds: Vec<_> = l.events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![TraceKind::Run, TraceKind::Preempt, TraceKind::Wake]
        );
        assert_eq!(l.count(TaskId(0), TraceKind::Run), 1);
        assert_eq!(l.count(TaskId(1), TraceKind::Run), 0);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut l = TraceLog::enabled();
        for i in 0..(TraceLog::CAPACITY + 10) {
            l.record(SimTime::from_nanos(i as u64), 0, TaskId(0), TraceKind::Run);
        }
        assert_eq!(l.len(), TraceLog::CAPACITY);
        assert_eq!(l.dropped(), 10);
        assert_eq!(
            l.events().next().unwrap().at,
            SimTime::from_nanos(10),
            "oldest events dropped"
        );
    }

    #[test]
    fn render_tail_limits() {
        let mut l = TraceLog::enabled();
        for i in 0..10 {
            l.record(SimTime::from_nanos(i), 0, TaskId(0), TraceKind::Run);
        }
        let s = l.render_tail(3);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("run"));
    }
}
