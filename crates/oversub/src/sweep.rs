//! Parallel sweep harness: batch experiment arms onto the deterministic
//! worker pool ([`oversub_simcore::pool`]) with a process-wide memoized
//! run cache.
//!
//! # Determinism
//!
//! Every simulation owns its seed substream, so a batch of arms is
//! embarrassingly parallel; [`Sweep::run`] merges results in **submission
//! order**, which makes every rendered table byte-identical regardless of
//! the jobs knob (`--jobs N` / `OVERSUB_JOBS`, default: available
//! parallelism). `jobs = 1` executes inline on the calling thread —
//! exactly the legacy sequential code path.
//!
//! # Run cache
//!
//! Arms repeated across figures (e.g. the shared vanilla baselines of
//! fig09, fig10, and table 1) execute once per process: results are
//! memoized under a content key derived from the canonical `Debug` form
//! of the [`RunConfig`] plus the workload's
//! [`cache_key`](crate::workload::Workload::cache_key). A cached report
//! is returned with the requesting arm's label spliced in — the label is
//! presentation-only and deliberately *not* part of the key. Arms are
//! ineligible when the workload declines a key (stateful server
//! workloads), when the config carries out-of-tree mechanisms (closures
//! have no canonical form), or when tracing is on. `OVERSUB_RUN_CACHE=0`
//! disables the cache entirely.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use oversub_metrics::{Diagnostic, RunReport};
use oversub_simcore::pool::{self, Job, PoolStats};
use oversub_workloads::workload::Workload;

use crate::config::RunConfig;
use crate::engine::run_labelled;

// ---------------------------------------------------------------------
// The jobs knob
// ---------------------------------------------------------------------

/// Explicit override set by `set_jobs`; 0 = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Resolve the worker count: explicit [`set_jobs`] override, then the
/// `OVERSUB_JOBS` environment variable, then available parallelism.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("OVERSUB_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Set (n > 0) or clear (n = 0) the process-wide jobs override. Takes
/// precedence over `OVERSUB_JOBS`.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Global cache + statistics
// ---------------------------------------------------------------------

/// The memoized run cache. Entries are stored as the report's canonical
/// JSON (not the in-memory struct) so every hit can be integrity-checked:
/// the entry must still parse and satisfy the report's internal
/// invariants before it is served. A corrupt entry — however it got that
/// way — is discarded with a warning and the arm re-executes, so cache
/// damage degrades to a cache miss instead of a wrong result.
fn cache() -> &'static Mutex<BTreeMap<String, String>> {
    static CACHE: OnceLock<Mutex<BTreeMap<String, String>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Parse and integrity-check one cached entry.
fn validate_cached(json: &str) -> Result<RunReport, String> {
    let report = RunReport::from_json(json).map_err(|e| format!("parse failed: {e}"))?;
    // Every sink-produced report records exactly one digest sample per
    // completed op (the digest is the source of completed_ops).
    if report.latency_exact.count() != report.completed_ops {
        return Err(format!(
            "latency digest holds {} samples but completed_ops is {}",
            report.latency_exact.count(),
            report.completed_ops
        ));
    }
    if !report.goodput.balanced() {
        return Err("goodput outcome counts do not sum to offered".into());
    }
    Ok(report)
}

/// Shorten a cache key for a stderr warning (keys embed the full config
/// Debug form and run to hundreds of characters).
fn key_brief(key: &str) -> &str {
    &key[..key.len().min(80)]
}

/// Compute the run-cache key for an arm exactly as [`Sweep::add`] does;
/// `None` when the arm is cache-ineligible. Exposed for the cache
/// integrity tests.
#[doc(hidden)]
pub fn cache_key_for(cfg: &RunConfig, wl: &dyn Workload) -> Option<String> {
    if cache_enabled() && cfg.custom_mechanisms.is_empty() && !cfg.trace {
        wl.cache_key().map(|wl_key| format!("{cfg:?}|{wl_key}"))
    } else {
        None
    }
}

/// Overwrite one cache entry's raw JSON in place (corruption injection
/// for the integrity tests).
#[doc(hidden)]
pub fn inject_cache_entry(key: String, json: String) {
    lock(cache()).insert(key, json);
}

/// Whether the run cache currently holds `key`. Exposed for the cache
/// integrity tests.
#[doc(hidden)]
pub fn cache_contains(key: &str) -> bool {
    lock(cache()).contains_key(key)
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static UNCACHED_RUNS: AtomicU64 = AtomicU64::new(0);

fn pool_acc() -> &'static Mutex<PoolStats> {
    static ACC: OnceLock<Mutex<PoolStats>> = OnceLock::new();
    ACC.get_or_init(|| Mutex::new(PoolStats::default()))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Cumulative sweep statistics for this process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Arms served from the memoized cache (including in-batch dedup).
    pub cache_hits: u64,
    /// Cache-eligible arms that had to execute.
    pub cache_misses: u64,
    /// Cache-ineligible arms that executed (no key, custom mechanisms,
    /// tracing, or cache disabled).
    pub uncached_runs: u64,
    /// Pool execution totals across all batches.
    pub pool: PoolStats,
}

/// Snapshot the cumulative sweep statistics.
pub fn stats() -> SweepStats {
    SweepStats {
        cache_hits: CACHE_HITS.load(Ordering::Relaxed),
        cache_misses: CACHE_MISSES.load(Ordering::Relaxed),
        uncached_runs: UNCACHED_RUNS.load(Ordering::Relaxed),
        pool: *lock(pool_acc()),
    }
}

/// Clear the run cache and zero all counters (benchmark harnesses reset
/// between measured passes so each pass pays full cost).
pub fn reset() {
    lock(cache()).clear();
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
    UNCACHED_RUNS.store(0, Ordering::Relaxed);
    *lock(pool_acc()) = PoolStats::default();
}

fn cache_enabled() -> bool {
    std::env::var("OVERSUB_RUN_CACHE")
        .map(|v| v != "0")
        .unwrap_or(true)
}

fn absorb_pool_stats(stats: &PoolStats) {
    lock(pool_acc()).absorb(stats);
}

// ---------------------------------------------------------------------
// Generic job batches (chaos cells, bench reps)
// ---------------------------------------------------------------------

/// Run a batch of self-contained jobs on the pool at the configured jobs
/// count, results in submission order. Uncached — for work that is not a
/// plain (config, workload) simulation arm (chaos cells, bench reps).
pub fn run_batch<T: Send>(batch: Vec<Job<'_, T>>) -> Vec<T> {
    run_batch_with_jobs(batch, jobs())
}

/// [`run_batch`] at an explicit worker count.
pub fn run_batch_with_jobs<T: Send>(batch: Vec<Job<'_, T>>, workers: usize) -> Vec<T> {
    let (results, stats) = pool::run_ordered(batch, workers);
    absorb_pool_stats(&stats);
    results
}

// ---------------------------------------------------------------------
// The sweep: batched simulation arms
// ---------------------------------------------------------------------

/// One submitted arm: everything a worker needs, plus the precomputed
/// cache key.
struct Arm {
    label: String,
    cfg: RunConfig,
    mk: Box<dyn Fn() -> Box<dyn Workload> + Send>,
    key: Option<String>,
}

/// A batch of simulation arms, executed together on the worker pool with
/// results returned in submission order.
///
/// ```
/// use oversub::sweep::Sweep;
/// use oversub::workloads::micro::ComputeYield;
/// use oversub::RunConfig;
///
/// let mut sweep = Sweep::new();
/// let a = sweep.add("fig2/n1", RunConfig::vanilla(1), || {
///     Box::new(ComputeYield::fig2a(1, 8_000_000))
/// });
/// let b = sweep.add("fig2/n4", RunConfig::vanilla(1), || {
///     Box::new(ComputeYield::fig2a(4, 8_000_000))
/// });
/// let reports = sweep.run();
/// assert_eq!(reports[a].label, "fig2/n1");
/// assert_eq!(reports[b].label, "fig2/n4");
/// ```
#[derive(Default)]
pub struct Sweep {
    arms: Vec<Arm>,
}

impl Sweep {
    /// An empty batch.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Submit one arm: the workload factory runs *inside the worker* (so
    /// workloads holding non-`Send` state are fine), and once cheaply at
    /// submission to probe the cache key. Returns the arm's index into
    /// the vector [`run`](Sweep::run) produces.
    pub fn add(
        &mut self,
        label: impl Into<String>,
        cfg: RunConfig,
        mk: impl Fn() -> Box<dyn Workload> + Send + 'static,
    ) -> usize {
        let label = label.into();
        let key = cache_key_for(&cfg, mk().as_ref());
        self.arms.push(Arm {
            label,
            cfg,
            mk: Box::new(mk),
            key,
        });
        self.arms.len() - 1
    }

    /// Number of submitted arms.
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// True when no arms have been submitted.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Execute the batch at the configured jobs count (see [`jobs`]).
    pub fn run(self) -> Vec<RunReport> {
        let workers = jobs();
        self.run_with_jobs(workers)
    }

    /// Execute the batch at an explicit worker count. Results are in
    /// submission order and independent of `workers`.
    pub fn run_with_jobs(self, workers: usize) -> Vec<RunReport> {
        let n = self.arms.len();
        let mut slots: Vec<Option<RunReport>> = Vec::new();
        slots.resize_with(n, || None);

        // Pass 1 (submission order): serve global-cache hits, dedup
        // repeated keys within the batch, collect the arms that must run.
        let mut to_run: Vec<Arm> = Vec::new();
        let mut run_idx: Vec<usize> = Vec::new(); // arm index per to_run entry
        let mut dups: Vec<(usize, usize)> = Vec::new(); // (dup arm, to_run entry)
        let mut first_by_key: BTreeMap<String, usize> = BTreeMap::new(); // key -> to_run entry
        let mut labels: Vec<String> = Vec::with_capacity(n);
        for (i, arm) in self.arms.into_iter().enumerate() {
            labels.push(arm.label.clone());
            match &arm.key {
                Some(key) => {
                    // Clone out of the cache in its own statement: an
                    // `if let` scrutinee would keep the guard alive for
                    // the whole block, deadlocking the corrupt-entry
                    // path below when it re-locks to remove the entry.
                    let cached = lock(cache()).get(key).cloned();
                    if let Some(json) = cached {
                        match validate_cached(&json) {
                            Ok(hit) => {
                                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                                slots[i] = Some(relabel(hit, &arm.label));
                                continue;
                            }
                            Err(why) => {
                                eprintln!(
                                    "[sweep] run-cache entry `{}…` failed its integrity \
                                     check ({why}); discarding and re-running the arm",
                                    key_brief(key)
                                );
                                lock(cache()).remove(key);
                            }
                        }
                    }
                    if let Some(&entry) = first_by_key.get(key) {
                        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                        dups.push((i, entry));
                        continue;
                    }
                    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                    first_by_key.insert(key.clone(), to_run.len());
                }
                None => {
                    UNCACHED_RUNS.fetch_add(1, Ordering::Relaxed);
                }
            }
            run_idx.push(i);
            to_run.push(arm);
        }

        // Pass 2: execute the misses on the pool, submission order kept.
        // Panics are isolated per job: a crashing arm yields a report
        // carrying a `job-panic` diagnostic instead of tearing down the
        // batch (and the other arms' results).
        let keys: Vec<Option<String>> = to_run.iter().map(|a| a.key.clone()).collect();
        let arm_labels: Vec<String> = to_run.iter().map(|a| a.label.clone()).collect();
        let batch: Vec<Job<'_, RunReport>> = to_run
            .into_iter()
            .map(|arm| {
                Box::new(move || {
                    let mut wl = (arm.mk)();
                    run_labelled(&mut *wl, &arm.cfg, &arm.label)
                }) as Job<'_, RunReport>
            })
            .collect();
        let (caught, pool_stats) = pool::run_ordered_caught(batch, workers);
        absorb_pool_stats(&pool_stats);
        let mut panicked = vec![false; caught.len()];
        let fresh: Vec<RunReport> = caught
            .into_iter()
            .enumerate()
            .map(|(entry, r)| match r {
                Ok(report) => report,
                Err(p) => {
                    panicked[entry] = true;
                    eprintln!(
                        "[sweep] arm `{}` panicked: {}",
                        arm_labels[entry], p.message
                    );
                    let mut report = RunReport {
                        label: arm_labels[entry].clone(),
                        ..RunReport::default()
                    };
                    report.diagnostics.push(Diagnostic {
                        kind: "job-panic".to_string(),
                        at_ns: 0,
                        task: None,
                        cpu: None,
                        detail: p.message,
                    });
                    report
                }
            })
            .collect();

        // Pass 3: publish to the global cache (idempotent: first writer
        // wins, concurrent sweeps of the same key agree byte-for-byte),
        // then fill result slots and in-batch duplicates. Panicked arms
        // are never cached — a crash is not a result.
        for (entry, report) in fresh.iter().enumerate() {
            if panicked[entry] {
                continue;
            }
            if let Some(key) = &keys[entry] {
                lock(cache())
                    .entry(key.clone())
                    .or_insert_with(|| report.to_json());
            }
        }
        for (i, report) in run_idx.iter().zip(fresh) {
            slots[*i] = Some(report);
        }
        for (dup, entry) in dups {
            let primary = run_idx[entry];
            let report = slots[primary]
                .clone()
                .unwrap_or_else(|| panic!("sweep: duplicate of unexecuted arm {primary}"));
            slots[dup] = Some(relabel(report, &labels[dup]));
        }

        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("sweep: arm {i} produced no report")))
            .collect()
    }
}

/// Splice a new label into a cached report (labels are presentation-only
/// and never part of the cache key).
fn relabel(mut report: RunReport, label: &str) -> RunReport {
    report.label = label.to_string();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use oversub_workloads::micro::ComputeYield;

    fn tiny_arm() -> (RunConfig, impl Fn() -> Box<dyn Workload> + Send + Clone) {
        (RunConfig::vanilla(1).with_seed(3), || {
            Box::new(ComputeYield::fig2a(2, 4_000_000)) as Box<dyn Workload>
        })
    }

    #[test]
    fn sequential_and_parallel_agree_and_dedup() {
        let (cfg, mk) = tiny_arm();

        let mut seq = Sweep::new();
        seq.add("a", cfg.clone(), mk.clone());
        seq.add("b", cfg.clone(), mk.clone());
        let seq_reports = seq.run_with_jobs(1);

        let mut par = Sweep::new();
        par.add("a", cfg.clone(), mk.clone());
        par.add("b", cfg, mk);
        let par_reports = par.run_with_jobs(4);

        assert_eq!(seq_reports.len(), 2);
        assert_eq!(seq_reports[0].label, "a");
        assert_eq!(seq_reports[1].label, "b");
        // Same sim under different labels: identical modulo the label.
        assert_eq!(relabel(seq_reports[1].clone(), "a"), seq_reports[0]);
        // Parallel run is byte-identical to sequential.
        assert_eq!(seq_reports, par_reports);
    }

    #[test]
    fn custom_mechanism_arms_are_uncached() {
        use crate::mechanism::Mechanism;
        use oversub_metrics::MechCounters;

        struct Nop;
        impl Mechanism for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn counters(&self) -> MechCounters {
                MechCounters::named("nop")
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }

        let cfg = RunConfig::vanilla(1)
            .with_seed(3)
            .with_mechanism(|| Box::new(Nop));
        let mut sweep = Sweep::new();
        sweep.add("x", cfg, || {
            Box::new(ComputeYield::fig2a(2, 4_000_000)) as Box<dyn Workload>
        });
        // Must execute (not cache) and still return a labelled report.
        let reports = sweep.run_with_jobs(2);
        assert_eq!(reports[0].label, "x");
    }

    #[test]
    fn batch_results_keep_submission_order() {
        let batch: Vec<Job<'_, usize>> = (0..10usize)
            .map(|i| Box::new(move || i * 3) as Job<'_, usize>)
            .collect();
        assert_eq!(
            run_batch_with_jobs(batch, 4),
            (0..10).map(|i| i * 3).collect::<Vec<_>>()
        );
    }
}
