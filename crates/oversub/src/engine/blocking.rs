//! Kernel blocking wrappers (futex wait/wake with mechanism hooks) and
//! the cross-CPU lock grant / flag release paths.

use super::{Cont, Engine, Event, Resume, SegEventKind};
use crate::trace::TraceKind;
use oversub_hw::CpuId;
use oversub_ksync::{WaitMode, Woken};
use oversub_locks::LockKey;
use oversub_simcore::SimTime;
use oversub_task::{FutexKey, LockId, TaskId, TaskState};

impl Engine {
    pub(crate) fn do_futex_wait(
        &mut self,
        cpu: usize,
        tid: TaskId,
        key: FutexKey,
        resume: Resume,
        t: SimTime,
    ) {
        self.rc_futex_wait(tid, key);
        let out = self
            .futex
            .futex_wait(&mut self.sched, &mut self.tasks, tid, key, CpuId(cpu), t);
        if !self.mechs.is_empty() {
            self.mechs.on_block(cpu, tid, out.mode);
        }
        self.trace.record(
            t,
            cpu,
            tid,
            match out.mode {
                WaitMode::Sleep => TraceKind::Sleep,
                WaitMode::Virtual => TraceKind::VbPark,
            },
        );
        self.charge_kernel(cpu, out.cost_ns);
        self.conts[tid.0] = Cont::Blocked(resume);
        if out.mode == WaitMode::Virtual {
            if let Some(s) = self.vb_park_since.get_mut(tid.0) {
                *s = Some(t);
            }
        }
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.spin_exit_at[cpu] = None;
        self.sched_resched(t + out.cost_ns, cpu);
    }

    pub(crate) fn do_futex_wake(&mut self, cpu: usize, key: FutexKey, n: usize, t: SimTime) -> u64 {
        let report = self
            .futex
            .futex_wake(&mut self.sched, &mut self.tasks, key, n, CpuId(cpu), t);
        self.rc_futex_wake(cpu, key, &report.woken);
        for w in &report.woken {
            self.note_cross_shard(cpu, w.cpu.0, super::shard::Mail::Wake);
        }
        self.charge_kernel(cpu, report.waker_cost_ns);
        let done = t + report.waker_cost_ns;
        self.post_wake_events(&report.woken, done);
        report.waker_cost_ns
    }

    /// Schedule follow-up events for a batch of woken tasks.
    pub(crate) fn post_wake_events(&mut self, woken: &[Woken], done: SimTime) {
        for &w in woken {
            if w.mode == WaitMode::Virtual {
                if self.faults.as_mut().is_some_and(|f| f.lose_wakeup()) {
                    // Injected lost wakeup: the futex layer already
                    // dequeued the waiter, but the unpark never lands —
                    // re-park the task in place with no registered waker
                    // (the classic lost-wakeup bug the watchdog hunts).
                    let old_vr = self.tasks.vruntime[w.task.0];
                    let tail = self.sched.cpus[w.cpu.0].rq.next_vb_tail_vruntime();
                    self.tasks.vb_park(w.task, tail);
                    self.sched.cpus[w.cpu.0]
                        .rq
                        .requeue(old_vr, false, &self.tasks, w.task);
                    if let Some(s) = self.vb_park_since.get_mut(w.task.0) {
                        *s = Some(done);
                    }
                    self.trace.record(done, w.cpu.0, w.task, TraceKind::VbPark);
                    continue;
                }
                if let Some(s) = self.vb_park_since.get_mut(w.task.0) {
                    *s = None;
                }
            }
            if !self.mechs.is_empty() {
                self.mechs.on_wake(w.task, w.mode);
            }
            self.trace.record(done, w.cpu.0, w.task, TraceKind::Wake);
            let delay = self.wake_resched_delay(w.cpu.0);
            self.sched_resched(done + delay, w.cpu.0);
            if w.preempt && self.sched.cpus[w.cpu.0].current.is_some() {
                self.queue
                    .schedule_nocancel(done + delay, Event::PreemptCheck(w.cpu.0));
            }
            // nohz idle kick: if the woken task landed on a busy queue
            // while another CPU sits idle, poke one idle CPU so its idle
            // balance can pull the waiter over (as CFS does at wakeup).
            if self.sched.cpus[w.cpu.0].current.is_some() {
                let idle = self
                    .sched
                    .topo
                    .cpu_ids()
                    .find(|c| self.sched.online[c.0] && self.sched.cpus[c.0].is_idle());
                if let Some(c) = idle {
                    self.sched_resched(done, c.0);
                }
            }
        }
    }

    /// Extra delay before a VB-woken task starts on a semi-idle core whose
    /// queue holds only parked tasks: the flag-poll rotation latency.
    pub(crate) fn wake_resched_delay(&mut self, cpu: usize) -> u64 {
        let c = &self.sched.cpus[cpu];
        if c.current.is_none() && c.rq.nr_schedulable() == 0 && c.rq.nr_vb_parked() > 0 {
            // The delay itself is attributed by account_progress (the CPU
            // sits in its poll rotation, which we book as idle time), so
            // only the latency is returned here — adding it to kernel_ns
            // as well would double-count the interval.
            let parked = c.rq.nr_vb_parked().min(8) as u64;
            self.cfg.sched.vb_poll_ns * parked
        } else {
            0
        }
    }

    /// A spin-then-park waiter's budget expired: convert to a futex park.
    pub(crate) fn park_spinner(&mut self, cpu: usize, tid: TaskId, t: SimTime) {
        let Cont::SpinLock { lock, is_mutex, .. } = self.conts[tid.0] else {
            return;
        };
        debug_assert!(is_mutex, "only mutex kinds have park deadlines");
        self.sync.mutexes[lock.0].note_parked(tid);
        let futex = self.sync.mutexes[lock.0].futex_key_for(tid);
        self.do_futex_wait(cpu, tid, futex, Resume::MutexRetry(lock), t);
    }

    // -----------------------------------------------------------------
    // Lock grants and flag releases across CPUs
    // -----------------------------------------------------------------

    /// A release designated `w` as the next holder. If `w` is running
    /// (spinning) somewhere, interrupt it so it claims now; otherwise it
    /// claims when next scheduled (the lock-holder-preemption case: the
    /// hand-off latency is the victim's scheduling delay).
    pub(crate) fn deliver_grant(&mut self, w: TaskId, is_mutex: bool, lock: LockId, t: SimTime) {
        if self.tasks.state[w.0] != TaskState::Running {
            return;
        }
        let wcpu = self.tasks.last_cpu[w.0].0;
        debug_assert_eq!(self.sched.cpus[wcpu].current, Some(w));
        let t2 = t.max_of(self.sched.cpus[wcpu].accounted_until);
        self.account_progress(wcpu, t2);
        self.seg_epoch[wcpu] += 1;
        self.spin_exit_at[wcpu] = None;
        self.seg_event[wcpu] = SegEventKind::None;
        let claimed = if is_mutex {
            self.sync.mutexes[lock.0].try_claim(w)
        } else {
            self.sync.spinlocks[lock.0].try_claim(w)
        };
        // A designated heir is always claimable; if the lock state machine
        // ever disagrees, record the inconsistency and leave the waiter
        // spinning (it will retry on its next schedule) instead of
        // panicking mid-run.
        let Some(cost) = claimed else {
            self.push_diagnostic(
                "lock-grant-mismatch",
                Some(w.0),
                Some(wcpu),
                format!("designated heir of lock {} could not claim it", lock.0),
            );
            return;
        };
        let key = if is_mutex {
            LockKey::mutex(lock.0)
        } else {
            LockKey::spin(lock.0)
        };
        self.ld_acquired(w, key, t2);
        self.charge_useful(wcpu, cost);
        self.conts[w.0] = Cont::Ready;
        self.advance_task(wcpu, t2 + cost);
    }

    /// Barging release: the lock is free; the first *running* spinner (by
    /// CPU index) claims it immediately.
    pub(crate) fn barge_check(&mut self, l: LockId, t: SimTime) {
        // Find a running waiter of this spinlock.
        let waiter = self
            .sched
            .cpus
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.current.map(|tid| (i, tid)))
            .find(|&(_, tid)| {
                matches!(
                    self.conts[tid.0],
                    Cont::SpinLock { lock, is_mutex: false, .. } if lock == l
                )
            });
        if let Some((wcpu, w)) = waiter {
            let t2 = t.max_of(self.sched.cpus[wcpu].accounted_until);
            self.account_progress(wcpu, t2);
            self.seg_epoch[wcpu] += 1;
            self.spin_exit_at[wcpu] = None;
            self.seg_event[wcpu] = SegEventKind::None;
            // The lock was just released with no designated heir, so a
            // running spinner must win the barge; on a state-machine
            // disagreement, record it and let the spinner keep spinning.
            let Some(cost) = self.sync.spinlocks[l.0].try_claim(w) else {
                self.push_diagnostic(
                    "lock-grant-mismatch",
                    Some(w.0),
                    Some(wcpu),
                    format!("barging spinner could not claim free spinlock {}", l.0),
                );
                return;
            };
            self.ld_acquired(w, LockKey::spin(l.0), t2);
            self.charge_useful(wcpu, cost);
            self.conts[w.0] = Cont::Ready;
            self.advance_task(wcpu, t2 + cost);
        }
    }

    /// A flag changed and `w`'s spin condition is satisfied.
    pub(crate) fn release_flag_spinner(&mut self, w: TaskId, t: SimTime) {
        match self.tasks.state[w.0] {
            TaskState::Running => {
                let wcpu = self.tasks.last_cpu[w.0].0;
                let t2 = t.max_of(self.sched.cpus[wcpu].accounted_until);
                self.account_progress(wcpu, t2);
                self.conts[w.0] = Cont::Ready;
                self.seg_epoch[wcpu] += 1;
                self.spin_exit_at[wcpu] = None;
                self.seg_event[wcpu] = SegEventKind::None;
                self.advance_task(wcpu, t2);
            }
            _ => {
                // Descheduled mid-spin: its accumulated spin time is
                // already accounted; it proceeds when next scheduled.
                self.conts[w.0] = Cont::Ready;
            }
        }
    }
}
