//! Time accounting and the engine's per-event handlers: rescheduling,
//! segment completion, slice expiry, wakeup preemption, load balancing,
//! I/O completion, and CPU elasticity.

use super::{Cont, Engine, Event, RunKind, SegEventKind};
use crate::trace::TraceKind;
use oversub_hw::CpuId;
use oversub_simcore::SimTime;
use oversub_task::{TaskId, TaskState};

impl Engine {
    // ---------------------------------------------------------------
    // Accounting
    // ---------------------------------------------------------------

    /// Attribute the span since the CPU's cursor up to `to`, according to
    /// what is running there. Feeds the LBR/PMC window.
    pub(crate) fn account_progress(&mut self, cpu: usize, to: SimTime) {
        let cur = self.sched.cpus[cpu].accounted_until;
        if to <= cur {
            return;
        }
        let span = to - cur;
        match self.sched.cpus[cpu].current {
            None => {
                self.sched.cpus[cpu].time.idle_ns += span;
            }
            Some(tid) => match self.run_kind[cpu] {
                RunKind::Useful => {
                    self.sched.cpus[cpu].time.useful_ns += span;
                    self.tasks.stats[tid.0].exec_ns += span;
                    let salt = self.tasks.addr_salt[tid.0];
                    let rates = self.rates;
                    self.sched.cpus[cpu]
                        .hw
                        .note_normal_execution(span, &rates, salt);
                }
                RunKind::Spin(sig) => {
                    self.sched.cpus[cpu].time.spin_ns += span;
                    self.tasks.stats[tid.0].spin_ns += span;
                    let iters = span / sig.iter_ns.max(1);
                    self.sched.cpus[cpu].hw.note_spin(
                        sig.branch_from,
                        sig.branch_to,
                        iters.max(1),
                        sig.instr_per_iter,
                    );
                }
                RunKind::TightLoop(sig) => {
                    // Program work, but with a spin-shaped LBR footprint.
                    self.sched.cpus[cpu].time.useful_ns += span;
                    self.tasks.stats[tid.0].exec_ns += span;
                    let iters = span / sig.iter_ns.max(1);
                    self.sched.cpus[cpu].hw.note_spin(
                        sig.branch_from,
                        sig.branch_to,
                        iters.max(1),
                        sig.instr_per_iter,
                    );
                }
            },
        }
        self.sched.cpus[cpu].accounted_until = to;
    }

    /// Fused accounting for an idle-quiet timer tick:
    /// `account_progress(cpu, now)` on a CPU with no current task (the
    /// elapsed span is pure idle time) followed by
    /// `charge_kernel(cpu, charge)`, with a single cursor read-modify-
    /// write. Callers must hold `!sched.is_active(cpu)`, which is
    /// `current.is_none()` by construction — the idle branch of
    /// `account_progress` is then the only reachable one, so this is
    /// bit-identical to the two calls it replaces.
    pub(crate) fn account_idle_tick(&mut self, cpu: usize, now: SimTime, charge: u64) {
        let c = &mut self.sched.cpus[cpu];
        let mut cur = c.accounted_until;
        if now > cur {
            c.time.idle_ns += now - cur;
            cur = now;
        }
        c.time.kernel_ns += charge;
        c.accounted_until = cur + charge;
    }

    /// Charge kernel time starting at the cursor.
    pub(crate) fn charge_kernel(&mut self, cpu: usize, span: u64) {
        self.sched.cpus[cpu].time.kernel_ns += span;
        let cur = self.sched.cpus[cpu].accounted_until;
        self.sched.cpus[cpu].accounted_until = cur + span;
    }

    /// Charge useful (user-space) time starting at the cursor.
    pub(crate) fn charge_useful(&mut self, cpu: usize, span: u64) {
        if span == 0 {
            return;
        }
        self.sched.cpus[cpu].time.useful_ns += span;
        if let Some(tid) = self.sched.cpus[cpu].current {
            self.tasks.stats[tid.0].exec_ns += span;
        }
        let cur = self.sched.cpus[cpu].accounted_until;
        self.sched.cpus[cpu].accounted_until = cur + span;
    }

    // ---------------------------------------------------------------
    // CPU scheduling events
    // ---------------------------------------------------------------

    pub(crate) fn on_resched(&mut self, cpu: usize) {
        if self.sched.cpus[cpu].current.is_some() {
            return; // already busy; preemption is a separate path
        }
        self.account_progress(cpu, self.now);
        if !self.sched.online[cpu] {
            return;
        }
        let mut t = self.now;
        let mut tried_steal_for_skip = false;
        loop {
            let pick = self.sched.pick_next(&mut self.tasks, CpuId(cpu));
            if !self.mechs.is_empty() {
                let released = self.sched.take_skips_released();
                if released > 0 {
                    self.mechs.on_pick(cpu, released);
                }
            }
            match pick {
                oversub_sched::Pick::Run(tid, forced) => {
                    self.trace.record(t, cpu, tid, TraceKind::Run);
                    if forced && !tried_steal_for_skip {
                        // Every schedulable task here is a skip-flagged
                        // spinner. Before burning another detection window
                        // on one of them, try to pull real work from a
                        // busier core (normal idle balancing composed with
                        // BWD's skip flags).
                        tried_steal_for_skip = true;
                        let (mig, cost) = self.sched.idle_pull(&mut self.tasks, CpuId(cpu), t);
                        if let Some(m) = mig {
                            self.note_cross_shard(m.from.0, m.to.0, super::shard::Mail::Migrate);
                            self.trace.record(t, m.to.0, m.task, TraceKind::Migrate);
                            self.charge_kernel(cpu, cost);
                            t += cost;
                            continue;
                        }
                    }
                    let switched = self.sched.cpus[cpu].last_ran != Some(tid);
                    let cost = self.sched.start(&mut self.tasks, CpuId(cpu), tid, t);
                    self.stint_epoch[cpu] += 1;
                    self.charge_kernel(cpu, cost);
                    if switched {
                        // LBR state is saved/restored per task (as Linux
                        // does for perf LBR), so the monitoring window
                        // starts clean for the incoming task.
                        self.sched.cpus[cpu].hw.new_window();
                    }
                    let start_t = t + cost;
                    // Arm the stint's slice timer (chaos runs may add an
                    // injected expiry delay).
                    let slice = self.sched.slice_for(CpuId(cpu)) + self.slice_fault_delay();
                    self.queue.schedule_nocancel(
                        start_t + slice,
                        Event::Slice(cpu, self.stint_epoch[cpu]),
                    );
                    self.sched.cpus[cpu].time.context_switches += 1;
                    self.advance_task(cpu, start_t);
                    return;
                }
                oversub_sched::Pick::VbPoll(_) => {
                    // Semi-idle: parked tasks rotate through flag checks.
                    // The rotation cost is charged lazily when a wake
                    // arrives (see `wake_resched_delay`); the CPU idles.
                    return;
                }
                oversub_sched::Pick::Idle => {
                    // Idle balance: try to steal, and if it succeeds, run
                    // the stolen task *within this event* — deferring to a
                    // later event would let other idle CPUs steal it back
                    // and ping-pong forever.
                    let (mig, cost) = self.sched.idle_pull(&mut self.tasks, CpuId(cpu), t);
                    let Some(m) = mig else {
                        return;
                    };
                    self.note_cross_shard(m.from.0, m.to.0, super::shard::Mail::Migrate);
                    self.trace.record(t, m.to.0, m.task, TraceKind::Migrate);
                    self.charge_kernel(cpu, cost);
                    t += cost;
                }
            }
        }
    }

    pub(crate) fn on_seg_end(&mut self, cpu: usize, epoch: u64) {
        if epoch != self.seg_epoch[cpu] {
            return;
        }
        let Some(tid) = self.sched.cpus[cpu].current else {
            return;
        };
        self.account_progress(cpu, self.now);
        match self.seg_event[cpu] {
            SegEventKind::WorkEnd => {
                // The action completed in full.
                self.conts[tid.0] = Cont::Ready;
                self.spin_exit_at[cpu] = None;
                self.advance_task(cpu, self.now);
            }
            SegEventKind::ParkDeadline => {
                // Spin budget exhausted: park on the mutex futex.
                self.park_spinner(cpu, tid, self.now);
            }
            SegEventKind::None => {}
        }
    }

    pub(crate) fn on_slice(&mut self, cpu: usize, epoch: u64) {
        if epoch != self.stint_epoch[cpu] {
            return;
        }
        let Some(tid) = self.sched.cpus[cpu].current else {
            return;
        };
        self.account_progress(cpu, self.now);
        if self.sched.cpus[cpu].rq.nr_schedulable() == 0 {
            // Nobody else: extend the stint.
            let slice = self.sched.slice_for(CpuId(cpu)) + self.slice_fault_delay();
            self.queue
                .schedule_nocancel(self.now + slice, Event::Slice(cpu, epoch));
            return;
        }
        // Preempt: save remaining work, requeue, pick next.
        if !self.mechs.is_empty() {
            self.mechs.on_slice_expiry(cpu, tid);
        }
        self.trace.record(self.now, cpu, tid, TraceKind::Preempt);
        self.save_partial_progress(cpu, tid);
        self.sched.stop_current(
            &mut self.tasks,
            CpuId(cpu),
            self.now,
            oversub_sched::StopReason::Preempted,
        );
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.spin_exit_at[cpu] = None;
        self.sched_resched(self.now, cpu);
    }

    pub(crate) fn on_preempt_check(&mut self, cpu: usize) {
        let Some(curr) = self.sched.cpus[cpu].current else {
            self.sched_resched(self.now, cpu);
            return;
        };
        // Only preempt if a schedulable task has materially lower
        // vruntime — CFS's check_preempt_wakeup test against the current
        // task's effective (stint-adjusted) vruntime. Wakeup preemption is
        // immediate (the minimum granularity only guards tick preemption).
        let best = self.sched.cpus[cpu].rq.pick_next(&self.tasks);
        let Some((cand, _)) = best else { return };
        let gran = self.sched.params.wakeup_granularity_ns;
        let cv = self
            .sched
            .curr_effective_vruntime(&self.tasks, CpuId(cpu), self.now)
            .unwrap_or(u64::MAX);
        let _ = curr;
        // A candidate that was just woken and has not run since its wake
        // is always preempt-worthy — the paper's VB explicitly schedules
        // waking threads immediately, mirroring how wakeup preemption
        // favours real sleepers.
        let fresh_wake = self.tasks.wake_requested_at[cand.0].is_some();
        if !fresh_wake && self.tasks.vruntime[cand.0] + gran >= cv {
            return;
        }
        let Some(curr) = self.sched.cpus[cpu].current else {
            return;
        };
        self.account_progress(cpu, self.now);
        self.trace.record(self.now, cpu, curr, TraceKind::Preempt);
        self.save_partial_progress(cpu, curr);
        self.sched.stop_current(
            &mut self.tasks,
            CpuId(cpu),
            self.now,
            oversub_sched::StopReason::Preempted,
        );
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.spin_exit_at[cpu] = None;
        self.sched_resched(self.now, cpu);
    }

    pub(crate) fn on_balance(&mut self, cpu: usize) {
        // Skipped when the queue's auto-cadence rotation already re-armed
        // this timer during the pop (identical `(time, seq)` key).
        if !self.last_pop_rotated() {
            self.queue.schedule_cadenced(
                self.now + self.cfg.sched.balance_interval_ns,
                self.cfg.sched.balance_interval_ns,
                Event::Balance(cpu),
            );
        }
        if !self.sched.online[cpu] {
            return;
        }
        let (migs, cost) = self
            .sched
            .periodic_balance(&mut self.tasks, CpuId(cpu), self.now);
        for m in &migs {
            self.note_cross_shard(m.from.0, m.to.0, super::shard::Mail::Migrate);
        }
        // Balance runs in softirq context; only charge when idle to keep
        // the running task's segment timing intact (cost is small).
        if self.sched.cpus[cpu].current.is_none() {
            self.account_progress(cpu, self.now);
            self.charge_kernel(cpu, cost);
        } else {
            self.sched.cpus[cpu].time.kernel_ns += cost;
        }
        if !migs.is_empty() && self.sched.cpus[cpu].current.is_none() {
            self.sched_resched(self.now + cost, cpu);
        }
    }

    pub(crate) fn on_io_done(&mut self, task: usize) {
        let tid = TaskId(task);
        if self.tasks.state[task] != TaskState::Sleeping {
            return;
        }
        // Interrupt-context wake: placement logic runs, but the cost is
        // not charged to any task's segment.
        let waker_cpu = self.tasks.last_cpu[task];
        let out = self
            .sched
            .vanilla_wake(&mut self.tasks, tid, waker_cpu, self.now);
        self.sched.cpus[out.cpu.0].time.kernel_ns += out.cost_ns;
        self.note_cross_shard(waker_cpu.0, out.cpu.0, super::shard::Mail::Wake);
        self.trace.record(self.now, out.cpu.0, tid, TraceKind::Wake);
        let t = self.now + out.cost_ns;
        self.sched_resched(t, out.cpu.0);
        if out.preempt && self.sched.cpus[out.cpu.0].current.is_some() {
            self.queue
                .schedule_nocancel(t, Event::PreemptCheck(out.cpu.0));
        }
    }

    pub(crate) fn on_elastic(&mut self, cores: usize) {
        if self.sharded {
            // An elasticity change touches every shard by definition.
            self.shard_mail.note(self.now, super::shard::Mail::Elastic);
        }
        let ncpu = self.sched.topo.num_cpus();
        let cores = cores.min(ncpu).max(1);
        self.sched.set_online_count(cores);
        if !self.mechs.is_empty() {
            self.mechs.on_elastic_change(cores);
        }
        // Drain newly-offline CPUs.
        for c in cores..ncpu {
            self.account_progress(c, self.now);
            if let Some(tid) = self.sched.cpus[c].current {
                self.save_partial_progress(c, tid);
                self.sched.stop_current(
                    &mut self.tasks,
                    CpuId(c),
                    self.now,
                    oversub_sched::StopReason::Preempted,
                );
                self.stint_epoch[c] += 1;
                self.seg_epoch[c] += 1;
                self.spin_exit_at[c] = None;
            }
            // Move every queued, unpinned task to an online CPU.
            let queued: Vec<TaskId> = self.sched.cpus[c]
                .rq
                .schedulable_tasks(&self.tasks)
                .collect();
            let parked: Vec<TaskId> = {
                // Collect movable parked tasks by repeatedly dequeuing;
                // tasks pinned to the offline CPU stay stuck, exactly
                // like their runnable siblings (the paper's "pinning
                // cannot adapt" behaviour must not depend on whether a
                // task happened to be parked at shrink time).
                let mut v = Vec::new();
                loop {
                    let movable = {
                        let rq = &self.sched.cpus[c].rq;
                        rq.entries().into_iter().map(|(_, tid)| tid).find(|&tid| {
                            self.tasks.vb_blocked[tid.0]
                                && self.tasks.pinned[tid.0] != Some(CpuId(c))
                        })
                    };
                    match movable {
                        Some(p) => {
                            self.sched.cpus[c].rq.dequeue(&self.tasks, p);
                            v.push(p);
                        }
                        None => break,
                    }
                }
                v
            };
            let mut target = 0usize;
            for tid in queued {
                if self.tasks.pinned[tid.0] == Some(CpuId(c)) {
                    continue; // stuck — the paper's "pinning crashes" case
                }
                self.sched.cpus[c].rq.dequeue(&self.tasks, tid);
                let dest = target % cores;
                target += 1;
                self.tasks.last_cpu[tid.0] = CpuId(dest);
                self.sched.cpus[dest].rq.enqueue(&self.tasks, tid);
            }
            for tid in parked {
                let dest = target % cores;
                target += 1;
                self.tasks.last_cpu[tid.0] = CpuId(dest);
                self.sched.cpus[dest].rq.enqueue(&self.tasks, tid);
            }
        }
        for c in 0..cores {
            self.sched_resched(self.now, c);
        }
    }
}
