//! The simulation engine: composes the scheduler, futex/epoll substrate,
//! user-level locks, hardware monitoring, and the mechanism pipeline into
//! a runnable machine, and drives task programs through their actions in
//! virtual time.
//!
//! The engine is a discrete-event loop. Each CPU is either idle, in VB
//! poll mode (only parked tasks queued), or running a task *segment*:
//! a span of compute / memory traversal / tight loop / busy-wait. Segments
//! end at action completion, slice expiry, mechanism deschedules (BWD
//! timer detections, PLE spin exits), spin-budget expiry, or when another
//! CPU's release grants a spun-on lock.
//!
//! The event loop itself is mechanism-agnostic: everything VB, BWD, and
//! PLE do flows through the [`crate::mechanism::Mechanism`] hook points —
//! the loop consults the pipeline at each hook and applies the returned
//! verdicts. Module layout:
//!
//! - [`mod@self`]: the [`Engine`] struct, construction, the event loop,
//!   and resched coalescing.
//! - `events`: time accounting and the per-event handlers (resched,
//!   segment end, slice, preemption, balancing, I/O, elasticity).
//! - `spin`: segment bookkeeping plus the mechanism timer / spin-exit
//!   handlers.
//! - `blocking`: futex/epoll wrappers and cross-CPU lock grants.
//! - `report`: metric aggregation into a [`RunReport`].
//! - `diag`: opt-in runqueue audits and stall dumps.
//!
//! Time accounting invariant: each CPU has a cursor
//! ([`oversub_sched::CpuState::accounted_until`]) that only moves forward;
//! every nanosecond between events is attributed to exactly one bucket
//! (useful / spin / kernel / idle) and, for monitored kinds, fed into the
//! core's LBR/PMC window so BWD sees exactly what ran.

mod blocking;
mod diag;
mod events;
mod lockdep;
mod race_hooks;
mod report;
mod shard;
mod spin;
mod watchdog;

use crate::config::RunConfig;
use crate::faults::{EngineError, FaultInjector, WatchdogParams};
use crate::mechanism::MechanismSet;
use crate::race::RaceTracker;
use crate::trace::TraceLog;
use oversub_hw::{CpuId, MemModel, NormalCodeRates};
use oversub_ksync::{EpollTable, FutexTable};
use oversub_locks::{LockDep, SyncRegistry};
use oversub_metrics::{Diagnostic, RunReport};
use oversub_simcore::{EventQueue, SimRng, SimTime, VClock};
use oversub_task::{Action, EpollFd, FlagId, LockId, SemId, SpinSig, Task, TaskId, TaskTable};
use oversub_workloads::workload::{Workload, WorldBuilder};

/// What kind of time the current segment on a CPU is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum RunKind {
    /// Program work (compute or memory traversal).
    Useful,
    /// Busy-waiting on a lock or flag.
    Spin(SpinSig),
    /// A bounded non-synchronization tight loop (BWD false-positive bait).
    TightLoop(SpinSig),
}

/// Why the pending per-segment event fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum SegEventKind {
    /// The work action completes.
    WorkEnd,
    /// A spin-then-park budget expires: convert to futex park.
    ParkDeadline,
    /// Indefinite spin: no scheduled end.
    None,
}

/// How a blocked task resumes when it next runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Resume {
    /// Retry a mutex acquisition (futex-mutex wake path).
    MutexRetry(LockId),
    /// Re-acquire the mutex after a condvar wait.
    CondReacquire(LockId),
    /// A parked semaphore waiter received its token with the wake.
    SemAcquired(SemId),
    /// Nothing more to do: the blocking action is complete.
    Simple,
    /// Consume pending epoll events, then proceed.
    EpollReady(EpollFd),
    /// I/O completed.
    Io,
}

/// Per-task continuation: what the task is in the middle of.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Cont {
    /// Ask the program for its next action.
    Ready,
    /// A partially-executed work action (remaining unscaled nanoseconds).
    Work {
        /// The action being executed.
        action: Action,
        /// Remaining work at full speed.
        left_ns: u64,
    },
    /// Busy-waiting on a registered lock.
    SpinLock {
        /// The lock id (mutex or spinlock table, per `is_mutex`).
        lock: LockId,
        /// True: blocking-mutex table (spin-then-park kinds); false:
        /// spinlock table.
        is_mutex: bool,
        /// Loop shape.
        sig: SpinSig,
        /// Remaining spin budget before parking (None = spin forever).
        budget_left: Option<u64>,
    },
    /// Busy-waiting on a flag word.
    SpinFlag {
        /// The flag.
        flag: FlagId,
        /// Spin while the flag equals this.
        while_eq: u64,
        /// Loop shape.
        sig: SpinSig,
    },
    /// Blocked in the kernel (futex/epoll/io); `resume` runs on wake.
    Blocked(Resume),
    /// Exited.
    Done,
}

/// Discrete events.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Event {
    /// Try to schedule work on an idle CPU.
    Resched(usize),
    /// The current segment's scheduled end (work done or park deadline).
    SegEnd(usize, u64),
    /// Slice expiry for the current stint.
    Slice(usize, u64),
    /// A mechanism-armed spin exit for the current spin segment (PLE's
    /// pause-loop exit; any mechanism may arm one).
    SpinExit(usize, u64),
    /// Re-evaluate wakeup preemption on this CPU.
    PreemptCheck(usize),
    /// A mechanism's periodic monitoring timer: `(mechanism index, cpu)`.
    MechTimer(usize, usize),
    /// Periodic load balancing.
    Balance(usize),
    /// An I/O wait finished.
    IoDone(usize),
    /// CPU elasticity: change the online core count.
    Elastic(usize),
    /// Periodic fault-injection tick (spurious wakeups, revocation
    /// storms). Only scheduled when the fault plan needs it.
    FaultTick,
    /// Periodic liveness-watchdog sweep. Only scheduled when armed.
    Watchdog,
    /// Hard stop (max_time).
    Stop,
}

/// Host-side time attribution of one run, split by simulation phase.
/// Filled only when profiling is requested ([`run_phase_profiled`]); the
/// normal run loop pays one branch per event for the possibility.
///
/// Handler buckets include the event-queue *inserts* those handlers make
/// (a resched handler's slice arming, a timer handler's re-arm): the
/// `queue_pop_ns` bucket isolates the pop/peek side, which is where the
/// fast queue's wheel and slab live.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseProfile {
    /// Popping the event queue (drain-cancelled + peek + pop).
    pub queue_pop_ns: u64,
    /// Resched and wakeup-preemption handlers — the runqueue pick paths.
    pub pick_ns: u64,
    /// Periodic mechanism-timer handlers — the mechanism hook dispatch.
    pub mech_timer_ns: u64,
    /// Periodic load-balance handlers.
    pub balance_ns: u64,
    /// Everything else (segment ends, slice expiry, I/O, elasticity...).
    pub other_ns: u64,
    /// Sharded runs only: coordinator time blocked at the end-of-phase
    /// barrier after finishing its own shard — the visible cost of
    /// lookahead imbalance between shards. Zero at shards=1.
    pub barrier_wait_ns: u64,
    /// Sharded runs only: coordinator time spent at window boundaries
    /// merging shard outputs back into the global order and draining the
    /// cross-shard mailbox (re-arm routing, account write-back). Zero at
    /// shards=1.
    pub mailbox_ns: u64,
    /// Sharded runs only: events executed inside lookahead windows (the
    /// portion of the run that actually parallelized). A count, not
    /// nanoseconds; excluded from [`total_ns`](Self::total_ns).
    pub window_events: u64,
}

impl PhaseProfile {
    /// Total attributed host nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.queue_pop_ns
            + self.pick_ns
            + self.mech_timer_ns
            + self.balance_ns
            + self.other_ns
            + self.barrier_wait_ns
            + self.mailbox_ns
    }

    fn slot_for(&mut self, ev: &Event) -> &mut u64 {
        match ev {
            Event::Resched(_) | Event::PreemptCheck(_) => &mut self.pick_ns,
            Event::MechTimer(_, _) => &mut self.mech_timer_ns,
            Event::Balance(_) => &mut self.balance_ns,
            _ => &mut self.other_ns,
        }
    }
}

/// Safety valve against runaway simulations.
const MAX_EVENTS: u64 = 400_000_000;

/// Default cap when a workload neither exits nor sets `max_time`.
const DEFAULT_CAP: SimTime = SimTime(600 * oversub_simcore::SECS);

pub(crate) struct Engine {
    pub cfg: RunConfig,
    pub sched: oversub_sched::Scheduler,
    pub futex: FutexTable,
    pub epoll: EpollTable,
    pub sync: SyncRegistry,
    /// The mechanism pipeline (VB / BWD / PLE / custom).
    pub mechs: MechanismSet,
    pub mem: MemModel,
    pub tasks: TaskTable,
    pub conts: Vec<Cont>,
    pub rngs: Vec<SimRng>,
    pub queue: EventQueue<Event>,
    /// Per-CPU epoch for stint-level events (Slice).
    pub stint_epoch: Vec<u64>,
    /// Per-CPU epoch for segment-level events (SegEnd/SpinExit).
    pub seg_epoch: Vec<u64>,
    /// Per-CPU current segment kind (valid while running).
    pub run_kind: Vec<RunKind>,
    /// Per-CPU SMT speed factor captured at segment start.
    pub seg_rate: Vec<f64>,
    /// Per-CPU scheduled end of the current segment.
    pub seg_done_at: Vec<SimTime>,
    /// Per-CPU pending segment event kind.
    pub seg_event: Vec<SegEventKind>,
    /// Per-CPU pending spin exit, if a mechanism armed one:
    /// `(exit time, index of the owning mechanism)`.
    pub spin_exit_at: Vec<Option<(SimTime, usize)>>,
    /// `(timestamp, queue seq mark)` of the most recently scheduled
    /// `Event::Resched(cpu)` per CPU. A duplicate request is coalesced
    /// into it only when both match — the mark proves no other event was
    /// scheduled in between, so the duplicate would pop immediately after
    /// its twin with identical state (see `sched_resched`).
    pub resched_pending: Vec<Option<(SimTime, u64)>>,
    /// Reference mode: classic queue, uncached picks, no coalescing.
    pub reference: bool,
    /// Per-mechanism timer interval, cached at construction so the
    /// periodic-tick hot path re-arms without a dyn dispatch (intervals
    /// are fixed for the life of a run).
    pub timer_intervals: Vec<Option<u64>>,
    /// Per-mechanism constant idle-quiet charge
    /// ([`Mechanism::idle_quiet_constant`](crate::mechanism::Mechanism::idle_quiet_constant)),
    /// cached at construction: `Some(charge)` means an idle-quiet tick of
    /// that mechanism needs no mechanism call at all.
    idle_quiet_charge: Vec<Option<u64>>,
    /// Idle-quiet ticks taken through the constant path, deferred per
    /// mechanism and flushed into the mechanism's check counter before
    /// counters are read (the increments commute, so deferral is exact).
    pending_idle_checks: Vec<u64>,
    /// `OVERSUB_TRACE` progress logging (read once at construction; env
    /// lookups are too slow for the per-event hot loop).
    trace_progress: bool,
    /// `OVERSUB_CHECK` runqueue audits (read once at construction).
    check_rqs: bool,
    /// `OVERSUB_TRACE_CPU` filter (read once at construction).
    trace_cpu: Option<usize>,
    pub now: SimTime,
    pub live: usize,
    pub end_cap: SimTime,
    pub events_processed: u64,
    pub last_exit: SimTime,
    pub rates: NormalCodeRates,
    /// Ground-truth spin episodes (starts of genuine busy-waiting), for
    /// the BWD sensitivity table.
    pub spin_episodes: u64,
    /// Optional scheduling-event trace.
    pub trace: TraceLog,
    /// Fault injector; `None` unless the config's plan enables any fault,
    /// so clean runs carry no injector state at all.
    pub faults: Option<FaultInjector>,
    /// Liveness-watchdog parameters (copied out of the config; `None`
    /// keeps the watchdog fully disarmed — no events, no sweeps).
    pub watchdog: Option<WatchdogParams>,
    /// When each task's current VB park began (orphan ageing; only
    /// allocated when the watchdog is armed).
    pub vb_park_since: Vec<Option<SimTime>>,
    /// Per-task latch so starvation is reported once per task (sized with
    /// `vb_park_since`).
    pub starvation_reported: Vec<bool>,
    /// Structured invariant/watchdog findings, folded into the report.
    pub diagnostics: Vec<Diagnostic>,
    /// `(progress sum, when it last changed)` for the hang detector.
    pub last_progress: (u64, SimTime),
    /// Set when the watchdog halts the run (no-progress hang).
    pub halted: bool,
    /// Event budget for this run (config override or the safety valve).
    pub max_events: u64,
    /// Lock-order / wait-for graph tracking; `None` unless the config
    /// opts in, so clean runs carry no analysis state at all.
    pub lockdep: Option<LockDep>,
    /// Happens-before race tracking (sync-object clocks + plain-variable
    /// access history); `None` unless the config opts in. Per-task clocks
    /// live in `tasks.race_clock` and stay zero-length when disarmed.
    pub race: Option<Box<RaceTracker>>,
    /// Per-phase host-time accumulators; `None` (one branch per event)
    /// unless the run was started via [`run_phase_profiled`].
    pub phase_prof: Option<Box<PhaseProfile>>,
    /// True when this run executes on the sharded (intra-run parallel)
    /// engine: `shards > 1` requested and every arming condition holds
    /// (optimized engine, zero salt, no fault plan, no trace env knobs).
    /// When false the run takes today's single-queue path exactly.
    pub sharded: bool,
    /// Sharded runs: whether the most recently popped tick event was
    /// already rotated (re-armed at `time + interval` under the sequence
    /// number the single queue would have allocated). Plays the role
    /// `EventQueue::last_pop_rotated` plays for the single queue — see
    /// [`Engine::last_pop_rotated`].
    pub tick_rotated: bool,
    /// Per-shard tick queues plus window scratch; `Some` exactly when
    /// `sharded` (taken out of the engine for the duration of the run).
    pub shard_rt: Option<Box<shard::ShardRt>>,
    /// CPU → shard index map (empty when not sharded).
    pub shard_map: Vec<u32>,
    /// Timestamped cross-shard interaction log (wakes of remote tasks,
    /// migrations, elastic broadcasts), drained at window boundaries.
    /// Counters only — never part of the report.
    pub shard_mail: shard::Mailbox,
}

impl Engine {
    pub(crate) fn new(cfg: RunConfig, workload: &mut dyn Workload) -> Self {
        Self::try_new(cfg, workload).unwrap_or_else(|e| panic!("{e}"))
    }

    pub(crate) fn try_new(
        cfg: RunConfig,
        workload: &mut dyn Workload,
    ) -> Result<Self, EngineError> {
        match cfg.validate() {
            Ok(warnings) => {
                for w in warnings {
                    eprintln!("[oversub] config warning: {w}");
                }
            }
            Err(e) => return Err(EngineError::InvalidConfig(e)),
        }

        // Build the mechanism pipeline and let it configure the kernel
        // substrate (VB flips the futex/epoll/scheduler flags here).
        let mut mechs = MechanismSet::from_config(&cfg);
        let sub = mechs.configure_substrate();

        let topo = cfg.machine.topology();
        let mem = MemModel::new(cfg.cache.clone());
        let mut sched = oversub_sched::Scheduler::new(
            topo.clone(),
            cfg.sched.clone(),
            mem.clone(),
            sub.sched_vb,
        );
        let initial_cores = cfg.initial_cores.unwrap_or(topo.num_cpus());
        sched.set_online_count(initial_cores);

        let futex = FutexTable::new(sub.futex);
        let epoll = EpollTable::new(sub.futex);
        let mut world = WorldBuilder::new(initial_cores, epoll);
        world.overload = cfg.overload;
        // The min-service check needs the workload, so it cannot live in
        // `RunConfig::validate` with the other warnings.
        if cfg.overload.deadline_ns > 0 {
            if let Some(min_ns) = workload.min_service_ns() {
                if cfg.overload.deadline_ns < min_ns {
                    eprintln!(
                        "[oversub] config warning: overload deadline ({} ns) is below \
                         the workload's minimum service time (~{} ns) — every request \
                         will exceed its deadline even on an idle machine",
                        cfg.overload.deadline_ns, min_ns
                    );
                }
            }
        }
        workload.build(&mut world);

        let base_rng = SimRng::new(cfg.seed);
        let n = world.threads.len();
        let mut tasks = TaskTable::new();
        let mut rngs = Vec::with_capacity(n);
        let online: Vec<usize> = (0..initial_cores).collect();
        for (i, spec) in world.threads.into_iter().enumerate() {
            let cpu = spec.initial_cpu.unwrap_or(CpuId(online[i % online.len()]));
            let mut t = Task::new(TaskId(i), spec.program, cpu);
            t.footprint_bytes = spec.footprint;
            t.pinned = spec.pinned;
            t.allowed = spec.allowed;
            t.weight = spec.weight;
            if cfg.pinned && t.pinned.is_none() {
                t.pinned = Some(cpu);
            }
            tasks.push(t);
            rngs.push(base_rng.fork(i as u64 + 1));
        }

        let ncpu = topo.num_cpus();
        let end_cap = cfg.max_time.unwrap_or(DEFAULT_CAP);
        let reference =
            cfg.reference_engine || std::env::var_os("OVERSUB_REFERENCE_ENGINE").is_some();
        if reference {
            sched.set_reference_mode(true);
        }
        // Chaos-layer state: an injector only when the plan enables a
        // fault, park-ageing vectors only when the watchdog is armed, so
        // clean runs are bit-identical to builds without the fault layer.
        let faults = cfg
            .faults
            .enabled()
            .then(|| FaultInjector::new(cfg.faults.clone(), &base_rng));
        let watchdog = cfg.watchdog;
        let wd_slots = if watchdog.is_some() { n } else { 0 };
        let max_events = cfg.max_events.unwrap_or(MAX_EVENTS);
        let lockdep = cfg.lockdep.then(|| LockDep::new(n));
        let race = cfg.race_detector.then(|| Box::new(RaceTracker::new()));
        if race.is_some() {
            // Arm the per-task clocks: zero-length (disarmed) rows become
            // dense task-count-length clocks.
            for c in tasks.race_clock.iter_mut() {
                *c = VClock::zeroed(n);
            }
        }
        let mut queue = if reference {
            EventQueue::classic()
        } else {
            EventQueue::new()
        };
        if cfg.schedule_salt != 0 {
            // Certifier runs permute equal-time same-burst ties; the
            // wheel/lane fast paths order by raw insertion sequence, so
            // the salt also routes everything through the plain heap.
            queue.set_tiebreak_salt(cfg.schedule_salt);
        }
        let timer_intervals: Vec<Option<u64>> = (0..mechs.len())
            .map(|i| mechs.timer_interval_ns(i))
            .collect();
        let idle_quiet_charge: Vec<Option<u64>> = (0..mechs.len())
            .map(|i| mechs.idle_quiet_constant(i))
            .collect();
        let pending_idle_checks = vec![0u64; mechs.len()];
        let trace_progress = std::env::var_os("OVERSUB_TRACE").is_some();
        let check_rqs = std::env::var_os("OVERSUB_CHECK").is_some();
        let trace_cpu = std::env::var("OVERSUB_TRACE_CPU")
            .ok()
            .and_then(|v| v.parse::<usize>().ok());
        // Intra-run sharding: `cfg.shards` (0 = the OVERSUB_SHARDS env, or
        // 1) core-groups advance concurrently under conservative lookahead
        // windows. Sharding arms only when window classification is exact:
        // the optimized engine (the reference engine is the baseline, and
        // its classic queue has no (time, seq) pop order to merge by),
        // zero tie-break salt (salted pop order is not key order), no
        // fault plan (jittered/dropped re-arms break rotation parity), and
        // no per-event trace/audit env knobs (those observe every pop).
        // Disarmed runs take today's single-queue path bit-exactly.
        let shards_req = if cfg.shards != 0 {
            cfg.shards
        } else {
            std::env::var("OVERSUB_SHARDS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1)
        };
        let nshards = shards_req.clamp(1, ncpu);
        let sharded = nshards > 1
            && !reference
            && cfg.schedule_salt == 0
            && faults.is_none()
            && !trace_progress
            && !check_rqs
            && trace_cpu.is_none();
        let (shard_rt, shard_map) = if sharded {
            let rt = shard::ShardRt::new(nshards, ncpu, mechs.len());
            let map = rt.cpu_shard_map();
            (Some(Box::new(rt)), map)
        } else {
            (None, Vec::new())
        };
        let mut eng = Engine {
            mechs,
            sched,
            futex,
            epoll: world.epoll,
            sync: world.sync,
            mem,
            conts: vec![Cont::Ready; n],
            tasks,
            rngs,
            queue,
            resched_pending: vec![None; ncpu],
            reference,
            timer_intervals,
            idle_quiet_charge,
            pending_idle_checks,
            trace_progress,
            check_rqs,
            trace_cpu,
            stint_epoch: vec![0; ncpu],
            seg_epoch: vec![0; ncpu],
            run_kind: vec![RunKind::Useful; ncpu],
            seg_rate: vec![1.0; ncpu],
            seg_done_at: vec![SimTime::ZERO; ncpu],
            seg_event: vec![SegEventKind::None; ncpu],
            spin_exit_at: vec![None; ncpu],
            now: SimTime::ZERO,
            live: n,
            end_cap,
            events_processed: 0,
            last_exit: SimTime::ZERO,
            rates: NormalCodeRates::default(),
            spin_episodes: 0,
            trace: if cfg.trace {
                TraceLog::enabled()
            } else {
                TraceLog::disabled()
            },
            faults,
            watchdog,
            vb_park_since: vec![None; wd_slots],
            starvation_reported: vec![false; wd_slots],
            diagnostics: Vec::new(),
            last_progress: (0, SimTime::ZERO),
            halted: false,
            max_events,
            lockdep,
            race,
            phase_prof: None,
            sharded,
            tick_rotated: false,
            shard_rt,
            shard_map,
            shard_mail: shard::Mailbox::default(),
            cfg,
        };

        // Place tasks and arm per-CPU machinery.
        for i in 0..n {
            let cpu = eng.tasks.last_cpu[i];
            eng.sched
                .enqueue_new(&mut eng.tasks, TaskId(i), cpu, SimTime::ZERO);
        }
        let timers = eng.mechs.timers();
        for c in 0..ncpu {
            eng.sched_resched(SimTime::ZERO, c);
            for &(idx, interval_ns) in &timers {
                // Stagger timers so cores do not all fire at once.
                let phase = (c as u64 * 7_919) % interval_ns;
                eng.schedule_tick(
                    SimTime::from_nanos(interval_ns + phase),
                    interval_ns,
                    Event::MechTimer(idx, c),
                );
            }
            let balance_interval_ns = eng.cfg.sched.balance_interval_ns;
            let phase = (c as u64 * 104_729) % balance_interval_ns;
            eng.schedule_tick(
                SimTime::from_nanos(balance_interval_ns + phase),
                balance_interval_ns,
                Event::Balance(c),
            );
        }
        for ev in eng.cfg.elastic.clone() {
            eng.queue.schedule_nocancel(ev.at, Event::Elastic(ev.cores));
        }
        if let Some(f) = &eng.faults {
            if f.plan.needs_tick() {
                eng.queue.schedule_cadenced(
                    SimTime::from_nanos(f.plan.tick_interval_ns),
                    f.plan.tick_interval_ns,
                    Event::FaultTick,
                );
            }
        }
        if let Some(wd) = eng.watchdog {
            eng.queue.schedule_cadenced(
                SimTime::from_nanos(wd.check_interval_ns),
                wd.check_interval_ns,
                Event::Watchdog,
            );
        }
        if eng.cfg.max_time.is_some() {
            eng.queue.schedule_nocancel(end_cap, Event::Stop);
        }
        // Auto-cadence rotation: in fault-free optimized runs every
        // cadenced re-arm is deterministic — `now + interval`, issued as
        // the handler's first schedule call after the pop — so the queue
        // performs it during the pop itself and the handlers skip their
        // explicit re-arm when `last_pop_rotated()` reports it done.
        // Fault runs keep the explicit path (jitter and drops perturb the
        // re-arm point), as does the reference engine.
        if !eng.reference && eng.faults.is_none() && eng.cfg.schedule_salt == 0 {
            eng.queue.set_auto_cadence(true);
        }
        Ok(eng)
    }

    /// Run to completion and build the report (plus the trace and the
    /// number of processed events).
    pub(crate) fn run_with_trace(
        mut self,
        workload: &dyn Workload,
        label: &str,
    ) -> (RunReport, TraceLog, u64, Option<PhaseProfile>) {
        // Keep the accumulators out of `self` during the loop so the
        // instrumented arms can time `dispatch(&mut self)` calls.
        let mut prof = self.phase_prof.take();
        if self.sharded {
            if let Some(rt) = self.shard_rt.take() {
                return shard::run_sharded(self, *rt, prof, workload, label);
            }
        }
        loop {
            let popped = match prof.as_deref_mut() {
                None => self.queue.pop(),
                Some(p) => {
                    let t0 = std::time::Instant::now();
                    let r = self.queue.pop();
                    p.queue_pop_ns += t0.elapsed().as_nanos() as u64;
                    r
                }
            };
            let Some((t, ev)) = popped else { break };
            if t >= self.end_cap {
                self.now = self.end_cap;
                break;
            }
            debug_assert!(t >= self.now, "time went backwards: {t} < {}", self.now);
            if t < self.now {
                // Event-queue monotonicity violated: surface it and stop
                // instead of corrupting accounting with backwards time.
                let msg = format!("event at {t} popped after clock reached {}", self.now);
                self.push_diagnostic("event-order", None, None, msg);
                break;
            }
            self.now = t;
            self.events_processed += 1;
            if self.events_processed > self.max_events {
                let msg = format!(
                    "event budget of {} exhausted with {} tasks live",
                    self.max_events, self.live
                );
                self.push_diagnostic("event-budget", None, None, msg);
                break;
            }
            if self.trace_progress && self.events_processed.is_multiple_of(1_000_000) {
                eprintln!(
                    "[trace] events={}M now={} live={} ev={:?}",
                    self.events_processed / 1_000_000,
                    self.now,
                    self.live,
                    ev
                );
            }
            match prof.as_deref_mut() {
                None => self.dispatch(ev),
                Some(p) => {
                    let t0 = std::time::Instant::now();
                    self.dispatch(ev);
                    *p.slot_for(&ev) += t0.elapsed().as_nanos() as u64;
                }
            }
            if self.check_rqs {
                self.audit_rqs();
            }
            if self.live == 0 || self.halted {
                break;
            }
        }
        self.wrap_up(workload, label, prof)
    }

    /// Shared tail of the sequential and sharded run loops: makespan,
    /// deferred idle-check flush, report construction.
    pub(crate) fn wrap_up(
        mut self,
        workload: &dyn Workload,
        label: &str,
        prof: Option<Box<PhaseProfile>>,
    ) -> (RunReport, TraceLog, u64, Option<PhaseProfile>) {
        let makespan = if self.live == 0 {
            self.last_exit
        } else {
            if std::env::var_os("OVERSUB_DUMP_STALL").is_some() {
                self.dump_stall_state();
            }
            self.now
        };
        let mut pending = std::mem::take(&mut self.pending_idle_checks);
        self.mechs.flush_idle_checks(&mut pending);
        let trace = std::mem::take(&mut self.trace);
        let events = self.events_processed;
        (
            self.build_report(workload, label, makespan),
            trace,
            events,
            prof.map(|p| *p),
        )
    }

    /// Whether the tick event just popped was already rotated (re-armed
    /// one interval later under the single-queue-identical sequence
    /// number), so its handler must skip the explicit re-arm. On the
    /// single-queue path this is exactly the queue's own flag; the
    /// sharded run loop maintains `tick_rotated` itself because tick
    /// events pop from per-shard queues the facade rotates.
    #[inline]
    pub(crate) fn last_pop_rotated(&self) -> bool {
        if self.sharded {
            self.tick_rotated
        } else {
            self.queue.last_pop_rotated()
        }
    }

    /// Schedule a cadenced per-CPU tick (`MechTimer`/`Balance`). On the
    /// single-queue path this is `schedule_cadenced`; under sharding the
    /// event goes to the owning shard's tick queue, carrying a sequence
    /// number allocated from the coordinator queue's global counter so
    /// its `(time, seq)` key is identical either way.
    pub(crate) fn schedule_tick(&mut self, at: SimTime, interval_ns: u64, ev: Event) {
        if let Some(rt) = self.shard_rt.as_deref_mut() {
            let cpu = match ev {
                Event::MechTimer(_, c) | Event::Balance(c) => c,
                _ => 0,
            };
            let seq = self.queue.alloc_seq();
            rt.insert_tick(self.shard_map[cpu] as usize, at, seq, interval_ns, ev);
        } else {
            self.queue.schedule_cadenced(at, interval_ns, ev);
        }
    }

    /// Log a cross-shard interaction (remote wake, migration) into the
    /// timestamped mailbox. No-op when not sharded or when both CPUs
    /// belong to the same shard. These all occur on the coordinator
    /// between windows — the sequential stretches *are* the window
    /// boundaries — so recording doubles as the drain point.
    #[inline]
    pub(crate) fn note_cross_shard(&mut self, from_cpu: usize, to_cpu: usize, kind: shard::Mail) {
        if !self.sharded {
            return;
        }
        if self.shard_map.get(from_cpu) == self.shard_map.get(to_cpu) {
            return;
        }
        self.shard_mail.note(self.now, kind);
    }

    /// Request an `Event::Resched(cpu)` at `at`, coalescing adjacent
    /// duplicates. A duplicate is suppressed only when a `Resched(cpu)`
    /// was already scheduled for the *same timestamp* and the queue's
    /// sequence mark has not moved since — i.e. no event of any kind was
    /// scheduled in between. Events pop in `(time, seq)` order, so an
    /// unmoved mark proves the twin would pop immediately after the
    /// covering event with no intervening handler: if the covering
    /// resched started a task the twin sees a busy CPU and returns; if it
    /// found nothing, the twin re-runs `pick_next` on bit-identical state
    /// (skip-flag expiry is idempotent within a pick round, a failed
    /// `idle_pull` is stateless, and `account_progress` at an unchanged
    /// cursor adds zero). Either way the twin is a provable no-op, so
    /// dropping it cannot perturb metrics — the golden determinism test
    /// (`tests/determinism.rs`) checks this end to end. Any suppression
    /// window wider than "strictly adjacent" is unsound: an intervening
    /// same-timestamp event (e.g. a `PreemptCheck`) can requeue a task
    /// that the twin's `idle_pull` would then steal.
    pub(crate) fn sched_resched(&mut self, at: SimTime, cpu: usize) {
        if self.reference {
            self.queue.schedule_nocancel(at, Event::Resched(cpu));
            return;
        }
        if self.resched_pending[cpu] == Some((at, self.queue.seq_mark())) {
            return;
        }
        self.queue.schedule_nocancel(at, Event::Resched(cpu));
        self.resched_pending[cpu] = Some((at, self.queue.seq_mark()));
    }

    fn dispatch(&mut self, ev: Event) {
        if let Some(n) = self.trace_cpu {
            let touches = match ev {
                Event::Resched(c)
                | Event::SegEnd(c, _)
                | Event::Slice(c, _)
                | Event::SpinExit(c, _)
                | Event::PreemptCheck(c)
                | Event::MechTimer(_, c)
                | Event::Balance(c) => c == n,
                _ => true,
            };
            if touches {
                eprintln!(
                    "[cpu{n}] now={} ev={:?} current={:?} sched={} live={}",
                    self.now,
                    ev,
                    self.sched.cpus[n].current,
                    self.sched.cpus[n].rq.nr_schedulable(),
                    self.live
                );
            }
        }
        match ev {
            Event::Resched(c) => self.on_resched(c),
            Event::SegEnd(c, e) => self.on_seg_end(c, e),
            Event::Slice(c, e) => self.on_slice(c, e),
            Event::SpinExit(c, e) => self.on_spin_exit(c, e),
            Event::PreemptCheck(c) => self.on_preempt_check(c),
            Event::MechTimer(m, c) => self.on_mech_timer(m, c),
            Event::Balance(c) => self.on_balance(c),
            Event::IoDone(t) => self.on_io_done(t),
            Event::Elastic(n) => self.on_elastic(n),
            Event::FaultTick => self.on_fault_tick(),
            Event::Watchdog => self.on_watchdog(),
            Event::Stop => { /* handled by end_cap check */ }
        }
    }
}

/// Run `workload` under `config`, labelling the report.
pub fn run_labelled(workload: &mut dyn Workload, config: &RunConfig, label: &str) -> RunReport {
    let engine = Engine::new(config.clone(), workload);
    engine.run_with_trace(workload, label).0
}

/// Run `workload` under `config`, additionally returning the number of
/// discrete events the engine processed — the denominator of the
/// events-per-second throughput benchmark. The count is *not* part of
/// [`RunReport`]: it is an engine-internal quantity that legitimately
/// differs between the optimized and reference engines (resched
/// coalescing), while every report metric stays bit-identical.
pub fn run_counted(
    workload: &mut dyn Workload,
    config: &RunConfig,
    label: &str,
) -> (RunReport, u64) {
    let engine = Engine::new(config.clone(), workload);
    let (report, _, events, _) = engine.run_with_trace(workload, label);
    (report, events)
}

/// [`run_counted`] with per-phase wall-clock attribution: the run loop
/// additionally times event-queue pops and buckets each dispatch's cost
/// by event class (runqueue pick, mechanism timers, balance, other).
/// The instrumentation costs two `Instant::now` pairs per event, so this
/// entry point is for profiling harnesses (`sim_throughput`), not for
/// the benchmark's timed reps.
pub fn run_phase_profiled(
    workload: &mut dyn Workload,
    config: &RunConfig,
    label: &str,
) -> (RunReport, u64, PhaseProfile) {
    let mut engine = Engine::new(config.clone(), workload);
    engine.phase_prof = Some(Box::default());
    let (report, _, events, prof) = engine.run_with_trace(workload, label);
    (report, events, prof.unwrap_or_default())
}

/// Run `workload` under `config` and return the scheduling trace alongside
/// the report (enable recording with [`RunConfig::traced`]).
pub fn run_traced(workload: &mut dyn Workload, config: &RunConfig) -> (RunReport, TraceLog) {
    let name = workload.name().to_string();
    let engine = Engine::new(config.clone(), workload);
    let (report, trace, _, _) = engine.run_with_trace(workload, &name);
    (report, trace)
}

/// Run `workload` under `config`.
pub fn run(workload: &mut dyn Workload, config: &RunConfig) -> RunReport {
    let name = workload.name().to_string();
    run_labelled(workload, config, &name)
}

/// Run `workload` under `config`, surfacing configuration errors as a
/// typed [`EngineError`] instead of a panic. Chaos harnesses and
/// property tests use this entry point: a fault-injected run either
/// completes or terminates with structured diagnostics in the report,
/// never a panic or a hang.
pub fn try_run(workload: &mut dyn Workload, config: &RunConfig) -> Result<RunReport, EngineError> {
    let name = workload.name().to_string();
    try_run_labelled(workload, config, &name)
}

/// [`try_run`] with an explicit report label.
pub fn try_run_labelled(
    workload: &mut dyn Workload,
    config: &RunConfig,
    label: &str,
) -> Result<RunReport, EngineError> {
    let engine = Engine::try_new(config.clone(), workload)?;
    Ok(engine.run_with_trace(workload, label).0)
}
