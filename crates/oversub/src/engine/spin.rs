//! Segment bookkeeping and the mechanism-driven deschedule paths: the
//! periodic monitoring timer ([`Engine::on_mech_timer`], BWD's home) and
//! the armed spin exit ([`Engine::on_spin_exit`], PLE's home).

use super::{Cont, Engine, Event, RunKind, SegEventKind};
use crate::mechanism::TimerCtx;
use crate::trace::TraceKind;
use oversub_hw::CpuId;
use oversub_simcore::SimTime;
use oversub_task::{SpinSig, TaskId};

impl Engine {
    /// A mechanism's periodic monitoring timer fired on `cpu`. The
    /// mechanism inspects the core's monitoring window and returns a
    /// verdict; the engine applies it (charging the check cost, shifting
    /// the interrupted segment, and descheduling with or without the skip
    /// flag).
    pub(crate) fn on_mech_timer(&mut self, idx: usize, cpu: usize) {
        let Some(interval_ns) = self.timer_intervals[idx] else {
            return;
        };
        // Re-arm first so detection handling cannot drop the timer. An
        // injected drop still re-arms (the interrupt is lost, not the
        // timer); injected jitter perturbs the re-arm point. Under
        // auto-cadence (fault-free optimized runs) the queue already
        // rotated this timer one interval ahead during the pop — the
        // re-arm below would compute the identical `(time, seq)` key.
        if !self.last_pop_rotated() {
            let mut rearm_at = self.now + interval_ns;
            let mut dropped = false;
            if let Some(f) = self.faults.as_mut() {
                dropped = f.drop_timer();
                if !dropped {
                    rearm_at += f.timer_jitter();
                }
            }
            self.queue
                .schedule_cadenced(rearm_at, interval_ns, Event::MechTimer(idx, cpu));
            if dropped {
                return;
            }
        }
        if !self.sched.online[cpu] {
            return;
        }
        // Idle-quiet fast path: on an oversized machine most ticks land
        // on cores with nothing running and an untouched monitoring
        // window, where the full dispatch below reduces to "record one
        // empty check, charge the check cost". Mechanisms opt into
        // handling that case without a `TimerCtx`
        // (`MechanismSet::dispatch_timer_batch`), so full dispatches
        // scale with the scheduler's active-core bitset, not with
        // machine size. Residual windows (a descheduled task's traces),
        // armed faults, and the reference engine all take the full path.
        if !self.reference
            && self.faults.is_none()
            && !self.sched.is_active(CpuId(cpu))
            && self.sched.cpus[cpu].hw.window_untouched()
        {
            // Constant sub-case: the tick is a fixed charge plus one
            // deferred check — no mechanism call at all.
            if let Some(charge) = self.idle_quiet_charge[idx] {
                self.pending_idle_checks[idx] += 1;
                self.account_idle_tick(cpu, self.now, charge);
                return;
            }
            if let Some(charge) = self.mechs.dispatch_timer_batch(idx, cpu) {
                self.account_idle_tick(cpu, self.now, charge);
                return;
            }
        }
        self.account_progress(cpu, self.now);
        let had_current = self.sched.cpus[cpu].current;
        let real_spin = matches!(self.run_kind[cpu], RunKind::Spin(_));
        let sensor_flip = self.faults.as_mut().is_some_and(|f| f.flip_sensor());
        let verdict = {
            let mechs = &mut self.mechs;
            let mut ctx = TimerCtx {
                cpu,
                now: self.now,
                hw: &mut self.sched.cpus[cpu].hw,
                has_current: had_current.is_some(),
                real_spin,
                sensor_flip,
            };
            mechs.get_mut(idx).on_timer(&mut ctx)
        };
        // The timer interrupt itself steals a little time from the task.
        if had_current.is_some() {
            self.shift_segment(cpu, verdict.charge_ns);
        }
        self.charge_kernel(cpu, verdict.charge_ns);

        if !verdict.deschedule {
            return;
        }
        let Some(tid) = had_current else { return };
        // Deschedule, with the skip flag when the verdict asks for it.
        let t = self.sched.cpus[cpu].accounted_until;
        self.trace.record(t, cpu, tid, TraceKind::BwdDeschedule);
        self.save_partial_progress(cpu, tid);
        if verdict.set_skip {
            self.sched.bwd_mark_skip(&mut self.tasks, CpuId(cpu), tid);
        }
        self.sched.stop_current(
            &mut self.tasks,
            CpuId(cpu),
            t,
            oversub_sched::StopReason::Preempted,
        );
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.spin_exit_at[cpu] = None;
        self.sched_resched(t, cpu);
    }

    /// The spin exit a mechanism armed at segment start fired while the
    /// task is still busy-waiting: charge the exit cost and deschedule.
    /// For PLE this is the VM exit + directed yield — the spinner is
    /// descheduled but (per the verdict) gets no skip flag, CFS will bring
    /// it back soon, and the mechanism's adaptive window doubles so future
    /// exits get rarer. This is why PLE barely helps.
    pub(crate) fn on_spin_exit(&mut self, cpu: usize, epoch: u64) {
        if epoch != self.seg_epoch[cpu] {
            return;
        }
        let Some(tid) = self.sched.cpus[cpu].current else {
            return;
        };
        if !matches!(self.run_kind[cpu], RunKind::Spin(_)) {
            return;
        }
        let Some((_, idx)) = self.spin_exit_at[cpu] else {
            return;
        };
        self.account_progress(cpu, self.now);
        let verdict = self.mechs.get_mut(idx).on_spin_exit(cpu, tid);
        self.charge_kernel(cpu, verdict.charge_ns);
        self.trace.record(self.now, cpu, tid, TraceKind::PleExit);
        let t = self.now + verdict.charge_ns;
        self.save_partial_progress(cpu, tid);
        if verdict.set_skip {
            self.sched.bwd_mark_skip(&mut self.tasks, CpuId(cpu), tid);
        }
        self.sched.stop_current(
            &mut self.tasks,
            CpuId(cpu),
            t,
            oversub_sched::StopReason::Preempted,
        );
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.spin_exit_at[cpu] = None;
        self.sched_resched(t, cpu);
    }

    // ---------------------------------------------------------------
    // Segment helpers
    // ---------------------------------------------------------------

    /// Record how much of the current segment's work remains, updating the
    /// task's continuation. Call after `account_progress` and before
    /// `stop_current`.
    pub(crate) fn save_partial_progress(&mut self, cpu: usize, tid: TaskId) {
        let t = self.sched.cpus[cpu].accounted_until;
        match self.conts[tid.0] {
            Cont::Work { action, .. } => {
                let remaining_scaled = self.seg_done_at[cpu].saturating_since(t);
                let left = (remaining_scaled as f64 * self.seg_rate[cpu]) as u64;
                self.conts[tid.0] = Cont::Work {
                    action,
                    left_ns: left,
                };
            }
            Cont::SpinLock {
                lock,
                is_mutex,
                sig,
                budget_left,
            } if budget_left.is_some() => {
                let left = self.seg_done_at[cpu].saturating_since(t);
                self.conts[tid.0] = Cont::SpinLock {
                    lock,
                    is_mutex,
                    sig,
                    budget_left: Some(left),
                };
            }
            _ => {}
        }
    }

    /// Push the current segment's end (and any armed spin exit) `delta`
    /// nanoseconds into the future — used when timer interrupts steal time
    /// from the running task.
    pub(crate) fn shift_segment(&mut self, cpu: usize, delta: u64) {
        if self.sched.cpus[cpu].current.is_none() {
            return;
        }
        self.seg_epoch[cpu] += 1;
        let e = self.seg_epoch[cpu];
        self.seg_done_at[cpu] += delta;
        match self.seg_event[cpu] {
            SegEventKind::WorkEnd | SegEventKind::ParkDeadline => {
                self.queue
                    .schedule_nocancel(self.seg_done_at[cpu], Event::SegEnd(cpu, e));
            }
            SegEventKind::None => {}
        }
        if let Some((p, idx)) = self.spin_exit_at[cpu] {
            let np = p + delta;
            self.spin_exit_at[cpu] = Some((np, idx));
            self.queue.schedule_nocancel(np, Event::SpinExit(cpu, e));
        }
    }

    // ---------------------------------------------------------------
    // Segment scheduling
    // ---------------------------------------------------------------

    pub(crate) fn begin_work_segment(&mut self, cpu: usize, tid: TaskId, t: SimTime) {
        self.begin_work_segment_kind(cpu, tid, t, RunKind::Useful);
    }

    pub(crate) fn begin_work_segment_kind(
        &mut self,
        cpu: usize,
        tid: TaskId,
        t: SimTime,
        kind: RunKind,
    ) {
        let Cont::Work { left_ns, .. } = self.conts[tid.0] else {
            // A work segment can only be begun for a task holding a Work
            // continuation; record the inconsistency and skip the segment
            // rather than tearing the run down.
            debug_assert!(false, "work segment without Work cont");
            self.push_diagnostic(
                "cont-mismatch",
                Some(tid.0),
                Some(cpu),
                format!(
                    "work segment requested with {:?} continuation",
                    self.conts[tid.0]
                ),
            );
            return;
        };
        let rate = self.sched.smt_factor(CpuId(cpu));
        let scaled = (left_ns as f64 / rate).ceil() as u64;
        self.seg_epoch[cpu] += 1;
        self.seg_rate[cpu] = rate;
        self.run_kind[cpu] = kind;
        self.seg_done_at[cpu] = t + scaled.max(1);
        self.seg_event[cpu] = SegEventKind::WorkEnd;
        self.spin_exit_at[cpu] = None;
        self.queue.schedule_nocancel(
            self.seg_done_at[cpu],
            Event::SegEnd(cpu, self.seg_epoch[cpu]),
        );
    }

    pub(crate) fn begin_spin_segment(
        &mut self,
        cpu: usize,
        tid: TaskId,
        sig: SpinSig,
        budget: Option<u64>,
        t: SimTime,
    ) {
        self.seg_epoch[cpu] += 1;
        self.seg_rate[cpu] = 1.0;
        self.run_kind[cpu] = RunKind::Spin(sig);
        match budget {
            Some(b) => {
                self.seg_done_at[cpu] = t + b.max(1);
                self.seg_event[cpu] = SegEventKind::ParkDeadline;
                self.queue.schedule_nocancel(
                    self.seg_done_at[cpu],
                    Event::SegEnd(cpu, self.seg_epoch[cpu]),
                );
            }
            None => {
                self.seg_done_at[cpu] = SimTime::NEVER;
                self.seg_event[cpu] = SegEventKind::None;
            }
        }
        // Offer the segment to the pipeline; the first mechanism that can
        // see this loop (PLE's visibility rules) arms a spin exit.
        let armed = if self.mechs.is_empty() {
            None
        } else {
            self.mechs.arm_spin_exit(cpu, tid, &sig, self.cfg.env, t)
        };
        match armed {
            Some((at, idx)) => {
                self.spin_exit_at[cpu] = Some((at, idx));
                self.queue
                    .schedule_nocancel(at, Event::SpinExit(cpu, self.seg_epoch[cpu]));
            }
            None => {
                self.spin_exit_at[cpu] = None;
            }
        }
    }
}
