//! Opt-in diagnostics: runqueue invariant audits (`OVERSUB_CHECK`) and
//! stall-state dumps (`OVERSUB_DUMP_STALL`).

use super::{Cont, Engine};
use oversub_task::TaskId;

impl Engine {
    /// Audit runqueue invariants without panicking: `None` when every
    /// queue is consistent, otherwise a description of the first mismatch
    /// (the watchdog folds it into the report's diagnostics).
    pub(super) fn audit_rqs_check(&self) -> Option<String> {
        for (i, c) in self.sched.cpus.iter().enumerate() {
            let (counter, tree, parked_region) = c.rq.audit(&self.tasks);
            if counter != tree {
                return Some(format!(
                    "cpu {i}: schedulable counter {counter} != tree count {tree} \
                     (parked-region entries {parked_region})"
                ));
            }
        }
        None
    }

    /// Diagnostic: audit runqueue invariants (enabled via OVERSUB_CHECK),
    /// dumping queue contents and panicking on a mismatch.
    pub(super) fn audit_rqs(&self) {
        if let Some(msg) = self.audit_rqs_check() {
            eprintln!("[audit] now={} {msg}", self.now);
            for (i, c) in self.sched.cpus.iter().enumerate() {
                for (vr, tid) in c.rq.entries() {
                    eprintln!(
                        "    cpu{i} entry vr={vr} {tid:?} state={:?} vb={} task.vruntime={}",
                        self.tasks.state[tid.0],
                        self.tasks.vb_blocked[tid.0],
                        self.tasks.vruntime[tid.0]
                    );
                }
            }
            panic!("runqueue audit failed: {msg}");
        }
    }

    /// Diagnostic: print why a run ended with live tasks (stall analysis).
    pub(super) fn dump_stall_state(&self) {
        eprintln!("[stall] live={} now={}", self.live, self.now);
        for i in 0..self.tasks.len() {
            if self.conts[i] != Cont::Done {
                eprintln!(
                    "  task {i}: state={:?} vb={} skip={} cpu={:?} cont={:?} blocked_on_futex={}",
                    self.tasks.state[i],
                    self.tasks.vb_blocked[i],
                    self.tasks.bwd_skip[i],
                    self.tasks.last_cpu[i],
                    self.conts[i],
                    self.futex.is_blocked(TaskId(i)),
                );
            }
        }
        for (i, c) in self.sched.cpus.iter().enumerate() {
            eprintln!(
                "  cpu {i}: current={:?} sched={} parked={} online={}",
                c.current,
                c.rq.nr_schedulable(),
                c.rq.nr_vb_parked(),
                self.sched.online[i]
            );
        }
        for (i, l) in self.sync.spinlocks.iter().enumerate() {
            if l.holder().is_some() || l.granted().is_some() || l.num_waiters() > 0 {
                eprintln!(
                    "  spinlock {i}: holder={:?} granted={:?} waiters={:?}",
                    l.holder(),
                    l.granted(),
                    l.waiters()
                );
            }
        }
    }
}
