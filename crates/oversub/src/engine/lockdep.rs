//! Engine-side lockdep hooks: thin adapters between the lock state
//! machines in `exec`/`engine::blocking` and the observational
//! [`LockDep`] graphs in `oversub_locks::lockdep`.
//!
//! Every hook is a no-op when the config did not opt in (`self.lockdep`
//! is `None`), so clean runs pay one branch per lock operation and carry
//! no analysis state. Findings become structured diagnostics
//! (`lock-order-inversion`, `deadlock-cycle`) in the report.

use super::Engine;
use oversub_locks::LockKey;
use oversub_simcore::SimTime;
use oversub_task::TaskId;

impl Engine {
    /// `tid` is about to attempt `key` (fast path, spin, or park —
    /// outcome unknown). Records order edges from every held lock.
    pub(crate) fn ld_attempt(&mut self, tid: TaskId, key: LockKey, t: SimTime) {
        let Some(ld) = self.lockdep.as_mut() else {
            return;
        };
        let findings = ld.on_acquire_attempt(tid.0, key, t.as_nanos());
        for f in findings {
            self.push_diagnostic(f.kind.as_str(), Some(f.task), None, f.detail);
        }
    }

    /// `tid` now holds `key`. The race detector's lock-acquire edge
    /// piggybacks here so both analyses see the same boundary sites.
    pub(crate) fn ld_acquired(&mut self, tid: TaskId, key: LockKey, t: SimTime) {
        self.rc_lock_acquired(tid, key);
        if let Some(ld) = self.lockdep.as_mut() {
            ld.on_acquired(tid.0, key, t.as_nanos());
        }
    }

    /// `tid` is blocked (parked or spinning) on `key`.
    pub(crate) fn ld_wait(&mut self, tid: TaskId, key: LockKey, t: SimTime) {
        let Some(ld) = self.lockdep.as_mut() else {
            return;
        };
        let findings = ld.on_wait(tid.0, key, t.as_nanos());
        for f in findings {
            self.push_diagnostic(f.kind.as_str(), Some(f.task), None, f.detail);
        }
    }

    /// `tid` released `key`. The race detector's lock-release edge
    /// piggybacks here.
    pub(crate) fn ld_release(&mut self, tid: TaskId, key: LockKey) {
        self.rc_lock_released(tid, key);
        if let Some(ld) = self.lockdep.as_mut() {
            ld.on_release(tid.0, key);
        }
    }
}
