//! Engine-side race-detector hooks: thin adapters between the sync
//! boundaries in `exec`/`engine::blocking` and the vector-clock
//! [`RaceTracker`](crate::race::RaceTracker).
//!
//! Every hook is a no-op when the config did not opt in (`self.race` is
//! `None`), so clean runs pay one branch per sync operation and carry no
//! analysis state — the same contract as the lockdep hooks next door.
//! Lock acquire/release edges piggyback on the `ld_acquired`/`ld_release`
//! adapters in `engine/lockdep.rs` (those run unconditionally and check
//! their own option), which guarantees the two analyses see the exact
//! same boundary sites. Findings become structured `data-race`
//! diagnostics in the report.

use super::Engine;
use crate::race::Chan;
use oversub_ksync::Woken;
use oversub_locks::LockKey;
use oversub_simcore::SimTime;
use oversub_task::{EpollFd, FlagId, FutexKey, TaskId};

impl Engine {
    /// Fold findings accumulated by the tracker into report diagnostics.
    fn rc_flush(&mut self) {
        let Some(rt) = self.race.as_mut() else {
            return;
        };
        let findings = rt.take_findings();
        for f in findings {
            self.push_diagnostic("data-race", Some(f.task), None, f.detail);
        }
    }

    /// Release edge: `tid` publishes its history into `chan`.
    pub(crate) fn rc_release_chan(&mut self, tid: TaskId, chan: Chan) {
        if let Some(rt) = self.race.as_mut() {
            rt.release(chan, tid.0, &mut self.tasks.race_clock[tid.0]);
        }
    }

    /// Acquire edge: `tid` adopts everything released into `chan`.
    pub(crate) fn rc_acquire_chan(&mut self, tid: TaskId, chan: Chan) {
        if let Some(rt) = self.race.as_mut() {
            rt.acquire(chan, tid.0, &mut self.tasks.race_clock[tid.0]);
        }
    }

    /// `tid` is about to block on `key`: publish its history into the
    /// futex channel, so every waiter a later wake releases inherits it
    /// (this is what makes barrier all-arrive -> all-release exact).
    pub(crate) fn rc_futex_wait(&mut self, tid: TaskId, key: FutexKey) {
        self.rc_release_chan(tid, Chan::Futex(key.0));
    }

    /// A wake on `key` issued from `cpu`: the waker (the task currently
    /// on that CPU, if any) releases into the channel, then every woken
    /// task acquires from it.
    pub(crate) fn rc_futex_wake(&mut self, cpu: usize, key: FutexKey, woken: &[Woken]) {
        if self.race.is_none() {
            return;
        }
        if let Some(waker) = self.sched.cpus[cpu].current {
            self.rc_release_chan(waker, Chan::Futex(key.0));
        }
        for w in woken {
            self.rc_acquire_chan(w.task, Chan::Futex(key.0));
        }
    }

    /// An epoll post by `tid`: release into the instance channel, every
    /// woken waiter acquires from it.
    pub(crate) fn rc_epoll_post(&mut self, tid: TaskId, ep: EpollFd, woken: &[Woken]) {
        if self.race.is_none() {
            return;
        }
        self.rc_release_chan(tid, Chan::Epoll(ep.0));
        for w in woken {
            self.rc_acquire_chan(w.task, Chan::Epoll(ep.0));
        }
    }

    /// `tid` now holds `key` (called from `ld_acquired`, so every lock
    /// grant path — fast path, spin claim, cross-CPU grant, barge — is
    /// covered by construction).
    pub(crate) fn rc_lock_acquired(&mut self, tid: TaskId, key: LockKey) {
        self.rc_acquire_chan(tid, Chan::Lock(key));
    }

    /// `tid` released `key` (called from `ld_release`).
    pub(crate) fn rc_lock_released(&mut self, tid: TaskId, key: LockKey) {
        self.rc_release_chan(tid, Chan::Lock(key));
    }

    /// A flag load by `tid` (spin begin, satisfied spin, or recheck).
    /// Sync flags are acquire loads; plain flags are race-checked reads.
    pub(crate) fn rc_flag_load(&mut self, tid: TaskId, flag: FlagId, t: SimTime) {
        if self.race.is_none() {
            return;
        }
        if self.sync.flag_is_plain(flag) {
            let program = self.tasks.programs[tid.0].name().to_string();
            if let Some(rt) = self.race.as_mut() {
                rt.read_plain(flag, tid.0, &program, t, &mut self.tasks.race_clock[tid.0]);
            }
            self.rc_flush();
        } else {
            self.rc_acquire_chan(tid, Chan::Flag(flag.0));
        }
    }

    /// A flag store by `tid`. Sync flags are release stores; plain flags
    /// are race-checked writes.
    pub(crate) fn rc_flag_store(&mut self, tid: TaskId, flag: FlagId, value: u64, t: SimTime) {
        if self.race.is_none() {
            return;
        }
        if self.sync.flag_is_plain(flag) {
            let program = self.tasks.programs[tid.0].name().to_string();
            if let Some(rt) = self.race.as_mut() {
                rt.write_plain(
                    flag,
                    tid.0,
                    &program,
                    value,
                    t,
                    &mut self.tasks.race_clock[tid.0],
                );
            }
            self.rc_flush();
        } else {
            self.rc_release_chan(tid, Chan::Flag(flag.0));
        }
    }
}
