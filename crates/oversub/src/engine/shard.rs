//! Intra-run sharding: per-core-group tick queues advanced concurrently
//! under conservative lookahead windows, byte-identical to the
//! single-queue engine by construction.
//!
//! # How the run is split
//!
//! The optimized engine's event population has a sharp shape: on an
//! oversized machine the overwhelming majority of events are periodic
//! per-CPU ticks (`MechTimer`, `Balance`) landing on cores with nothing
//! running, where the handler reduces to a fixed *quiet* body — a couple
//! of per-CPU counter updates that touch no shared state (see
//! [`QuietKind`]). Everything else (rescheds, segment ends, futex wakes,
//! elasticity) is rare and highly cross-CPU.
//!
//! So the split is: per-CPU tick events live in per-shard queues
//! ([`ShardChunk`], one per contiguous core group), everything else stays
//! in the coordinator's single [`EventQueue`](oversub_simcore::EventQueue).
//! The coordinator merges both sides by the global `(time, seq)` key —
//! sequence numbers are allocated from the *coordinator queue's* counter
//! even for shard-queue inserts ([`Engine::schedule_tick`]), so the merged
//! pop order is exactly the order the single queue would produce.
//!
//! # Lookahead windows
//!
//! When the merged front is a quiet tick, the coordinator opens a window:
//! every tick strictly below the horizon `H0` (the coordinator queue's own
//! front, capped at `end_cap`) is classified shard-locally in parallel
//! (phase 1), a global cut `K_min` is derived from the classification
//! stops, and the quiet prefix below `K_min` executes in parallel on
//! per-CPU account copies (phase 2). Quiet bodies commute across CPUs and
//! are applied in key order per CPU, so the fold-back (merge in key order,
//! count events, allocate each tick's rotation seq from the shared
//! counter) reconstructs the sequential engine's state transition exactly.
//!
//! `K_min` is bounded by three things, each required for the executed set
//! to be a closed prefix of the sequential pop order:
//! - each shard's first non-quiet (or budget-stopped) front, which must
//!   execute on the coordinator with full engine access;
//! - the horizon `H0`: coordinator events below it would interleave;
//! - each executed tick's own re-arm point `t + interval` — the rotation
//!   lands back in the queue and would be popped (and would allocate its
//!   next seq) before any event after it, so no event at a later time may
//!   execute in the same window ([`ShardChunk::rearm_cap`]).
//!
//! Anything non-quiet falls back to a sequential pop on the coordinator
//! with the full engine — bit-equal to the single-queue path, including
//! the in-pop cadence rotation (`tick_rotated`).
//!
//! Cross-shard interactions (waking a task owned by another shard's CPU,
//! migrations, elastic broadcasts) only ever happen in coordinator
//! stretches — the sequential gaps *are* the window boundaries — and are
//! logged in the timestamped [`Mailbox`], drained at each window open.
//!
//! Wall-clock reads (`Instant::now`) are phase-profile bookkeeping only
//! and never feed simulation state (see the scoped detlint allow).

use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

use oversub_hw::CpuId;
use oversub_metrics::RunReport;
use oversub_sched::BALANCE_PASS_NS;
use oversub_simcore::{with_shards, ShardSession, SimTime};
use oversub_workloads::workload::Workload;

use super::{Engine, Event, PhaseProfile};
use crate::trace::TraceLog;

/// Phase tag: stage quiet ticks below the horizon.
const PHASE_CLASSIFY: u8 = 1;
/// Phase tag: execute the staged prefix below the packed `K_min` cut.
const PHASE_EXECUTE: u8 = 2;

/// A cross-shard interaction kind (see [`Mailbox`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Mail {
    /// A futex/IO wake targeting a CPU owned by another shard.
    Wake,
    /// A task migration crossing a shard boundary (balance or idle pull).
    Migrate,
    /// An elasticity change (broadcast to every shard by definition).
    Elastic,
}

/// Timestamped log of cross-shard interactions. All of them occur on the
/// coordinator between windows, so the buffer needs no synchronization;
/// it is folded into counters (drained) at each window open and at run
/// end. Purely observational — never part of the report.
#[derive(Debug, Default)]
pub(crate) struct Mailbox {
    buf: Vec<(SimTime, Mail)>,
    /// Cross-shard wakes folded so far.
    pub(crate) wakes: u64,
    /// Cross-shard migrations folded so far.
    pub(crate) migrations: u64,
    /// Elastic broadcasts folded so far.
    pub(crate) elastic: u64,
    /// Number of non-empty drains.
    pub(crate) drains: u64,
}

impl Mailbox {
    /// Fold eagerly past this many buffered entries so a wake-heavy run
    /// cannot grow the buffer without bound between windows.
    const AUTO_DRAIN: usize = 4096;

    /// Record one interaction at `now`.
    pub(crate) fn note(&mut self, now: SimTime, kind: Mail) {
        self.buf.push((now, kind));
        if self.buf.len() >= Self::AUTO_DRAIN {
            self.drain();
        }
    }

    /// Fold the buffered entries into the counters.
    pub(crate) fn drain(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.drains += 1;
        for (_, kind) in self.buf.drain(..) {
            match kind {
                Mail::Wake => self.wakes += 1,
                Mail::Migrate => self.migrations += 1,
                Mail::Elastic => self.elastic += 1,
            }
        }
    }
}

/// The per-CPU fields a quiet tick may touch, extracted as a plain copy
/// so window execution needs no access to the scheduler. Copied in from
/// `sched.cpus` before a window and written back verbatim after it.
#[derive(Clone, Copy, Debug, Default)]
struct TickAccounts {
    idle_ns: u64,
    kernel_ns: u64,
    accounted_until: SimTime,
    next_balance: SimTime,
}

/// The classified body of a quiet tick — the exact effect the sequential
/// handler would have, restricted to [`TickAccounts`] plus one deferred
/// idle-check counter. Derivations cite the sequential code they mirror.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum QuietKind {
    /// A tick on an offline CPU: the handler returns right after the
    /// (already-performed) re-arm. Nothing to apply.
    Noop,
    /// `MechTimer` on an idle CPU with an untouched monitoring window and
    /// a constant idle-quiet charge: one deferred check plus
    /// `account_idle_tick` (`Engine::on_mech_timer`'s constant sub-case).
    MechIdle {
        /// Mechanism index (for the deferred check counter).
        mech: usize,
        /// The constant charge (`idle_quiet_charge[mech]`).
        charge: u64,
    },
    /// `Balance` on an online idle CPU with an empty waiter board:
    /// `periodic_balance`'s O(1) fast path (bump `next_balance`, no
    /// migrations, cost `BALANCE_PASS_NS`) followed by `on_balance`'s
    /// idle charging (`account_progress` + `charge_kernel`).
    BalanceIdle,
    /// Same, but the CPU is running a task: `on_balance` charges the pass
    /// as softirq kernel time without moving the cursor.
    BalanceBusy,
}

/// One tick event in a shard queue. `interval_ns` rides along so any pop
/// site can rotate the event (re-arm one interval later) exactly as the
/// single queue's cadence lanes do.
#[derive(Clone, Copy, Debug)]
struct TickEv {
    time: SimTime,
    seq: u64,
    ev: Event,
    interval_ns: u64,
}

#[inline]
fn key(e: &TickEv) -> (SimTime, u64) {
    (e.time, e.seq)
}

/// The CPU a tick event fires on.
fn cpu_of(ev: &Event) -> Option<usize> {
    match *ev {
        Event::MechTimer(_, c) | Event::Balance(c) => Some(c),
        _ => None,
    }
}

/// FIFO of same-cadence ticks, mirroring the fast queue's cadence lanes:
/// pushes are monotone in `(time, seq)` for a shared strict cadence, so
/// the lane is a `VecDeque` with O(1) front/rotate.
#[derive(Debug)]
struct TickLane {
    interval_ns: u64,
    q: VecDeque<TickEv>,
}

/// Min-heap adapter for out-of-lane-order inserts (cannot happen for a
/// strict cadence, kept as a safe fallback exactly like the fast queue's
/// wheel-or-heap spill).
#[derive(Debug)]
struct SpillEnt(TickEv);

impl PartialEq for SpillEnt {
    fn eq(&self, other: &Self) -> bool {
        key(&self.0) == key(&other.0)
    }
}
impl Eq for SpillEnt {}
impl PartialOrd for SpillEnt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SpillEnt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the min key on top.
        key(&other.0).cmp(&key(&self.0))
    }
}

/// One shard: the tick queue for a contiguous CPU range plus the window
/// scratch its worker thread uses. Everything in here is owned by exactly
/// one thread at a time (the executor's mutex protocol), so the struct is
/// plain data — no atomics, no `unsafe`.
#[derive(Debug)]
pub(crate) struct ShardChunk {
    /// First CPU this shard owns.
    cpu_lo: usize,
    /// One past the last CPU this shard owns.
    cpu_hi: usize,
    lanes: Vec<TickLane>,
    spill: BinaryHeap<SpillEnt>,
    /// Items un-staged by a `K_min` trim, still in key order ahead of
    /// every lane/spill entry.
    stash: VecDeque<TickEv>,
    /// Phase-1 output: the staged quiet prefix, in key order.
    exec: Vec<(TickEv, QuietKind)>,
    /// Phase-1 output: the first key that must NOT execute in this window
    /// (first non-quiet front, re-arm-capped front, or budget stop).
    stop_key: Option<(SimTime, u64)>,
    /// Phase-1 output: minimum re-arm time over staged items. No event at
    /// a strictly later time may execute this window, in any shard — the
    /// re-arm would pop (and allocate its next rotation seq) first.
    rearm_cap: Option<SimTime>,
    /// Per-CPU account copies for the owned range (phase-2 targets).
    accounts: Vec<TickAccounts>,
    /// Per-mechanism deferred idle checks accumulated in phase 2, folded
    /// into the engine's counters at the window fold.
    pending_idle: Vec<u64>,
}

impl ShardChunk {
    /// Insert a tick at `(at, seq)`. Routed to the lane matching the
    /// cadence; falls back to the spill heap if lane order would break.
    fn insert(&mut self, at: SimTime, seq: u64, ev: Event, interval_ns: u64) {
        let e = TickEv {
            time: at,
            seq,
            ev,
            interval_ns,
        };
        let li = match self.lanes.iter().position(|l| l.interval_ns == interval_ns) {
            Some(i) => i,
            None => {
                self.lanes.push(TickLane {
                    interval_ns,
                    q: VecDeque::new(),
                });
                self.lanes.len() - 1
            }
        };
        let Some(lane) = self.lanes.get_mut(li) else {
            return;
        };
        if lane.q.back().is_none_or(|b| (b.time, b.seq) <= (at, seq)) {
            lane.q.push_back(e);
        } else {
            self.spill.push(SpillEnt(e));
        }
    }

    /// `(time, seq)` of the minimum pending tick, if any.
    fn front_key(&self) -> Option<(SimTime, u64)> {
        self.front().map(|e| key(&e))
    }

    /// Copy of the minimum pending tick, if any.
    fn front(&self) -> Option<TickEv> {
        let mut best: Option<TickEv> = self.stash.front().copied();
        for l in &self.lanes {
            if let Some(e) = l.q.front() {
                if best.is_none_or(|b| key(e) < key(&b)) {
                    best = Some(*e);
                }
            }
        }
        if let Some(SpillEnt(e)) = self.spill.peek() {
            if best.is_none_or(|b| key(e) < key(&b)) {
                best = Some(*e);
            }
        }
        best
    }

    /// Pop the minimum pending tick.
    fn pop_front(&mut self) -> Option<TickEv> {
        // Source of the minimum: 0 = stash, 1 = spill, 2+i = lane i.
        let mut best: Option<(SimTime, u64)> = None;
        let mut src = usize::MAX;
        if let Some(e) = self.stash.front() {
            best = Some(key(e));
            src = 0;
        }
        if let Some(SpillEnt(e)) = self.spill.peek() {
            let k = key(e);
            if best.is_none_or(|b| k < b) {
                best = Some(k);
                src = 1;
            }
        }
        for (i, l) in self.lanes.iter().enumerate() {
            if let Some(e) = l.q.front() {
                let k = key(e);
                if best.is_none_or(|b| k < b) {
                    best = Some(k);
                    src = 2 + i;
                }
            }
        }
        best?;
        match src {
            0 => self.stash.pop_front(),
            1 => self.spill.pop().map(|SpillEnt(e)| e),
            i => self.lanes.get_mut(i - 2).and_then(|l| l.q.pop_front()),
        }
    }

    /// Phase 1: stage the quiet prefix strictly below `ctx.h0`, stopping
    /// at the first non-quiet tick, at the per-window item budget, or at
    /// the staged set's own re-arm cap. Any stop below the horizon
    /// records `stop_key` so the global `K_min` respects it.
    fn phase_classify(&mut self, ctx: &WindowCtx) {
        self.exec.clear();
        self.stop_key = None;
        self.rearm_cap = None;
        while (self.exec.len() as u64) < ctx.max_items {
            let Some(e) = self.front() else { return };
            let k = key(&e);
            if k >= ctx.h0 {
                return;
            }
            if self.rearm_cap.is_some_and(|cap| e.time > cap) {
                self.stop_key = Some(k);
                return;
            }
            let Some(kind) = classify(&e.ev, ctx) else {
                self.stop_key = Some(k);
                return;
            };
            let Some(e) = self.pop_front() else { return };
            let cap = e.time + e.interval_ns;
            self.rearm_cap = Some(self.rearm_cap.map_or(cap, |c| c.min(cap)));
            self.exec.push((e, kind));
        }
        // Budget stop: the remaining front (if below the horizon) bounds
        // the global cut exactly like a non-quiet stop would.
        if let Some(k) = self.front_key() {
            if k < ctx.h0 {
                self.stop_key = Some(k);
            }
        }
    }

    /// Phase 2: trim the staged list to keys strictly below `k_min`
    /// (un-staging the tail back onto the stash in order) and apply the
    /// surviving quiet bodies to the account copies, in key order.
    fn phase_execute(&mut self, ctx: &WindowCtx, k_min: (SimTime, u64)) {
        let cut = self.exec.partition_point(|(e, _)| key(e) < k_min);
        let tail: Vec<TickEv> = self.exec.drain(cut..).map(|(e, _)| e).collect();
        for e in tail.into_iter().rev() {
            self.stash.push_front(e);
        }
        for i in 0..self.exec.len() {
            let (e, kind) = self.exec[i];
            let Some(cpu) = cpu_of(&e.ev) else { continue };
            self.apply(ctx, e.time, kind, cpu);
        }
    }

    /// Apply one quiet body to the CPU's account copy. Each arm is the
    /// sequential handler's effect verbatim (see [`QuietKind`]).
    fn apply(&mut self, ctx: &WindowCtx, t: SimTime, kind: QuietKind, cpu: usize) {
        let Some(i) = cpu.checked_sub(self.cpu_lo) else {
            return;
        };
        let Some(a) = self.accounts.get_mut(i) else {
            return;
        };
        match kind {
            QuietKind::Noop => {}
            QuietKind::MechIdle { mech, charge } => {
                if let Some(p) = self.pending_idle.get_mut(mech) {
                    *p += 1;
                }
                // account_idle_tick(cpu, t, charge)
                if t > a.accounted_until {
                    a.idle_ns += t - a.accounted_until;
                    a.accounted_until = t;
                }
                a.kernel_ns += charge;
                a.accounted_until += charge;
            }
            QuietKind::BalanceIdle => {
                // periodic_balance fast path + idle charging
                a.next_balance = t + ctx.balance_interval_ns;
                if t > a.accounted_until {
                    a.idle_ns += t - a.accounted_until;
                    a.accounted_until = t;
                }
                a.kernel_ns += BALANCE_PASS_NS;
                a.accounted_until += BALANCE_PASS_NS;
            }
            QuietKind::BalanceBusy => {
                // periodic_balance fast path + softirq charging
                a.next_balance = t + ctx.balance_interval_ns;
                a.kernel_ns += BALANCE_PASS_NS;
            }
        }
    }
}

/// The per-shard tick queues plus window scratch, built at engine
/// construction and taken out of the engine for the duration of the run.
pub(crate) struct ShardRt {
    chunks: Vec<ShardChunk>,
}

impl ShardRt {
    /// Split `ncpu` CPUs into `nshards` contiguous groups.
    pub(crate) fn new(nshards: usize, ncpu: usize, nmechs: usize) -> Self {
        let n = nshards.clamp(1, ncpu.max(1));
        let chunks = (0..n)
            .map(|i| {
                let lo = i * ncpu / n;
                let hi = (i + 1) * ncpu / n;
                ShardChunk {
                    cpu_lo: lo,
                    cpu_hi: hi,
                    lanes: Vec::new(),
                    spill: BinaryHeap::new(),
                    stash: VecDeque::new(),
                    exec: Vec::new(),
                    stop_key: None,
                    rearm_cap: None,
                    accounts: vec![TickAccounts::default(); hi - lo],
                    pending_idle: vec![0; nmechs],
                }
            })
            .collect();
        ShardRt { chunks }
    }

    /// CPU index → owning shard index.
    pub(crate) fn cpu_shard_map(&self) -> Vec<u32> {
        let mut map = Vec::new();
        for (i, c) in self.chunks.iter().enumerate() {
            for _ in c.cpu_lo..c.cpu_hi {
                map.push(i as u32);
            }
        }
        map
    }

    /// Insert a tick into shard `si` (see [`Engine::schedule_tick`]).
    pub(crate) fn insert_tick(
        &mut self,
        si: usize,
        at: SimTime,
        seq: u64,
        interval_ns: u64,
        ev: Event,
    ) {
        if let Some(c) = self.chunks.get_mut(si) {
            c.insert(at, seq, ev, interval_ns);
        }
    }
}

/// Read-only context a window's phases run against: the horizon, the
/// frozen per-CPU classification inputs, and the shared constants. Built
/// by the coordinator at window open; quiet bodies touch none of these
/// inputs, so the snapshot stays valid for the whole window.
pub(crate) struct WindowCtx {
    h0: (SimTime, u64),
    online: Vec<bool>,
    /// `Scheduler::is_active` view (the timer handler's idle test).
    active: Vec<bool>,
    /// `cpus[c].current.is_some()` (the balance handler's idle test —
    /// kept separate from `active` to mirror the handlers exactly).
    has_current: Vec<bool>,
    untouched: Vec<bool>,
    quiet_charge: Vec<Option<u64>>,
    balance_interval_ns: u64,
    board_zero: bool,
    /// Per-shard staging budget (the run's remaining event budget).
    max_items: u64,
}

/// Classify a tick against the window context: `Some(kind)` iff the
/// sequential handler's entire effect is the quiet body `kind`. Mirrors
/// `Engine::on_mech_timer` / `Engine::on_balance` under the sharding
/// arming conditions (optimized engine, no faults — both guaranteed).
fn classify(ev: &Event, ctx: &WindowCtx) -> Option<QuietKind> {
    match *ev {
        Event::MechTimer(m, c) => {
            if !ctx.online[c] {
                return Some(QuietKind::Noop);
            }
            if !ctx.active[c] && ctx.untouched[c] {
                if let Some(charge) = ctx.quiet_charge.get(m).copied().flatten() {
                    return Some(QuietKind::MechIdle { mech: m, charge });
                }
            }
            None
        }
        Event::Balance(c) => {
            if !ctx.online[c] {
                return Some(QuietKind::Noop);
            }
            if !ctx.board_zero {
                return None;
            }
            Some(if ctx.has_current[c] {
                QuietKind::BalanceBusy
            } else {
                QuietKind::BalanceIdle
            })
        }
        _ => None,
    }
}

/// [`classify`] against the live engine (the coordinator's cheap
/// front-event probe — no context snapshot needed).
fn classify_on_engine(eng: &Engine, ev: &Event) -> Option<QuietKind> {
    match *ev {
        Event::MechTimer(m, c) => {
            if !eng.sched.online[c] {
                return Some(QuietKind::Noop);
            }
            if !eng.sched.is_active(CpuId(c)) && eng.sched.cpus[c].hw.window_untouched() {
                if let Some(charge) = eng.idle_quiet_charge.get(m).copied().flatten() {
                    return Some(QuietKind::MechIdle { mech: m, charge });
                }
            }
            None
        }
        Event::Balance(c) => {
            if !eng.sched.online[c] {
                return Some(QuietKind::Noop);
            }
            if eng.sched.waiter_board_count() != 0 {
                return None;
            }
            Some(if eng.sched.cpus[c].current.is_some() {
                QuietKind::BalanceBusy
            } else {
                QuietKind::BalanceIdle
            })
        }
        _ => None,
    }
}

#[inline]
fn pack_key(k: (SimTime, u64)) -> u128 {
    ((k.0 .0 as u128) << 64) | k.1 as u128
}

#[inline]
fn unpack_key(a: u128) -> (SimTime, u64) {
    (SimTime((a >> 64) as u64), a as u64)
}

/// The phase body every shard runs (workers for shards 1.., inline on the
/// coordinator for shard 0). Pure chunk + context: no engine access.
fn window_fn(phase: u8, aux: u128, _idx: usize, chunk: &mut ShardChunk, ctx: &WindowCtx) {
    match phase {
        PHASE_CLASSIFY => chunk.phase_classify(ctx),
        PHASE_EXECUTE => chunk.phase_execute(ctx, unpack_key(aux)),
        _ => {}
    }
}

/// Entry point from [`Engine::run_with_trace`]: spin up the persistent
/// shard workers, drive the merged run loop, fold the executor stats into
/// the phase profile, and finish through the shared `wrap_up` tail.
pub(crate) fn run_sharded(
    mut eng: Engine,
    rt: ShardRt,
    prof: Option<Box<PhaseProfile>>,
    workload: &dyn Workload,
    label: &str,
) -> (RunReport, TraceLog, u64, Option<PhaseProfile>) {
    let eng_ref = &mut eng;
    let (chunks, prof, stats) = with_shards(rt.chunks, window_fn, move |session| {
        let mut prof = prof;
        run_loop(eng_ref, session, &mut prof);
        prof
    });
    drop(chunks);
    let mut prof = prof;
    if let Some(p) = prof.as_deref_mut() {
        p.barrier_wait_ns += stats.barrier_wait_ns;
    }
    eng.shard_mail.drain();
    eng.wrap_up(workload, label, prof)
}

/// The merged run loop: pop the global-minimum `(time, seq)` key across
/// the coordinator queue and every shard front; quiet shard fronts open
/// lookahead windows, everything else executes sequentially on the full
/// engine exactly as the single-queue loop would.
fn run_loop(
    eng: &mut Engine,
    session: &mut ShardSession<'_, ShardChunk, WindowCtx>,
    prof: &mut Option<Box<PhaseProfile>>,
) {
    let n = session.shards();
    let mut fronts: Vec<Option<(SimTime, u64)>> =
        (0..n).map(|i| session.chunk(i).front_key()).collect();
    loop {
        let ck = match prof.as_deref_mut() {
            None => eng.queue.peek_key(),
            Some(p) => {
                let t0 = Instant::now();
                let r = eng.queue.peek_key();
                p.queue_pop_ns += t0.elapsed().as_nanos() as u64;
                r
            }
        };
        let mut best = ck;
        let mut best_sh: Option<usize> = None;
        for (i, f) in fronts.iter().enumerate() {
            if let Some(k) = *f {
                if best.is_none_or(|b| k < b) {
                    best = Some(k);
                    best_sh = Some(i);
                }
            }
        }
        let Some(k) = best else { break };
        if k.0 >= eng.end_cap {
            eng.now = eng.end_cap;
            break;
        }
        match best_sh {
            None => {
                // Coordinator event: the single-queue loop body verbatim.
                let popped = match prof.as_deref_mut() {
                    None => eng.queue.pop(),
                    Some(p) => {
                        let t0 = Instant::now();
                        let r = eng.queue.pop();
                        p.queue_pop_ns += t0.elapsed().as_nanos() as u64;
                        r
                    }
                };
                let Some((t, ev)) = popped else { break };
                eng.tick_rotated = eng.queue.last_pop_rotated();
                if step(eng, prof, t, ev) {
                    break;
                }
            }
            Some(si) => {
                let front = session.chunk(si).front();
                let Some(e) = front else {
                    fronts[si] = None;
                    continue;
                };
                let budget_left = eng.max_events.saturating_sub(eng.events_processed);
                let mut windowed = false;
                if budget_left >= 2 && classify_on_engine(eng, &e.ev).is_some() {
                    windowed = run_window(eng, session, &mut fronts, prof) > 0;
                }
                if windowed {
                    if eng.live == 0 || eng.halted {
                        break;
                    }
                    continue;
                }
                // Sequential shard pop: identical to the single queue's
                // pop-with-rotation of a cadenced lane event — rotate at
                // pop under a freshly allocated global seq, then run the
                // handler with `tick_rotated` set.
                let popped = {
                    let mut c = session.chunk(si);
                    let e = c.pop_front();
                    if let Some(e) = e {
                        let seq = eng.queue.alloc_seq();
                        c.insert(e.time + e.interval_ns, seq, e.ev, e.interval_ns);
                    }
                    fronts[si] = c.front_key();
                    e
                };
                let Some(e) = popped else { continue };
                eng.tick_rotated = true;
                if step(eng, prof, e.time, e.ev) {
                    break;
                }
            }
        }
    }
}

/// One sequential event step — the single-queue loop's per-event body
/// (monotonicity check, clock advance, budget, dispatch, liveness).
/// Returns true when the run loop must stop. `tick_rotated` must already
/// be set for the event. The trace/audit env branches of the sequential
/// loop are omitted: sharding only arms with them off.
fn step(eng: &mut Engine, prof: &mut Option<Box<PhaseProfile>>, t: SimTime, ev: Event) -> bool {
    debug_assert!(t >= eng.now, "time went backwards: {t} < {}", eng.now);
    if t < eng.now {
        let msg = format!("event at {t} popped after clock reached {}", eng.now);
        eng.push_diagnostic("event-order", None, None, msg);
        return true;
    }
    eng.now = t;
    eng.events_processed += 1;
    if eng.events_processed > eng.max_events {
        let msg = format!(
            "event budget of {} exhausted with {} tasks live",
            eng.max_events, eng.live
        );
        eng.push_diagnostic("event-budget", None, None, msg);
        return true;
    }
    match prof.as_deref_mut() {
        None => eng.dispatch(ev),
        Some(p) => {
            let t0 = Instant::now();
            eng.dispatch(ev);
            *p.slot_for(&ev) += t0.elapsed().as_nanos() as u64;
        }
    }
    eng.live == 0 || eng.halted
}

/// Open one lookahead window. Returns the number of events executed
/// inside it (0 only in defensive corner cases — the caller then falls
/// back to a sequential pop, so progress is always made).
fn run_window(
    eng: &mut Engine,
    session: &mut ShardSession<'_, ShardChunk, WindowCtx>,
    fronts: &mut [Option<(SimTime, u64)>],
    prof: &mut Option<Box<PhaseProfile>>,
) -> u64 {
    let t0 = prof.as_ref().map(|_| Instant::now());
    let barrier0 = session.stats().barrier_wait_ns;
    eng.shard_mail.drain();
    let cap_key = (eng.end_cap, 0u64);
    let h0 = eng.queue.peek_key().map_or(cap_key, |k| k.min(cap_key));
    let members: Vec<usize> = fronts
        .iter()
        .enumerate()
        .filter_map(|(i, f)| f.filter(|k| *k < h0).map(|_| i))
        .collect();
    if members.is_empty() {
        return 0;
    }
    let budget = eng.max_events.saturating_sub(eng.events_processed);

    // Snapshot the classification inputs for the member CPU ranges.
    // Quiet bodies touch none of these, so the snapshot holds for the
    // whole window.
    let ncpu = eng.sched.cpus.len();
    let mut online = vec![false; ncpu];
    let mut active = vec![false; ncpu];
    let mut has_current = vec![false; ncpu];
    let mut untouched = vec![false; ncpu];
    for &si in &members {
        let (lo, hi) = {
            let c = session.chunk(si);
            (c.cpu_lo, c.cpu_hi)
        };
        for cpu in lo..hi {
            online[cpu] = eng.sched.online[cpu];
            active[cpu] = eng.sched.is_active(CpuId(cpu));
            has_current[cpu] = eng.sched.cpus[cpu].current.is_some();
            untouched[cpu] = eng.sched.cpus[cpu].hw.window_untouched();
        }
    }
    let ctx = WindowCtx {
        h0,
        online,
        active,
        has_current,
        untouched,
        quiet_charge: eng.idle_quiet_charge.clone(),
        balance_interval_ns: eng.cfg.sched.balance_interval_ns,
        board_zero: eng.sched.waiter_board_count() == 0,
        max_items: budget,
    };

    // Copy the mutable per-CPU accounts into the member chunks.
    for &si in &members {
        let mut c = session.chunk(si);
        let (lo, hi) = (c.cpu_lo, c.cpu_hi);
        for cpu in lo..hi {
            let s = &eng.sched.cpus[cpu];
            if let Some(a) = c.accounts.get_mut(cpu - lo) {
                *a = TickAccounts {
                    idle_ns: s.time.idle_ns,
                    kernel_ns: s.time.kernel_ns,
                    accounted_until: s.accounted_until,
                    next_balance: s.next_balance,
                };
            }
        }
    }

    // While the window is open the classification is frozen: any central
    // scheduler/task mutation would invalidate it, so the ownership
    // asserts arm (debug builds).
    eng.sched.set_parallel_window(true);
    eng.tasks.set_parallel_window(true);
    if members.len() == 1 {
        // Single member: run both phases inline on the coordinator — no
        // condvar handshake, no barrier.
        let si = members[0];
        {
            let mut c = session.chunk(si);
            c.phase_classify(&ctx);
        }
        let k_min = gather_k_min(session, &members, h0, budget);
        let mut c = session.chunk(si);
        c.phase_execute(&ctx, k_min);
    } else {
        session.set_ctx(ctx);
        session.run_phase(PHASE_CLASSIFY, 0);
        let k_min = gather_k_min(session, &members, h0, budget);
        session.run_phase(PHASE_EXECUTE, pack_key(k_min));
    }
    eng.sched.set_parallel_window(false);
    eng.tasks.set_parallel_window(false);

    // Fold: merge the executed prefixes in global key order, counting
    // each event and allocating its rotation seq from the shared counter
    // exactly where the sequential pop would have, then write the account
    // copies back and surface the deferred idle checks.
    let fold_t0 = prof.as_ref().map(|_| Instant::now());
    let mut executed = 0u64;
    let mut last_t: Option<SimTime> = None;
    {
        let mut guards: Vec<_> = members.iter().map(|&si| session.chunk(si)).collect();
        let mut idx = vec![0usize; guards.len()];
        loop {
            let mut best: Option<(SimTime, u64)> = None;
            let mut bi = usize::MAX;
            for (g, guard) in guards.iter().enumerate() {
                if let Some((e, _)) = guard.exec.get(idx[g]) {
                    let k = key(e);
                    if best.is_none_or(|b| k < b) {
                        best = Some(k);
                        bi = g;
                    }
                }
            }
            if best.is_none() {
                break;
            }
            let Some(guard) = guards.get_mut(bi) else {
                break;
            };
            let Some(&(e, _)) = guard.exec.get(idx[bi]) else {
                break;
            };
            idx[bi] += 1;
            eng.events_processed += 1;
            executed += 1;
            last_t = Some(e.time);
            let seq = eng.queue.alloc_seq();
            guard.insert(e.time + e.interval_ns, seq, e.ev, e.interval_ns);
        }
        for guard in guards.iter_mut() {
            let (lo, hi) = (guard.cpu_lo, guard.cpu_hi);
            for cpu in lo..hi {
                let Some(a) = guard.accounts.get(cpu - lo).copied() else {
                    continue;
                };
                let s = &mut eng.sched.cpus[cpu];
                s.time.idle_ns = a.idle_ns;
                s.time.kernel_ns = a.kernel_ns;
                s.accounted_until = a.accounted_until;
                s.next_balance = a.next_balance;
            }
            for (m, v) in guard.pending_idle.iter_mut().enumerate() {
                if let Some(p) = eng.pending_idle_checks.get_mut(m) {
                    *p += *v;
                }
                *v = 0;
            }
            guard.exec.clear();
            guard.stop_key = None;
            guard.rearm_cap = None;
        }
    }
    if let Some(t) = last_t {
        eng.now = t;
    }
    for &si in &members {
        fronts[si] = session.chunk(si).front_key();
    }
    if let Some(p) = prof.as_deref_mut() {
        let fold_ns = fold_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let total_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let barrier_delta = session.stats().barrier_wait_ns.saturating_sub(barrier0);
        p.mailbox_ns += fold_ns;
        p.mech_timer_ns += total_ns
            .saturating_sub(fold_ns)
            .saturating_sub(barrier_delta);
        p.window_events += executed;
    }
    executed
}

/// Derive the window's global cut from the phase-1 outputs: the horizon,
/// every member's stop key, every member's re-arm cap, and — when the
/// staged total exceeds the event budget — the budget-th smallest staged
/// key, so the window dispatches at most `budget` events.
fn gather_k_min(
    session: &ShardSession<'_, ShardChunk, WindowCtx>,
    members: &[usize],
    h0: (SimTime, u64),
    budget: u64,
) -> (SimTime, u64) {
    let mut k_min = h0;
    let mut staged: u64 = 0;
    for &si in members {
        let c = session.chunk(si);
        if let Some(sk) = c.stop_key {
            k_min = k_min.min(sk);
        }
        if let Some(cap) = c.rearm_cap {
            // Events AT the cap time still pop before the re-arm (their
            // seqs predate it), so the bound is exclusive past the time.
            k_min = k_min.min((cap, u64::MAX));
        }
        staged += c.exec.len() as u64;
    }
    if staged > budget {
        let mut keys: Vec<(SimTime, u64)> = Vec::with_capacity(staged as usize);
        for &si in members {
            let c = session.chunk(si);
            keys.extend(c.exec.iter().map(|(e, _)| key(e)));
        }
        keys.sort_unstable();
        if let Some(&kb) = keys.get(budget as usize) {
            k_min = k_min.min(kb);
        }
    }
    k_min
}
