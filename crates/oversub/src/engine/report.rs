//! Metric aggregation: close out per-CPU accounting and fold engine,
//! substrate, and mechanism state into a [`RunReport`].

use super::Engine;
use crate::mechanism::{BwdMechanism, PleMechanism};
use oversub_metrics::{LatencyDigest, LatencyHist, RunReport};
use oversub_simcore::SimTime;
use oversub_workloads::workload::Workload;

impl Engine {
    pub(super) fn build_report(
        mut self,
        workload: &dyn Workload,
        label: &str,
        makespan: SimTime,
    ) -> RunReport {
        // Close accounting on every CPU.
        for c in 0..self.sched.topo.num_cpus() {
            self.account_progress(c, makespan);
        }
        // Both latency blocks start empty-but-present; a request-shaped
        // workload's `collect` (below) fills the bucketed histogram and
        // the exact digest from its RequestSink, batch workloads leave
        // them empty.
        let mut report = RunReport {
            label: label.to_string(),
            makespan_ns: makespan.as_nanos(),
            latency: LatencyHist::new(),
            latency_exact: LatencyDigest::new(),
            ..RunReport::default()
        };
        report.tasks.tasks = self.tasks.len();
        for s in &self.tasks.stats {
            report.tasks.exec_ns += s.exec_ns;
            report.tasks.spin_ns += s.spin_ns;
            report.tasks.sleep_ns += s.sleep_ns;
            report.tasks.wait_ns += s.wait_ns;
            report.tasks.nvcsw += s.nvcsw;
            report.tasks.nivcsw += s.nivcsw;
            report.tasks.migrations_local += s.migrations_local;
            report.tasks.migrations_remote += s.migrations_remote;
            report.tasks.wakeups += s.wakeups;
            report.tasks.wakeup_latency_ns += s.wakeup_latency_ns;
            report.tasks.bwd_deschedules += s.bwd_deschedules;
        }
        report.cpus.cpus = self.sched.num_online().max(1);
        for c in &self.sched.cpus {
            report.cpus.useful_ns += c.time.useful_ns;
            report.cpus.spin_ns += c.time.spin_ns;
            report.cpus.kernel_ns += c.time.kernel_ns;
            report.cpus.idle_ns += c.time.idle_ns;
            report.cpus.context_switches += c.time.context_switches;
        }
        report.blocking.sleep_waits = self.futex.sleep_waits + self.epoll.sleep_waits;
        report.blocking.virtual_waits = self.futex.virtual_waits + self.epoll.virtual_waits;
        report.blocking.wakes = self.futex.wakes + self.epoll.wakes;
        // The legacy `bwd` aggregate reads through to the in-tree
        // mechanisms when present (zeros otherwise, exactly as the old
        // always-constructed-but-disabled detector reported).
        if let Some(bwd) = self.mechs.find::<BwdMechanism>() {
            let s = bwd.stats();
            report.bwd.checks = s.checks;
            report.bwd.detections = s.detections;
            report.bwd.true_positives = s.true_positives;
            report.bwd.false_positives = s.false_positives;
        }
        report.bwd.ple_exits = self
            .mechs
            .find::<PleMechanism>()
            .map(|p| p.exits())
            .unwrap_or(0);
        report.bwd.spin_episodes = self.spin_episodes;
        report.mechanisms = self.mechs.counters();
        report.diagnostics = std::mem::take(&mut self.diagnostics);
        // Summarize what the chaos layer actually injected, so a report
        // from a fault run is self-describing.
        if let Some(f) = &self.faults {
            let c = f.counters;
            let injected = c.lost_wakeups
                + c.spurious_wakeups
                + c.dropped_ticks
                + c.jittered_ticks
                + c.sensor_flips
                + c.delayed_slices
                + c.storms;
            if injected > 0 {
                report.diagnostics.push(oversub_metrics::Diagnostic {
                    kind: "fault-injection".to_string(),
                    at_ns: makespan.as_nanos(),
                    task: None,
                    cpu: None,
                    detail: format!(
                        "injected: {} lost wakeups, {} spurious wakeups, {} dropped ticks, \
                         {} jittered ticks, {} sensor flips, {} delayed slices, {} storms",
                        c.lost_wakeups,
                        c.spurious_wakeups,
                        c.dropped_ticks,
                        c.jittered_ticks,
                        c.sensor_flips,
                        c.delayed_slices,
                        c.storms
                    ),
                });
            }
        }
        workload.collect(&mut report);
        report
    }
}
