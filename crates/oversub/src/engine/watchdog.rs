//! The chaos tick and the liveness watchdog.
//!
//! `on_fault_tick` is the periodic driver for the injected faults that
//! need their own clock: spurious wakeups of parked waiters and elastic
//! revocation storms. `on_watchdog` is the defence — a periodic invariant
//! sweep that detects lost-wakeup orphans (and rescues them, degrading VB
//! to a real wake), per-task starvation, runqueue/waiter-board
//! inconsistencies, and global no-progress hangs. Violations become
//! structured [`Diagnostic`]s in the report; the only one that stops the
//! run is a confirmed hang.

use super::{Cont, Engine, Event};
use crate::trace::TraceKind;
use oversub_ksync::WaitMode;
use oversub_metrics::Diagnostic;
use oversub_task::{TaskId, TaskState};

impl Engine {
    /// Record a structured finding, bounded by the watchdog's cap (the
    /// first violations matter; a pathological run must not allocate
    /// without bound).
    pub(crate) fn push_diagnostic(
        &mut self,
        kind: &str,
        task: Option<usize>,
        cpu: Option<usize>,
        detail: String,
    ) {
        let cap = self.watchdog.map_or(64, |w| w.max_diagnostics);
        if self.diagnostics.len() >= cap {
            return;
        }
        self.diagnostics.push(Diagnostic {
            kind: kind.to_string(),
            at_ns: self.now.as_nanos(),
            task,
            cpu,
            detail,
        });
    }

    /// Fault-arming helper: extra delay for the next slice event.
    pub(crate) fn slice_fault_delay(&mut self) -> u64 {
        self.faults.as_mut().map_or(0, |f| f.slice_delay())
    }

    /// The periodic fault tick: spurious wakeups and revocation storms.
    pub(crate) fn on_fault_tick(&mut self) {
        let Some(interval) = self.faults.as_ref().map(|f| f.plan.tick_interval_ns) else {
            return;
        };
        self.queue
            .schedule_cadenced(self.now + interval, interval, Event::FaultTick);

        // Spurious wakeup: wake one VB-parked futex waiter that nobody
        // signalled. POSIX allows this; a correct waiter re-checks its
        // predicate and re-parks, so the engine must survive it.
        if self.faults.as_mut().is_some_and(|f| f.spurious_wakeup()) {
            let victims = self.futex.blocked_tasks(WaitMode::Virtual);
            if !victims.is_empty() {
                let pick = self
                    .faults
                    .as_mut()
                    .map_or(0, |f| f.pick_victim(victims.len()));
                let tid = victims[pick];
                let cpu = self.tasks.last_cpu[tid.0];
                if let Some(report) =
                    self.futex
                        .futex_wake_task(&mut self.sched, &mut self.tasks, tid, cpu, self.now)
                {
                    // Interrupt-context wake: the cost lands on the CPU,
                    // not on any task's segment (like `on_io_done`).
                    self.sched.cpus[cpu.0].time.kernel_ns += report.waker_cost_ns;
                    if let Some(f) = self.faults.as_mut() {
                        f.note_spurious_delivered();
                    }
                    let done = self.now + report.waker_cost_ns;
                    self.post_wake_events(&report.woken, done);
                }
            }
        }

        // Revocation storm: yank the online core count.
        let ncpu = self.sched.topo.num_cpus();
        if let Some(cores) = self.faults.as_mut().and_then(|f| f.storm_cores(ncpu)) {
            self.on_elastic(cores);
        }
    }

    /// The liveness watchdog sweep.
    pub(crate) fn on_watchdog(&mut self) {
        let Some(wd) = self.watchdog else { return };
        // Skipped when the queue's auto-cadence rotation already re-armed
        // this timer during the pop (identical `(time, seq)` key).
        if !self.last_pop_rotated() {
            self.queue.schedule_cadenced(
                self.now + wd.check_interval_ns,
                wd.check_interval_ns,
                Event::Watchdog,
            );
        }

        // 1. Lost-wakeup orphans: a VB-parked task whose park has aged past
        //    the timeout and that no futex/epoll waker still points at can
        //    never be woken by the workload — rescue it with a real wake
        //    (VB gracefully degrades to blocking semantics for that task).
        for i in 0..self.vb_park_since.len() {
            let Some(parked_at) = self.vb_park_since[i] else {
                continue;
            };
            if self.now.saturating_since(parked_at) <= wd.park_timeout_ns {
                continue;
            }
            let tid = TaskId(i);
            if !self.tasks.vb_blocked[i] || !matches!(self.conts[i], Cont::Blocked(_)) {
                continue;
            }
            if self.futex.is_blocked(tid) || self.epoll.is_waiter(tid) {
                continue; // a waker is still registered: park is healthy
            }
            let (cpu, cost, preempt) = self.sched.vb_wake(&mut self.tasks, tid, self.now);
            self.sched.cpus[cpu.0].time.kernel_ns += cost;
            self.vb_park_since[i] = None;
            if !self.mechs.is_empty() {
                self.mechs.on_watchdog_recovery(tid);
            }
            self.push_diagnostic(
                "lost-wakeup-rescue",
                Some(i),
                Some(cpu.0),
                format!(
                    "task {i} VB-parked since {parked_at} with no pending waker; woken by watchdog"
                ),
            );
            self.trace.record(self.now, cpu.0, tid, TraceKind::Wake);
            let done = self.now + cost;
            self.sched_resched(done, cpu.0);
            if preempt && self.sched.cpus[cpu.0].current.is_some() {
                self.queue
                    .schedule_nocancel(done, Event::PreemptCheck(cpu.0));
            }
        }

        // 2. Starvation: a schedulable task waiting longer than the bound.
        //    Reported once per task — a diagnosis, not a failure.
        for i in 0..self.starvation_reported.len() {
            if self.starvation_reported[i] {
                continue;
            }
            if self.tasks.state[i] != TaskState::Runnable || self.tasks.vb_blocked[i] {
                continue;
            }
            let waited = self.now.saturating_since(self.tasks.runnable_since[i]);
            if waited > wd.starvation_bound_ns {
                self.starvation_reported[i] = true;
                let bound = wd.starvation_bound_ns;
                self.push_diagnostic(
                    "starvation",
                    Some(i),
                    None,
                    format!("task {i} runnable but off-CPU for {waited} ns (bound {bound} ns)"),
                );
            }
        }

        // 3. Runqueue and waiter-board consistency.
        if let Some(msg) = self.audit_rqs_check() {
            self.push_diagnostic("rq-inconsistency", None, None, msg);
        }
        if let Some(msg) = self.sched.audit_waiter_board() {
            self.push_diagnostic("waiter-board-mismatch", None, None, msg);
        }

        // 4. Global no-progress hang: if no task accumulated execution,
        //    spin time, or a context switch for the whole timeout, nothing
        //    will ever move again — halt with a diagnostic instead of
        //    burning the event budget.
        let progress = self
            .tasks
            .stats
            .iter()
            .map(|s| s.exec_ns + s.spin_ns + s.nvcsw + s.nivcsw)
            .sum::<u64>();
        if progress != self.last_progress.0 {
            self.last_progress = (progress, self.now);
        } else if self.live > 0
            && self.now.saturating_since(self.last_progress.1) > wd.hang_timeout_ns
        {
            let since = self.last_progress.1;
            let live = self.live;
            let mut msg =
                format!("no task progress since {since} with {live} tasks live; halting run");
            // Lockdep cause attribution: name what every blocked task is
            // waiting on and who (if anybody) holds it. A wait on a lock
            // held by nobody is the lost-wakeup signature; mutual holds
            // are a deadlock (reported separately as `deadlock-cycle`).
            if let Some(ld) = &self.lockdep {
                let lines = ld.wait_summary();
                if !lines.is_empty() {
                    msg.push_str("; wait-for: ");
                    msg.push_str(&lines.join("; "));
                }
            }
            self.push_diagnostic("no-progress", None, None, msg);
            self.halted = true;
        }
    }
}
